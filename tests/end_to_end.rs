//! End-to-end integration across all crates: generator → substrate →
//! mining → incremental maintenance → rules, through the session API
//! (builder, staged commits, snapshot reads, persistent vertical index).

use fup::datagen::{generate_multi_split, GenParams};
use fup::{
    Apriori, CountingBackend, Dhp, Maintainer, MinConfidence, MinSupport, Miner, Transaction,
    TransactionSource, UpdateBatch,
};

fn workload_params() -> GenParams {
    GenParams {
        num_transactions: 3_000,
        increment_size: 0,
        num_items: 400,
        num_patterns: 300,
        pool_size: 30,
        seed: 0xe2e,
        ..GenParams::default()
    }
}

#[test]
fn maintainer_tracks_remine_over_many_rounds() {
    let (history, increments) = generate_multi_split(&workload_params(), &[300; 6]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.into_transactions())
        .unwrap();
    assert!(
        !maintainer.rules().is_empty(),
        "bootstrap should find rules"
    );

    for (i, inc) in increments.into_iter().enumerate() {
        let report = maintainer
            .apply(UpdateBatch::insert_only(inc.into_transactions()))
            .unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.version, i as u64 + 1);
        maintainer
            .verify_consistency()
            .unwrap_or_else(|d| panic!("round {i} diverged: {d}"));
    }
    assert_eq!(maintainer.len(), 3_000 + 6 * 300);
    assert_eq!(maintainer.version(), 6);
}

#[test]
fn mixed_insert_delete_rounds_stay_consistent() {
    let (history, increments) = generate_multi_split(&workload_params(), &[400, 400, 400]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(70))
        .build(history.into_transactions())
        .unwrap();
    for inc in increments {
        // Delete a slice of the oldest transactions while inserting.
        let victims: Vec<_> = maintainer
            .store()
            .iter()
            .take(150)
            .map(|(tid, _)| tid)
            .collect();
        let report = maintainer
            .apply(UpdateBatch {
                inserts: inc.into_transactions(),
                deletes: victims,
            })
            .unwrap();
        assert_eq!(report.algorithm, "fup2");
        maintainer.verify_consistency().expect("FUP2 == re-mine");
    }
    assert_eq!(maintainer.len(), 3_000 + 3 * 400 - 3 * 150);
}

#[test]
fn staged_batches_commit_as_one_round_with_stable_snapshots() {
    let (history, increments) = generate_multi_split(&workload_params(), &[200, 200, 200]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.into_transactions())
        .unwrap();
    let bootstrap = maintainer.snapshot();
    assert_eq!(bootstrap.version(), 0);

    // stage → stage → stage → one commit: arrival is decoupled from
    // application, and reads in between see the old state.
    for inc in increments {
        maintainer
            .stage(UpdateBatch::insert_only(inc.into_transactions()))
            .unwrap();
        assert_eq!(maintainer.len(), 3_000, "staging must not touch the store");
        assert_eq!(maintainer.version(), 0);
    }
    assert_eq!(maintainer.staged().inserts.len(), 600);
    let report = maintainer.commit().unwrap();
    assert_eq!(report.algorithm, "fup");
    assert_eq!(report.version, 1);
    assert_eq!(report.num_transactions, 3_600);
    assert_eq!(report.inserted_tids.len(), 600);
    maintainer.verify_consistency().expect("FUP == re-mine");

    // The pre-commit snapshot is still valid, version-stamped, and
    // internally consistent; the post-commit snapshot sees the new state.
    assert_eq!(bootstrap.version(), 0);
    assert_eq!(bootstrap.num_transactions(), 3_000);
    let now = maintainer.snapshot();
    assert_eq!(now.version(), 1);
    assert_eq!(now.num_transactions(), 3_600);
    for rule in bootstrap.top_k_by_confidence(5) {
        // Old-snapshot supports answer from the old state even though the
        // maintainer has moved on.
        assert_eq!(
            bootstrap.support_of(&rule.antecedent),
            bootstrap.large_itemsets().support(&rule.antecedent)
        );
    }
}

#[test]
fn persistent_index_is_extended_not_rebuilt_on_insert_only_commits() {
    // Acceptance: with the vertical backend pinned, insert-only commits
    // extend the session's persistent index with the staged delta — the
    // old database is NOT rescanned (scan-count asserted) and the index
    // is not rebuilt (build/extend counters asserted). Increments only
    // use items that are already large, so the index's item filter stays
    // valid (no dictionary growth).
    let (history, increments) = generate_multi_split(&workload_params(), &[250; 4]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .backend(CountingBackend::Vertical)
        .build(history.into_transactions())
        .unwrap();
    // The pinned-vertical session seeds its index at bootstrap.
    let stats = maintainer.index_stats();
    assert_eq!((stats.builds, stats.extends), (1, 0));
    assert!(stats.resident);

    for (i, inc) in increments.into_iter().enumerate() {
        // Restrict the increment to items already large, so no new item
        // can cross the threshold and invalidate the index filter.
        let keep: std::collections::HashSet<fup::ItemId> = maintainer
            .large_itemsets()
            .level(1)
            .map(|(x, _)| x.items()[0])
            .collect();
        let filtered: Vec<Transaction> = inc
            .into_transactions()
            .into_iter()
            .map(|t| {
                Transaction::from_items(
                    t.items()
                        .iter()
                        .copied()
                        .filter(|it| keep.contains(it))
                        .map(|it| it.raw()),
                )
            })
            .filter(|t: &Transaction| !t.is_empty())
            .collect();
        assert!(!filtered.is_empty());

        let db_reads_before = maintainer.store().metrics().snapshot().transactions_read;
        maintainer
            .stage(UpdateBatch::insert_only(filtered))
            .unwrap();
        let report = maintainer.commit().unwrap();
        assert_eq!(report.algorithm, "fup");

        // The old database was never rescanned: every support came from
        // the persistent index (extended by the increment's delta scan)
        // and the increment-side passes.
        let db_reads_after = maintainer.store().metrics().snapshot().transactions_read;
        assert_eq!(
            db_reads_before, db_reads_after,
            "round {i}: insert-only commit rescanned the old database"
        );
        let stats = maintainer.index_stats();
        assert_eq!(
            (stats.builds, stats.extends),
            (1, i as u64 + 1),
            "round {i}: the index must be extended, never rebuilt"
        );
        maintainer
            .verify_consistency()
            .expect("vertical == re-mine");
    }

    // A deletion invalidates the index (the live set reorders): the next
    // acquisition rebuilds, and correctness is unaffected.
    let victim = maintainer.store().iter().next().unwrap().0;
    maintainer
        .apply(UpdateBatch::delete_only(vec![victim]))
        .unwrap();
    assert_eq!(maintainer.index_stats().builds, 2);
    maintainer.verify_consistency().expect("rebuild == re-mine");
}

// The deprecated RuleMaintainer is a thin wrapper over the session — same
// results, same reports. (The shim is exercised deliberately; hence the
// explicit allow.)
#[test]
#[allow(deprecated)]
fn legacy_shim_still_works_and_matches_the_session_api() {
    use fup::RuleMaintainer;
    let (history, increments) = generate_multi_split(&workload_params(), &[300, 300]);
    let history = history.into_transactions();
    let mut legacy = RuleMaintainer::bootstrap(
        history.clone(),
        MinSupport::percent(1),
        MinConfidence::percent(60),
    );
    let mut session = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history)
        .unwrap();
    for inc in increments {
        let batch = UpdateBatch::insert_only(inc.into_transactions());
        let a = legacy.apply_update(batch.clone()).unwrap();
        let b = session.apply(batch).unwrap();
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.num_transactions, b.num_transactions);
        assert_eq!(a.inserted_tids, b.inserted_tids);
        assert_eq!(a.itemsets, b.itemsets);
        assert_eq!(a.rules.added, b.rules.added);
        assert_eq!(a.rules.removed, b.rules.removed);
    }
    assert!(legacy
        .large_itemsets()
        .same_itemsets(session.large_itemsets()));
    assert_eq!(legacy.rules(), session.rules());
    legacy.verify_consistency().unwrap();
}

#[test]
fn all_miners_agree_on_generated_data() {
    let (db, _) = generate_multi_split(&workload_params(), &[]);
    let miners: Vec<Box<dyn Miner>> = vec![Box::new(Apriori::new()), Box::new(Dhp::new())];
    for bp in [300u64, 100] {
        let minsup = MinSupport::basis_points(bp);
        let results: Vec<_> = miners.iter().map(|m| m.mine(&db, minsup)).collect();
        assert!(
            results[0].large.same_itemsets(&results[1].large),
            "{}bp: {:?}",
            bp,
            results[0].large.diff(&results[1].large)
        );
        assert!(!results[0].large.is_empty(), "{bp}bp found nothing");
    }
}

#[test]
fn fup_reads_less_data_than_remine() {
    // The paper's economics: FUP scans the increment (small) per pass and
    // DB only for pruned candidates, so it reads far fewer transactions
    // than re-running the miner on DB ∪ db. Both sides pin the HashTree
    // counting backend — the claim is about the paper's scanning
    // algorithms, and the vertical backend deliberately rewrites the scan
    // schedule (an Auto re-mine collapses to two scans total, which is
    // asserted separately below).
    let params = GenParams {
        num_transactions: 5_000,
        increment_size: 250,
        seed: 0x10,
        ..GenParams::default()
    };
    let data = fup::datagen::generate_split(&params);
    let minsup = MinSupport::percent(1);
    let paper_engine =
        fup::mining::EngineConfig::default().with_backend(fup::mining::CountingBackend::HashTree);
    let apriori = Apriori::with_config(fup::mining::apriori::AprioriConfig {
        engine: paper_engine.clone(),
        ..Default::default()
    });

    let baseline = apriori.run(&data.db, minsup).large;
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let out = fup::Fup::with_config(fup::FupConfig {
        engine: paper_engine.clone(),
        ..fup::FupConfig::full()
    })
    .update(&data.db, &baseline, &data.increment, minsup)
    .unwrap();
    let fup_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;

    let whole = fup::tidb::source::ChainSource::new(&data.db, &data.increment);
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let remined = apriori.run(&whole, minsup);
    let remine_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;

    assert!(out.large.same_itemsets(&remined.large));
    // FUP touches DB for at most the first two candidate scans (deeper
    // iterations run on its trimmed working copies), while the re-mine
    // scans DB ∪ db once per level.
    assert!(
        fup_reads < remine_reads,
        "expected fewer transactions read: FUP {fup_reads} vs re-mine {remine_reads}"
    );

    // Under the default Auto backend the same re-mine flips to the
    // vertical index on this workload and touches the data exactly twice
    // (the item-counting pass and the index build) — identical itemsets,
    // a fraction of the reads.
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let auto_remined = Apriori::new().run(&whole, minsup);
    let auto_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;
    assert!(auto_remined.large.same_itemsets(&remined.large));
    assert_eq!(auto_reads, 2 * whole.num_transactions());
    assert!(auto_reads < remine_reads);
}

#[test]
fn paged_store_feeds_the_miners() {
    // The paged storage simulation is a drop-in TransactionSource.
    let (db, _) = generate_multi_split(&workload_params(), &[]);
    let paged =
        fup::tidb::page::PagedStore::from_transactions(db.raw().iter()).expect("fits pages");
    let minsup = MinSupport::percent(1);
    let from_paged = Apriori::new().run(&paged, minsup).large;
    let from_memory = Apriori::new().run(&db, minsup).large;
    assert!(from_paged.same_itemsets(&from_memory));
    assert!(paged.metrics().pages_read() > 0);
    assert!(paged.metrics().bytes_read() > 0);
}

//! End-to-end integration across all crates: generator → substrate →
//! mining → incremental maintenance → rules.

use fup::datagen::{generate_multi_split, GenParams};
use fup::{
    Apriori, Dhp, MinConfidence, MinSupport, Miner, RuleMaintainer, TransactionSource, UpdateBatch,
};

fn workload_params() -> GenParams {
    GenParams {
        num_transactions: 3_000,
        increment_size: 0,
        num_items: 400,
        num_patterns: 300,
        pool_size: 30,
        seed: 0xe2e,
        ..GenParams::default()
    }
}

#[test]
fn maintainer_tracks_remine_over_many_rounds() {
    let (history, increments) = generate_multi_split(&workload_params(), &[300; 6]);
    let mut maintainer = RuleMaintainer::bootstrap(
        history.into_transactions(),
        MinSupport::percent(1),
        MinConfidence::percent(60),
    );
    assert!(
        !maintainer.rules().is_empty(),
        "bootstrap should find rules"
    );

    for (i, inc) in increments.into_iter().enumerate() {
        let report = maintainer
            .apply_update(UpdateBatch::insert_only(inc.into_transactions()))
            .unwrap();
        assert_eq!(report.algorithm, "fup");
        maintainer
            .verify_consistency()
            .unwrap_or_else(|d| panic!("round {i} diverged: {d:?}"));
    }
    assert_eq!(maintainer.len(), 3_000 + 6 * 300);
}

#[test]
fn mixed_insert_delete_rounds_stay_consistent() {
    let (history, increments) = generate_multi_split(&workload_params(), &[400, 400, 400]);
    let mut maintainer = RuleMaintainer::bootstrap(
        history.into_transactions(),
        MinSupport::percent(1),
        MinConfidence::percent(70),
    );
    for inc in increments {
        // Delete a slice of the oldest transactions while inserting.
        let victims: Vec<_> = maintainer
            .store()
            .iter()
            .take(150)
            .map(|(tid, _)| tid)
            .collect();
        let report = maintainer
            .apply_update(UpdateBatch {
                inserts: inc.into_transactions(),
                deletes: victims,
            })
            .unwrap();
        assert_eq!(report.algorithm, "fup2");
        maintainer.verify_consistency().expect("FUP2 == re-mine");
    }
    assert_eq!(maintainer.len(), 3_000 + 3 * 400 - 3 * 150);
}

#[test]
fn all_miners_agree_on_generated_data() {
    let (db, _) = generate_multi_split(&workload_params(), &[]);
    let miners: Vec<Box<dyn Miner>> = vec![Box::new(Apriori::new()), Box::new(Dhp::new())];
    for bp in [300u64, 100] {
        let minsup = MinSupport::basis_points(bp);
        let results: Vec<_> = miners.iter().map(|m| m.mine(&db, minsup)).collect();
        assert!(
            results[0].large.same_itemsets(&results[1].large),
            "{}bp: {:?}",
            bp,
            results[0].large.diff(&results[1].large)
        );
        assert!(!results[0].large.is_empty(), "{bp}bp found nothing");
    }
}

#[test]
fn fup_reads_less_data_than_remine() {
    // The paper's economics: FUP scans the increment (small) per pass and
    // DB only for pruned candidates, so it reads far fewer transactions
    // than re-running the miner on DB ∪ db. Both sides pin the HashTree
    // counting backend — the claim is about the paper's scanning
    // algorithms, and the vertical backend deliberately rewrites the scan
    // schedule (an Auto re-mine collapses to two scans total, which is
    // asserted separately below).
    let params = GenParams {
        num_transactions: 5_000,
        increment_size: 250,
        seed: 0x10,
        ..GenParams::default()
    };
    let data = fup::datagen::generate_split(&params);
    let minsup = MinSupport::percent(1);
    let paper_engine =
        fup::mining::EngineConfig::default().with_backend(fup::mining::CountingBackend::HashTree);
    let apriori = Apriori::with_config(fup::mining::apriori::AprioriConfig {
        engine: paper_engine.clone(),
        ..Default::default()
    });

    let baseline = apriori.run(&data.db, minsup).large;
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let out = fup::Fup::with_config(fup::FupConfig {
        engine: paper_engine.clone(),
        ..fup::FupConfig::full()
    })
    .update(&data.db, &baseline, &data.increment, minsup)
    .unwrap();
    let fup_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;

    let whole = fup::tidb::source::ChainSource::new(&data.db, &data.increment);
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let remined = apriori.run(&whole, minsup);
    let remine_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;

    assert!(out.large.same_itemsets(&remined.large));
    // FUP touches DB for at most the first two candidate scans (deeper
    // iterations run on its trimmed working copies), while the re-mine
    // scans DB ∪ db once per level.
    assert!(
        fup_reads < remine_reads,
        "expected fewer transactions read: FUP {fup_reads} vs re-mine {remine_reads}"
    );

    // Under the default Auto backend the same re-mine flips to the
    // vertical index on this workload and touches the data exactly twice
    // (the item-counting pass and the index build) — identical itemsets,
    // a fraction of the reads.
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let auto_remined = Apriori::new().run(&whole, minsup);
    let auto_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;
    assert!(auto_remined.large.same_itemsets(&remined.large));
    assert_eq!(auto_reads, 2 * whole.num_transactions());
    assert!(auto_reads < remine_reads);
}

#[test]
fn paged_store_feeds_the_miners() {
    // The paged storage simulation is a drop-in TransactionSource.
    let (db, _) = generate_multi_split(&workload_params(), &[]);
    let paged =
        fup::tidb::page::PagedStore::from_transactions(db.raw().iter()).expect("fits pages");
    let minsup = MinSupport::percent(1);
    let from_paged = Apriori::new().run(&paged, minsup).large;
    let from_memory = Apriori::new().run(&db, minsup).large;
    assert!(from_paged.same_itemsets(&from_memory));
    assert!(paged.metrics().pages_read() > 0);
    assert!(paged.metrics().bytes_read() > 0);
}

//! End-to-end integration across all crates: generator → substrate →
//! mining → incremental maintenance → rules, through the session API
//! (builder, staged commits, snapshot reads, persistent vertical index).

use fup::datagen::{generate_multi_split, GenParams};
use fup::{
    Apriori, CountingBackend, Dhp, Maintainer, MinConfidence, MinSupport, Miner, Transaction,
    TransactionSource, UpdateBatch,
};

fn workload_params() -> GenParams {
    GenParams {
        num_transactions: 3_000,
        increment_size: 0,
        num_items: 400,
        num_patterns: 300,
        pool_size: 30,
        seed: 0xe2e,
        ..GenParams::default()
    }
}

#[test]
fn maintainer_tracks_remine_over_many_rounds() {
    let (history, increments) = generate_multi_split(&workload_params(), &[300; 6]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.into_transactions())
        .unwrap();
    assert!(
        !maintainer.rules().is_empty(),
        "bootstrap should find rules"
    );

    for (i, inc) in increments.into_iter().enumerate() {
        let report = maintainer
            .apply(UpdateBatch::insert_only(inc.into_transactions()))
            .unwrap();
        assert_eq!(report.algorithm, "fup");
        assert_eq!(report.version, i as u64 + 1);
        maintainer
            .verify_consistency()
            .unwrap_or_else(|d| panic!("round {i} diverged: {d}"));
    }
    assert_eq!(maintainer.len(), 3_000 + 6 * 300);
    assert_eq!(maintainer.version(), 6);
}

#[test]
fn mixed_insert_delete_rounds_stay_consistent() {
    let (history, increments) = generate_multi_split(&workload_params(), &[400, 400, 400]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(70))
        .build(history.into_transactions())
        .unwrap();
    for inc in increments {
        // Delete a slice of the oldest transactions while inserting.
        let victims: Vec<_> = maintainer
            .store()
            .iter()
            .take(150)
            .map(|(tid, _)| tid)
            .collect();
        let report = maintainer
            .apply(UpdateBatch {
                inserts: inc.into_transactions(),
                deletes: victims,
            })
            .unwrap();
        assert_eq!(report.algorithm, "fup2");
        maintainer.verify_consistency().expect("FUP2 == re-mine");
    }
    assert_eq!(maintainer.len(), 3_000 + 3 * 400 - 3 * 150);
}

#[test]
fn staged_batches_commit_as_one_round_with_stable_snapshots() {
    let (history, increments) = generate_multi_split(&workload_params(), &[200, 200, 200]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.into_transactions())
        .unwrap();
    let bootstrap = maintainer.snapshot();
    assert_eq!(bootstrap.version(), 0);

    // stage → stage → stage → one commit: arrival is decoupled from
    // application, and reads in between see the old state.
    for inc in increments {
        maintainer
            .stage(UpdateBatch::insert_only(inc.into_transactions()))
            .unwrap();
        assert_eq!(maintainer.len(), 3_000, "staging must not touch the store");
        assert_eq!(maintainer.version(), 0);
    }
    assert_eq!(maintainer.staged().inserts.len(), 600);
    let report = maintainer.commit().unwrap();
    assert_eq!(report.algorithm, "fup");
    assert_eq!(report.version, 1);
    assert_eq!(report.num_transactions, 3_600);
    assert_eq!(report.inserted_tids.len(), 600);
    maintainer.verify_consistency().expect("FUP == re-mine");

    // The pre-commit snapshot is still valid, version-stamped, and
    // internally consistent; the post-commit snapshot sees the new state.
    assert_eq!(bootstrap.version(), 0);
    assert_eq!(bootstrap.num_transactions(), 3_000);
    let now = maintainer.snapshot();
    assert_eq!(now.version(), 1);
    assert_eq!(now.num_transactions(), 3_600);
    for rule in bootstrap.top_k_by_confidence(5) {
        // Old-snapshot supports answer from the old state even though the
        // maintainer has moved on.
        assert_eq!(
            bootstrap.support_of(&rule.antecedent),
            bootstrap.large_itemsets().support(&rule.antecedent)
        );
    }
}

#[test]
fn persistent_index_is_extended_not_rebuilt_on_insert_only_commits() {
    // Acceptance: with the vertical backend pinned, insert-only commits
    // extend the session's persistent index with the staged delta — the
    // old database is NOT rescanned (scan-count asserted) and the index
    // is not rebuilt (build/extend counters asserted). Increments only
    // use items that are already large, so the index's item filter stays
    // valid (no dictionary growth).
    let (history, increments) = generate_multi_split(&workload_params(), &[250; 4]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .backend(CountingBackend::Vertical)
        .build(history.into_transactions())
        .unwrap();
    // The pinned-vertical session seeds its index at bootstrap.
    let stats = maintainer.index_stats();
    assert_eq!((stats.builds, stats.extends), (1, 0));
    assert!(stats.resident);

    for (i, inc) in increments.into_iter().enumerate() {
        // Restrict the increment to items already large, so no new item
        // can cross the threshold and invalidate the index filter.
        let keep: std::collections::HashSet<fup::ItemId> = maintainer
            .large_itemsets()
            .level(1)
            .map(|(x, _)| x.items()[0])
            .collect();
        let filtered: Vec<Transaction> = inc
            .into_transactions()
            .into_iter()
            .map(|t| {
                Transaction::from_items(
                    t.items()
                        .iter()
                        .copied()
                        .filter(|it| keep.contains(it))
                        .map(|it| it.raw()),
                )
            })
            .filter(|t: &Transaction| !t.is_empty())
            .collect();
        assert!(!filtered.is_empty());

        let db_reads_before = maintainer.store().metrics().snapshot().transactions_read;
        maintainer
            .stage(UpdateBatch::insert_only(filtered))
            .unwrap();
        let report = maintainer.commit().unwrap();
        assert_eq!(report.algorithm, "fup");

        // The old database was never rescanned: every support came from
        // the persistent index (extended by the increment's delta scan)
        // and the increment-side passes.
        let db_reads_after = maintainer.store().metrics().snapshot().transactions_read;
        assert_eq!(
            db_reads_before, db_reads_after,
            "round {i}: insert-only commit rescanned the old database"
        );
        let stats = maintainer.index_stats();
        assert_eq!(
            (stats.builds, stats.extends),
            (1, i as u64 + 1),
            "round {i}: the index must be extended, never rebuilt"
        );
        maintainer
            .verify_consistency()
            .expect("vertical == re-mine");
    }

    // A deletion invalidates the index (the live set reorders): the next
    // acquisition rebuilds, and correctness is unaffected.
    let victim = maintainer.store().iter().next().unwrap().0;
    maintainer
        .apply(UpdateBatch::delete_only(vec![victim]))
        .unwrap();
    assert_eq!(maintainer.index_stats().builds, 2);
    maintainer.verify_consistency().expect("rebuild == re-mine");
}

#[test]
fn auto_backend_seeds_the_index_at_bootstrap_and_extends_it() {
    // Satellite of the ROADMAP item "seed the IndexSlot under Auto too":
    // a session on the default Auto backend whose bootstrap mine engaged
    // vertical counting adopts the mine's own index — no second scan —
    // and the first update round that engages vertical *extends* it with
    // the delta instead of rebuilding over the whole store.
    let params = GenParams {
        num_transactions: 6_000, // past AUTO_MIN_TRANSACTIONS = 4 096
        increment_size: 0,
        num_items: 400,
        num_patterns: 300,
        pool_size: 30,
        seed: 0xa07e,
        ..GenParams::default()
    };
    let (history, _) = generate_multi_split(&params, &[]);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .backend(CountingBackend::Auto)
        .build(history.into_transactions())
        .unwrap();
    // The bootstrap mine crossed the Auto thresholds, built the index for
    // its own passes, and the session adopted it.
    let stats = maintainer.index_stats();
    assert!(stats.resident, "Auto bootstrap must seed the index");
    assert_eq!((stats.builds, stats.extends), (1, 0));

    // Build an increment over the 60 most frequent existing items (no
    // dictionary growth — the adopted index's filter still covers
    // everything) whose fresh item combinations generate a pass-2
    // candidate pool big enough for Auto to engage vertical counting.
    let mut top: Vec<(u64, fup::ItemId)> = maintainer
        .large_itemsets()
        .level(1)
        .map(|(x, c)| (c, x.items()[0]))
        .collect();
    top.sort_unstable_by(|a, b| b.cmp(a));
    let alphabet: Vec<u32> = top.iter().take(60).map(|&(_, it)| it.raw()).collect();
    let increment: Vec<Transaction> = (0..500u64)
        .map(|i| {
            // 10 deterministically-rotating items per transaction.
            Transaction::from_items(
                (0..10u64).map(|j| alphabet[((i * 13 + j * 7 + i * j) % 60) as usize]),
            )
        })
        .collect();

    let reads_before = maintainer.store().metrics().snapshot().transactions_read;
    maintainer
        .stage(UpdateBatch::insert_only(increment))
        .unwrap();
    let report = maintainer.commit().unwrap();
    assert_eq!(report.algorithm, "fup");

    // The round engaged the vertical backend, found the seeded index
    // resident, and extended it with the increment's delta scan: the old
    // database was never rescanned and no rebuild happened.
    let reads_after = maintainer.store().metrics().snapshot().transactions_read;
    assert_eq!(
        reads_before, reads_after,
        "the engaging commit must not rescan the old database"
    );
    let stats = maintainer.index_stats();
    assert_eq!(
        (stats.builds, stats.extends),
        (1, 1),
        "the seeded index must be extended, not rebuilt"
    );
    maintainer.verify_consistency().expect("auto == re-mine");
}

#[test]
fn service_with_eight_producers_matches_serial_staging() {
    // The PR's acceptance scenario: 8 producer threads stage through a
    // running MaintainerService while snapshot readers query concurrently;
    // the background committer splits the stream into rounds on a pending
    // trigger, and the final state is bit-identical to staging the same
    // batches serially in one session.
    use fup::{CommitPolicy, MaintainerService};
    use std::sync::atomic::{AtomicBool, Ordering};

    let (history, increments) = generate_multi_split(&workload_params(), &[150; 16]);
    let history = history.into_transactions();
    let batches: Vec<Vec<Transaction>> = increments
        .into_iter()
        .map(|db| db.into_transactions())
        .collect();
    let build = |history: Vec<Transaction>| {
        Maintainer::builder()
            .min_support(MinSupport::percent(1))
            .min_confidence(MinConfidence::percent(60))
            .build(history)
            .unwrap()
    };

    let mut serial = build(history.clone());
    for batch in &batches {
        serial
            .stage(UpdateBatch::insert_only(batch.clone()))
            .unwrap();
    }
    serial.commit().unwrap();

    let service = MaintainerService::launch(
        build(history),
        CommitPolicy::manual()
            .every_ops(400)
            .with_poll_interval(std::time::Duration::from_millis(1)),
    )
    .unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (service, stop) = (&service, &stop);
            scope.spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    assert!(snap.version() >= last, "snapshot versions rewound");
                    last = snap.version();
                }
            });
        }
        std::thread::scope(|producers| {
            for worker in 0..8usize {
                let (service, batches) = (&service, &batches);
                producers.spawn(move || {
                    for batch in batches.iter().skip(worker).step_by(8) {
                        service
                            .stage(UpdateBatch::insert_only(batch.clone()))
                            .unwrap();
                    }
                });
            }
        });
        service.flush().unwrap();
        stop.store(true, Ordering::Relaxed);
    });

    let (maintainer, metrics) = service.shutdown();
    assert_eq!(metrics.staged_inserts, 16 * 150);
    assert_eq!(metrics.committed_inserts, 16 * 150);
    assert_eq!(metrics.dropped_rounds, 0);
    assert_eq!(maintainer.len(), serial.len());
    assert!(
        maintainer
            .large_itemsets()
            .same_itemsets(serial.large_itemsets()),
        "{:?}",
        maintainer.large_itemsets().diff(serial.large_itemsets())
    );
    for (itemset, support) in serial.large_itemsets().iter() {
        assert_eq!(maintainer.large_itemsets().support(itemset), Some(support));
    }
    assert_eq!(maintainer.rules(), serial.rules());
    maintainer.verify_consistency().unwrap();
}

// A durable session killed mid-stream recovers to exactly its last
// acknowledged commit, with un-committed staged batches re-queued — the
// crash-restart path, end to end through the facade on generated data.
#[test]
fn durable_session_survives_a_crash_on_generated_data() {
    use fup::tidb::{DurableStorage, MemStorage};
    use std::sync::Arc;

    let (history, increments) = generate_multi_split(&workload_params(), &[300, 300, 300]);
    let storage = Arc::new(MemStorage::new());
    let history = history.into_transactions();
    let mut reference = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.clone())
        .unwrap();
    let mut durable = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build_durable(history, Arc::clone(&storage) as Arc<dyn DurableStorage>)
        .unwrap();

    let mut increments = increments.into_iter();
    for _ in 0..2 {
        let batch = UpdateBatch::insert_only(increments.next().unwrap().into_transactions());
        reference.apply(batch.clone()).unwrap();
        durable.apply(batch).unwrap();
    }
    // A third increment is staged but never committed before the "crash".
    let tail = UpdateBatch::insert_only(increments.next().unwrap().into_transactions());
    durable.stage(tail.clone()).unwrap();
    let crash_image = Arc::new(MemStorage::from_files(storage.files()));
    drop(durable);

    let (mut recovered, report) = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .recover(crash_image as Arc<dyn DurableStorage>)
        .unwrap();
    assert_eq!(report.replayed_rounds + report.restaged_batches, 3);
    assert_eq!(recovered.version(), reference.version());
    assert!(recovered
        .large_itemsets()
        .same_itemsets(reference.large_itemsets()));
    assert_eq!(recovered.rules(), reference.rules());

    // The re-queued batch commits on the recovered session exactly as it
    // would have on the original.
    let a = recovered.commit().unwrap();
    let b = reference.apply(tail).unwrap();
    assert_eq!(a.algorithm, b.algorithm);
    assert_eq!(a.num_transactions, b.num_transactions);
    assert_eq!(a.itemsets, b.itemsets);
    assert!(recovered
        .large_itemsets()
        .same_itemsets(reference.large_itemsets()));
    recovered.verify_consistency().unwrap();
}

#[test]
fn all_miners_agree_on_generated_data() {
    let (db, _) = generate_multi_split(&workload_params(), &[]);
    let miners: Vec<Box<dyn Miner>> = vec![Box::new(Apriori::new()), Box::new(Dhp::new())];
    for bp in [300u64, 100] {
        let minsup = MinSupport::basis_points(bp);
        let results: Vec<_> = miners.iter().map(|m| m.mine(&db, minsup)).collect();
        assert!(
            results[0].large.same_itemsets(&results[1].large),
            "{}bp: {:?}",
            bp,
            results[0].large.diff(&results[1].large)
        );
        assert!(!results[0].large.is_empty(), "{bp}bp found nothing");
    }
}

#[test]
fn fup_reads_less_data_than_remine() {
    // The paper's economics: FUP scans the increment (small) per pass and
    // DB only for pruned candidates, so it reads far fewer transactions
    // than re-running the miner on DB ∪ db. Both sides pin the HashTree
    // counting backend — the claim is about the paper's scanning
    // algorithms, and the vertical backend deliberately rewrites the scan
    // schedule (an Auto re-mine collapses to two scans total, which is
    // asserted separately below).
    let params = GenParams {
        num_transactions: 5_000,
        increment_size: 250,
        seed: 0x10,
        ..GenParams::default()
    };
    let data = fup::datagen::generate_split(&params);
    let minsup = MinSupport::percent(1);
    let paper_engine =
        fup::mining::EngineConfig::default().with_backend(fup::mining::CountingBackend::HashTree);
    let apriori = Apriori::with_config(fup::mining::apriori::AprioriConfig {
        engine: paper_engine.clone(),
        ..Default::default()
    });

    let baseline = apriori.run(&data.db, minsup).large;
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let out = fup::Fup::with_config(fup::FupConfig {
        engine: paper_engine.clone(),
        ..fup::FupConfig::full()
    })
    .update(&data.db, &baseline, &data.increment, minsup)
    .unwrap();
    let fup_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;

    let whole = fup::tidb::source::ChainSource::new(&data.db, &data.increment);
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let remined = apriori.run(&whole, minsup);
    let remine_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;

    assert!(out.large.same_itemsets(&remined.large));
    // FUP touches DB for at most the first two candidate scans (deeper
    // iterations run on its trimmed working copies), while the re-mine
    // scans DB ∪ db once per level.
    assert!(
        fup_reads < remine_reads,
        "expected fewer transactions read: FUP {fup_reads} vs re-mine {remine_reads}"
    );

    // Under the default Auto backend the same re-mine flips to the
    // vertical index on this workload and touches the data exactly twice
    // (the item-counting pass and the index build) — identical itemsets,
    // a fraction of the reads.
    let before_db = data.db.metrics().snapshot();
    let before_inc = data.increment.metrics().snapshot();
    let auto_remined = Apriori::new().run(&whole, minsup);
    let auto_reads = data
        .db
        .metrics()
        .snapshot()
        .since(&before_db)
        .transactions_read
        + data
            .increment
            .metrics()
            .snapshot()
            .since(&before_inc)
            .transactions_read;
    assert!(auto_remined.large.same_itemsets(&remined.large));
    assert_eq!(auto_reads, 2 * whole.num_transactions());
    assert!(auto_reads < remine_reads);
}

#[test]
fn paged_store_feeds_the_miners() {
    // The paged storage simulation is a drop-in TransactionSource.
    let (db, _) = generate_multi_split(&workload_params(), &[]);
    let paged =
        fup::tidb::page::PagedStore::from_transactions(db.raw().iter()).expect("fits pages");
    let minsup = MinSupport::percent(1);
    let from_paged = Apriori::new().run(&paged, minsup).large;
    let from_memory = Apriori::new().run(&db, minsup).large;
    assert!(from_paged.same_itemsets(&from_memory));
    assert!(paged.metrics().pages_read() > 0);
    assert!(paged.metrics().bytes_read() > 0);
}

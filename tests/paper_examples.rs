//! The paper's two worked examples (§3.1 Example 1 and §3.2 Example 2),
//! reproduced end-to-end through the public API. Numbers below are the
//! paper's own.

use fup::{Fup, Itemset, LargeItemsets, MinSupport, Transaction, TransactionDb};
use std::ops::Range;

fn s(items: &[u32]) -> Itemset {
    Itemset::from_items(items.iter().copied())
}

/// Builds a `total`-transaction database in which each listed itemset
/// occupies a block of transaction indices (blocks may overlap when a
/// test wants co-occurrence); every transaction carries a unique filler
/// item so nothing else is ever frequent.
fn synthesise(total: u32, blocks: &[(&[u32], Range<u32>)], filler_base: u32) -> TransactionDb {
    let mut db = TransactionDb::new();
    for i in 0..total {
        let mut items: Vec<u32> = vec![filler_base + i];
        for (set, range) in blocks {
            if range.contains(&i) {
                items.extend_from_slice(set);
            }
        }
        db.push(Transaction::from_items(items));
    }
    db
}

#[test]
fn example_1_size_one_maintenance() {
    // D = 1000, d = 100, s = 3 %. L1 = {I1 (32), I2 (31)}; I3 at 28.
    // In db: I1 ×4, I2 ×1, I3 ×6, I4 ×2 (disjoint blocks).
    let db = synthesise(
        1000,
        &[(&[1], 0..32), (&[2], 32..63), (&[3], 63..91)],
        10_000,
    );
    let increment = synthesise(
        100,
        &[(&[1], 0..4), (&[2], 4..5), (&[3], 5..11), (&[4], 11..13)],
        20_000,
    );
    let minsup = MinSupport::percent(3);

    // The paper's given baseline.
    let mut baseline = LargeItemsets::new(1000);
    baseline.insert(s(&[1]), 32);
    baseline.insert(s(&[2]), 31);

    let out = Fup::new()
        .update(&db, &baseline, &increment, minsup)
        .unwrap();

    // I1.support_UD = 36 > 33 → stays large.
    assert_eq!(out.large.support(&s(&[1])), Some(36));
    // I2.support_UD = 32 < 33 → loser.
    assert_eq!(out.large.support(&s(&[2])), None);
    // I3: 6 ≥ 3 in db → candidate; 28 + 6 = 34 > 33 → new winner.
    assert_eq!(out.large.support(&s(&[3])), Some(34));
    // I4: 2 < 3 in db → pruned by Lemma 2, never checked against DB.
    assert_eq!(out.large.support(&s(&[4])), None);

    let d1 = &out.detail[0];
    assert_eq!(d1.winners_from_old, 1, "only I1 survives from L1");
    assert_eq!(d1.winners_from_new, 1, "only I3 emerges");
}

#[test]
fn example_2_size_two_maintenance() {
    // D = 1000, d = 100, s = 3 %.
    // L1 = {I1, I2, I3}, L2 = {I1I2 (50), I2I3 (31)}; I1I4 at 29 keeps
    // I4 just below the size-1 threshold (29 < 30).
    let db = synthesise(
        1000,
        &[(&[1, 2], 0..50), (&[2, 3], 50..81), (&[1, 4], 81..110)],
        10_000,
    );
    // Increment: I1I2 ×3, I1I4 ×5, I2I4 ×2, I4 alone ×1.
    let increment = synthesise(
        100,
        &[
            (&[1, 2], 0..3),
            (&[1, 4], 3..8),
            (&[2, 4], 8..10),
            (&[4], 10..11),
        ],
        20_000,
    );
    let minsup = MinSupport::percent(3);

    let baseline = fup::Apriori::new().run(&db, minsup).large;
    // Premises of the example.
    assert_eq!(baseline.support(&s(&[1])), Some(79));
    assert_eq!(baseline.support(&s(&[2])), Some(81));
    assert_eq!(baseline.support(&s(&[3])), Some(31));
    assert!(!baseline.contains(&s(&[4])), "premise: I4 ∉ L1 (29 < 30)");
    assert_eq!(baseline.support(&s(&[1, 2])), Some(50));
    assert_eq!(baseline.support(&s(&[2, 3])), Some(31));
    assert_eq!(baseline.len_at(2), 2, "L2 = {{I1I2, I2I3}} exactly");

    let out = Fup::new()
        .update(&db, &baseline, &increment, minsup)
        .unwrap();

    // Iteration 1: L'1 = {I1, I2, I4}; I3 loses (31 < 33).
    assert!(out.large.contains(&s(&[1])));
    assert!(out.large.contains(&s(&[2])));
    assert!(!out.large.contains(&s(&[3])), "I3 must lose");
    assert!(out.large.contains(&s(&[4])), "I4 must emerge");

    // Iteration 2, exactly as the paper walks it:
    //  - I2I3 ∈ L2 filtered by Lemma 3 (subset I3 is a loser);
    //  - I1I2: support_d = 3 → 53 > 33 → stays large;
    //  - C2 = apriori-gen(L'1) − L2 = {I1I4, I2I4};
    //  - I2I4.support_d = 2 < 3 → pruned (Lemma 5);
    //  - I1I4: support_D = 29, support_d = 5 → 34 > 33 → new winner.
    assert_eq!(out.large.support(&s(&[1, 2])), Some(53));
    assert!(!out.large.contains(&s(&[2, 3])), "Lemma 3 filters I2I3");
    assert_eq!(out.large.support(&s(&[1, 4])), Some(34));
    assert!(!out.large.contains(&s(&[2, 4])), "Lemma 5 prunes I2I4");
    assert_eq!(out.large.len_at(2), 2, "L'2 = {{I1I2, I1I4}} exactly");

    let d2 = out.detail.iter().find(|d| d.k == 2).unwrap();
    assert_eq!(d2.lemma3_losers, 1, "I2I3 dropped without scanning");
    assert_eq!(d2.winners_from_old, 1, "I1I2 confirmed");
    assert_eq!(d2.winners_from_new, 1, "I1I4 discovered");
    assert!(
        d2.candidates_checked < d2.candidates_generated,
        "I2I4 pruned before the DB scan"
    );

    // Cross-check with a full re-mine.
    let whole = fup::tidb::source::ChainSource::new(&db, &increment);
    let fresh = fup::Apriori::new().run(&whole, minsup).large;
    assert!(
        out.large.same_itemsets(&fresh),
        "{:?}",
        out.large.diff(&fresh)
    );
}

//! A rule base that survives restarts: the `retail_feed` scenario with
//! the write-ahead log switched on. The first "process" bootstraps a
//! durable session in a real directory, commits two incremental rounds,
//! stages a third — and is dropped mid-flight, exactly like a crash or
//! `kill -9`. The second "process" opens the same directory, recovers
//! from the latest checkpoint plus the WAL tail, finds the staged batch
//! re-queued, and commits it as if nothing happened.
//!
//! ```sh
//! cargo run --release --example durable_restart
//! ```

use fup::core::DurabilityPolicy;
use fup::datagen::{generate_multi_split, GenParams};
use fup::tidb::{DiskStorage, DurableStorage};
use fup::{Maintainer, MinConfidence, MinSupport, UpdateBatch};
use std::sync::Arc;

fn main() {
    let params = GenParams {
        num_transactions: 6_000,
        increment_size: 0,
        seed: 0xd0_d0,
        ..GenParams::default()
    };
    let (history, batches) = generate_multi_split(&params, &[1_000, 1_000, 1_000]);
    let mut batches = batches.into_iter().map(|db| db.into_transactions());

    let dir = std::env::temp_dir().join(format!("fup-durable-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create WAL directory");
    println!("durable state lives in {}\n", dir.display());

    // ---- process #1: bootstrap, commit twice, crash mid-stage ----------
    {
        let storage = Arc::new(DiskStorage::open(&dir).expect("open storage"));
        let mut session = Maintainer::builder()
            .min_support(MinSupport::percent(1))
            .min_confidence(MinConfidence::percent(60))
            .durability(DurabilityPolicy::default())
            .build_durable(
                history.into_transactions(),
                Arc::clone(&storage) as Arc<dyn DurableStorage>,
            )
            .expect("bootstrap durable session");
        println!(
            "process #1: mined {} rules from {} baskets (checkpoint written)",
            session.rules().len(),
            session.len()
        );

        for round in 0..2 {
            session
                .stage(UpdateBatch::insert_only(batches.next().unwrap()))
                .expect("stage");
            let report = session.commit().expect("commit");
            println!(
                "process #1: round {round} durably acknowledged at version {} ({} baskets)",
                report.version, report.num_transactions
            );
        }

        // The third batch reaches the WAL but its commit never does.
        session
            .stage(UpdateBatch::insert_only(batches.next().unwrap()))
            .expect("stage");
        println!("process #1: staged 1000 more baskets... crash! (session dropped)\n");
    } // <- the "crash": everything in memory is gone, only the directory remains

    // ---- process #2: recover from the directory alone ------------------
    let storage = Arc::new(DiskStorage::open(&dir).expect("reopen storage"));
    let (mut session, report) = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .durability(DurabilityPolicy::default())
        .recover(storage as Arc<dyn DurableStorage>)
        .expect("recover");
    println!(
        "process #2: recovered to version {} from checkpoint {} \
         ({} round(s) replayed, {} staged batch(es) re-queued)",
        report.version, report.checkpoint_seq, report.replayed_rounds, report.restaged_batches
    );
    if let Some(err) = &report.wal_tail_dropped {
        println!("process #2: dropped a torn WAL tail: {err}");
    }

    // The crashed batch is still staged — commit it like nothing happened.
    let report = session.commit().expect("commit the re-queued batch");
    println!(
        "process #2: committed the re-queued batch: version {}, {} baskets, {} rules",
        report.version,
        report.num_transactions,
        session.rules().len()
    );

    session
        .verify_consistency()
        .expect("recovered + maintained rules == re-mine from scratch");
    println!("process #2: state verified against a from-scratch re-mine");

    std::fs::remove_dir_all(&dir).ok();
}

//! Quickstart: bootstrap a rule set from history, then keep it current as
//! new transactions arrive — without ever re-mining from scratch.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fup::{ItemDictionary, MinConfidence, MinSupport, RuleMaintainer, Transaction, UpdateBatch};

fn main() {
    // Name the items like a point-of-sale feed would.
    let mut dict = ItemDictionary::new();
    let bread = dict.intern("bread").unwrap();
    let butter = dict.intern("butter").unwrap();
    let milk = dict.intern("milk").unwrap();
    let beer = dict.intern("beer").unwrap();
    let chips = dict.intern("chips").unwrap();

    // Historical baskets.
    let history = vec![
        Transaction::from_items([bread, butter]),
        Transaction::from_items([bread, butter, milk]),
        Transaction::from_items([bread, milk]),
        Transaction::from_items([butter, milk]),
        Transaction::from_items([beer, chips]),
        Transaction::from_items([bread, butter]),
    ];

    // Mine once (Apriori), derive rules once.
    let mut maintainer =
        RuleMaintainer::bootstrap(history, MinSupport::percent(30), MinConfidence::percent(75));
    println!(
        "bootstrap: {} transactions, {} rules",
        maintainer.len(),
        maintainer.rules().len()
    );
    for rule in maintainer.rules().rules() {
        println!(
            "  {} => {}  (conf {:.2})",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
            rule.confidence()
        );
    }

    // The evening batch arrives: beer+chips shoppers flood in.
    let batch = UpdateBatch::insert_only(vec![
        Transaction::from_items([beer, chips]),
        Transaction::from_items([beer, chips, bread]),
        Transaction::from_items([beer, chips]),
    ]);
    let report = maintainer.apply_update(batch).expect("valid update");

    println!(
        "\nafter update ({} transactions, ran {}):",
        report.num_transactions, report.algorithm
    );
    for rule in &report.rules.added {
        println!(
            "  NEW     {} => {}  (conf {:.2})",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
            rule.confidence()
        );
    }
    for rule in &report.rules.removed {
        println!(
            "  EXPIRED {} => {}",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
        );
    }
    println!("  retained {} rules", report.rules.retained);

    // The maintained state is provably identical to a full re-mine.
    maintainer.verify_consistency().expect("FUP == re-mine");
    println!("\nconsistency verified: incremental result == from-scratch mine");
}

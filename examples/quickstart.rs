//! Quickstart: build a maintenance session from history, then keep it
//! current as new transactions arrive — staged on arrival, committed as
//! one incremental round, served through snapshots — without ever
//! re-mining from scratch.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fup::{ItemDictionary, Maintainer, MinConfidence, MinSupport, Transaction, UpdateBatch};

fn main() {
    // Name the items like a point-of-sale feed would.
    let mut dict = ItemDictionary::new();
    let bread = dict.intern("bread").unwrap();
    let butter = dict.intern("butter").unwrap();
    let milk = dict.intern("milk").unwrap();
    let beer = dict.intern("beer").unwrap();
    let chips = dict.intern("chips").unwrap();

    // Historical baskets.
    let history = vec![
        Transaction::from_items([bread, butter]),
        Transaction::from_items([bread, butter, milk]),
        Transaction::from_items([bread, milk]),
        Transaction::from_items([butter, milk]),
        Transaction::from_items([beer, chips]),
        Transaction::from_items([bread, butter]),
    ];

    // One validating builder instead of scattered config structs: the
    // session mines once (Apriori) and derives rules once.
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(30))
        .min_confidence(MinConfidence::percent(75))
        .build(history)
        .expect("valid session configuration");
    let bootstrap = maintainer.snapshot();
    println!(
        "bootstrap (v{}): {} transactions, {} rules",
        bootstrap.version(),
        bootstrap.num_transactions(),
        bootstrap.rules().len()
    );
    for rule in bootstrap.top_k_by_confidence(10) {
        println!(
            "  {} => {}  (conf {:.2})",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
            rule.confidence()
        );
    }

    // The evening batches arrive: beer+chips shoppers flood in. Staging
    // accumulates them without touching the mined state...
    maintainer
        .stage(UpdateBatch::insert_only(vec![
            Transaction::from_items([beer, chips]),
            Transaction::from_items([beer, chips, bread]),
        ]))
        .expect("valid batch");
    maintainer
        .stage(UpdateBatch::insert_only(vec![Transaction::from_items([
            beer, chips,
        ])]))
        .expect("valid batch");
    // ...and one commit applies everything staged as a single FUP round.
    let report = maintainer.commit().expect("valid update");

    println!(
        "\nafter commit (v{}, {} transactions, ran {}):",
        report.version, report.num_transactions, report.algorithm
    );
    for rule in &report.rules.added {
        println!(
            "  NEW     {} => {}  (conf {:.2})",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
            rule.confidence()
        );
    }
    for rule in &report.rules.removed {
        println!(
            "  EXPIRED {} => {}",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
        );
    }
    println!("  retained {} rules", report.rules.retained);

    // The bootstrap snapshot still reads its own consistent version, and
    // the new one answers serving-side queries directly.
    assert_eq!(bootstrap.version() + 1, maintainer.version());
    let now = maintainer.snapshot();
    println!("\nrules about beer at v{}:", now.version());
    for rule in now.rules_about(beer) {
        println!(
            "  {} => {}",
            dict.render_itemset(rule.antecedent.items()),
            dict.render_itemset(rule.consequent.items()),
        );
    }

    // The maintained state is provably identical to a full re-mine.
    maintainer.verify_consistency().expect("FUP == re-mine");
    println!("\nconsistency verified: incremental result == from-scratch mine");
}

//! Many point-of-sale terminals, one rule base: the concurrent version
//! of the `retail_feed` scenario. Four producer threads stream basket
//! batches into a [`MaintainerService`] while a dashboard thread reads
//! wait-free snapshots; the background committer folds the stream into
//! FUP rounds whenever 5 000 staged baskets accumulate, and a final
//! flush drains the tail.
//!
//! ```sh
//! cargo run --release --example concurrent_feeds
//! ```

use fup::datagen::{generate_multi_split, GenParams};
use fup::{CommitPolicy, Maintainer, MaintainerService, MinConfidence, MinSupport, UpdateBatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let feeds = 4usize;
    let batches_per_feed = 12usize;
    let params = GenParams {
        num_transactions: 20_000,
        increment_size: 0,
        seed: 0xfeed5,
        ..GenParams::default()
    };
    let (history, batches) = generate_multi_split(&params, &vec![500; feeds * batches_per_feed]);

    println!("bootstrap: mining {} historical baskets...", history.len());
    let t0 = Instant::now();
    let maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.into_transactions())
        .expect("valid session configuration");
    println!(
        "  {} rules in {:?}; launching the service\n",
        maintainer.rules().len(),
        t0.elapsed()
    );

    let service = MaintainerService::launch(
        maintainer,
        CommitPolicy::manual()
            .every_ops(5_000)
            .with_poll_interval(Duration::from_millis(2)),
    )
    .expect("valid commit policy");

    let batches: Vec<_> = batches
        .into_iter()
        .map(|db| db.into_transactions())
        .collect();
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // The dashboard: reads never block, version only moves forward.
        let dashboard = scope.spawn({
            let (service, stop) = (&service, &stop);
            move || {
                let mut peak_rules = 0usize;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    peak_rules = peak_rules.max(snap.rules().len());
                    reads += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                (reads, peak_rules)
            }
        });

        // Four terminals feed their share of the stream concurrently.
        std::thread::scope(|producers| {
            for feed in 0..feeds {
                let (service, batches) = (&service, &batches);
                producers.spawn(move || {
                    for batch in batches.iter().skip(feed).step_by(feeds) {
                        service
                            .stage(UpdateBatch::insert_only(batch.clone()))
                            .expect("valid batch");
                    }
                });
            }
        });
        let report = service.flush().expect("final flush");
        stop.store(true, Ordering::Relaxed);
        let (reads, peak_rules) = dashboard.join().expect("dashboard thread");

        println!(
            "streamed {} baskets from {feeds} feeds in {:?} (final version {}, {} rules)",
            feeds * batches_per_feed * 500,
            t0.elapsed(),
            report.version,
            peak_rules,
        );
        println!("dashboard took {reads} wait-free snapshots meanwhile");
    });

    let (maintainer, metrics) = service.shutdown();
    println!(
        "\nservice counters: {} batches staged ({} baskets), {} rounds committed, \
         {} ms committing total ({} ms last), index {} build(s) / {} extend(s)",
        metrics.staged_batches,
        metrics.staged_inserts,
        metrics.committed_rounds,
        metrics.total_commit_micros / 1_000,
        metrics.last_commit_micros / 1_000,
        metrics.index_builds,
        metrics.index_extends,
    );
    maintainer
        .verify_consistency()
        .expect("maintained rules == re-mine");
    println!(
        "final state verified against a from-scratch re-mine: {} baskets, {} rules",
        maintainer.len(),
        maintainer.rules().len()
    );
}

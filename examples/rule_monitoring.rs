//! Rule monitoring under drift: §1 of the paper observes that updates
//! "may not only invalidate some existing strong association rules but
//! also turn some weak rules into strong ones". This example makes that
//! visible: the transaction stream drifts mid-way (a different seasonal
//! pattern mix), and a watchlist of rules is tracked across commits.
//!
//! The watchlist itself is a [`RuleSnapshot`](fup::RuleSnapshot): taken
//! once at bootstrap, it stays valid and internally consistent across
//! every later commit — the serving side never blocks on, or races with,
//! the update side.
//!
//! ```sh
//! cargo run --release --example rule_monitoring
//! ```

use fup::datagen::{GenParams, QuestGenerator};
use fup::{Maintainer, MinConfidence, MinSupport, Rule, UpdateBatch};

fn season(seed: u64) -> QuestGenerator {
    QuestGenerator::new(GenParams {
        num_transactions: 0,
        increment_size: 0,
        num_items: 200,
        num_patterns: 80,
        pool_size: 20,
        corruption_mean: 0.3,
        seed,
        ..GenParams::default()
    })
}

fn render(rule: &Rule) -> String {
    format!("{:?} => {:?}", rule.antecedent, rule.consequent)
}

fn main() {
    // Winter assortment bootstraps the rule base.
    let mut winter = season(0xc0ffee);
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(2))
        .min_confidence(MinConfidence::percent(70))
        .build(winter.generate(4_000))
        .expect("valid session configuration");
    let bootstrap = maintainer.snapshot();
    println!(
        "bootstrap (v{}): {} rules from 4000 winter transactions",
        bootstrap.version(),
        bootstrap.rules().len()
    );

    // Watch the five highest-confidence winter rules — straight off the
    // snapshot's query layer.
    let watchlist: Vec<Rule> = bootstrap
        .top_k_by_confidence(5)
        .into_iter()
        .cloned()
        .collect();
    println!("watchlist:");
    for r in &watchlist {
        println!("  {} (conf {:.2})", render(r), r.confidence());
    }

    // Eight update rounds; the stream switches to the summer assortment
    // half-way through.
    let mut summer = season(0x50443e7);
    for round in 1..=8 {
        let batch = if round <= 4 {
            winter.generate(1_000)
        } else {
            summer.generate(1_000)
        };
        maintainer
            .stage(UpdateBatch::insert_only(batch))
            .expect("valid batch");
        let report = maintainer.commit().expect("valid update");

        let phase = if round <= 4 { "winter" } else { "SUMMER" };
        println!(
            "\nround {round} ({phase}, v{}): {} txns, itemsets +{} -{} | rules +{} -{}",
            report.version,
            report.num_transactions,
            report.itemsets.emerged.len(),
            report.itemsets.expired.len(),
            report.rules.added.len(),
            report.rules.removed.len(),
        );
        let live = maintainer.snapshot();
        for w in &watchlist {
            // The live snapshot answers the lookup; the bootstrap
            // snapshot still holds the original confidences for contrast.
            let was = bootstrap
                .rules()
                .get(&w.antecedent, &w.consequent)
                .expect("watchlist came from this snapshot")
                .confidence();
            match live.rules().get(&w.antecedent, &w.consequent) {
                Some(now) => println!(
                    "  watch {}: HOLDING (conf {:.2}, was {:.2})",
                    render(w),
                    now.confidence(),
                    was
                ),
                None => println!(
                    "  watch {}: *** INVALIDATED *** (was {:.2})",
                    render(w),
                    was
                ),
            }
        }
    }

    maintainer.verify_consistency().expect("FUP == re-mine");
    println!(
        "\nconsistency verified after 8 incremental rounds; bootstrap snapshot still at v{}",
        bootstrap.version()
    );
}

//! Rule monitoring under drift: §1 of the paper observes that updates
//! "may not only invalidate some existing strong association rules but
//! also turn some weak rules into strong ones". This example makes that
//! visible: the transaction stream drifts mid-way (a different seasonal
//! pattern mix), and a watchlist of rules is tracked across updates.
//!
//! ```sh
//! cargo run --release --example rule_monitoring
//! ```

use fup::datagen::{GenParams, QuestGenerator};
use fup::{MinConfidence, MinSupport, Rule, RuleMaintainer, UpdateBatch};

fn season(seed: u64) -> QuestGenerator {
    QuestGenerator::new(GenParams {
        num_transactions: 0,
        increment_size: 0,
        num_items: 200,
        num_patterns: 80,
        pool_size: 20,
        corruption_mean: 0.3,
        seed,
        ..GenParams::default()
    })
}

fn render(rule: &Rule) -> String {
    format!("{:?} => {:?}", rule.antecedent, rule.consequent)
}

fn main() {
    // Winter assortment bootstraps the rule base.
    let mut winter = season(0xc0ffee);
    let mut maintainer = RuleMaintainer::bootstrap(
        winter.generate(4_000),
        MinSupport::percent(2),
        MinConfidence::percent(70),
    );
    println!(
        "bootstrap: {} rules from 4000 winter transactions",
        maintainer.rules().len()
    );

    // Watch the five highest-confidence winter rules.
    let mut watchlist: Vec<Rule> = maintainer.rules().rules().to_vec();
    watchlist.sort_by(|a, b| b.confidence().total_cmp(&a.confidence()));
    watchlist.truncate(5);
    println!("watchlist:");
    for r in &watchlist {
        println!("  {} (conf {:.2})", render(r), r.confidence());
    }

    // Eight update rounds; the stream switches to the summer assortment
    // half-way through.
    let mut summer = season(0x50443e7);
    for round in 1..=8 {
        let batch = if round <= 4 {
            winter.generate(1_000)
        } else {
            summer.generate(1_000)
        };
        let report = maintainer
            .apply_update(UpdateBatch::insert_only(batch))
            .expect("valid update");

        let phase = if round <= 4 { "winter" } else { "SUMMER" };
        println!(
            "\nround {round} ({phase}): {} txns, itemsets +{} -{} | rules +{} -{}",
            report.num_transactions,
            report.itemsets.emerged.len(),
            report.itemsets.expired.len(),
            report.rules.added.len(),
            report.rules.removed.len(),
        );
        for w in &watchlist {
            match maintainer.rules().get(&w.antecedent, &w.consequent) {
                Some(live) => println!(
                    "  watch {}: HOLDING (conf {:.2})",
                    render(w),
                    live.confidence()
                ),
                None => println!("  watch {}: *** INVALIDATED ***", render(w)),
            }
        }
    }

    maintainer.verify_consistency().expect("FUP == re-mine");
    println!("\nconsistency verified after 8 incremental rounds");
}

//! Deletions and corrections — the FUP2 extension (§5: "We have also
//! investigated the cases of deletion and modification of a transaction
//! database").
//!
//! A data warehouse discovers that a batch of transactions was fraudulent
//! and must be purged, and another batch was mis-scanned and must be
//! corrected (modification = delete + insert). Both fixes are *staged*
//! first — audit workflows gather evidence incrementally — and FUP2
//! maintains the rules through each commit without re-mining.
//!
//! ```sh
//! cargo run --release --example warehouse_deletions
//! ```

use fup::datagen::{GenParams, QuestGenerator};
use fup::{Maintainer, MinConfidence, MinSupport, Tid, Transaction, UpdateBatch};

fn main() {
    let mut generator = QuestGenerator::new(GenParams {
        num_items: 300,
        num_patterns: 100,
        pool_size: 25,
        seed: 0xde1e7e,
        ..GenParams::default()
    });
    let legit = generator.generate(5_000);

    // A fraud ring injects a fake co-purchase pattern, inflating a rule.
    let fake: Vec<Transaction> = (0..400)
        .map(|_| Transaction::from_items([900u32, 901, 902]))
        .collect();
    let mut history = legit;
    history.extend(fake);

    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(2))
        .min_confidence(MinConfidence::percent(80))
        .build(history)
        .expect("valid session configuration");
    let fraud_rule = (
        fup::Itemset::from_items([900u32, 901]),
        fup::Itemset::from_items([902u32]),
    );
    println!(
        "bootstrap: {} transactions, {} rules; fraud rule present: {}",
        maintainer.len(),
        maintainer.rules().len(),
        maintainer.rules().contains(&fraud_rule.0, &fraud_rule.1)
    );
    assert!(maintainer.rules().contains(&fraud_rule.0, &fraud_rule.1));

    // Identify the fraudulent tids (in a real system: an audit query) and
    // stage the purge. Staging validates the tids at arrival but leaves
    // the mined state untouched until the audit signs off.
    let fraudulent: Vec<Tid> = maintainer
        .store()
        .iter()
        .filter(|(_, t)| t.contains_itemset(&[fup::ItemId(900), fup::ItemId(901)]))
        .map(|(tid, _)| tid)
        .collect();
    println!(
        "staging purge of {} fraudulent transactions...",
        fraudulent.len()
    );
    maintainer
        .stage(UpdateBatch::delete_only(fraudulent))
        .expect("all tids are live");
    assert!(maintainer.rules().contains(&fraud_rule.0, &fraud_rule.1)); // not applied yet

    let report = maintainer.commit().expect("valid deletion");
    println!(
        "  ran {} (v{}): rules +{} -{} | fraud rule now present: {}",
        report.algorithm,
        report.version,
        report.rules.added.len(),
        report.rules.removed.len(),
        maintainer.rules().contains(&fraud_rule.0, &fraud_rule.1)
    );
    assert_eq!(report.algorithm, "fup2");
    assert!(!maintainer.rules().contains(&fraud_rule.0, &fraud_rule.1));

    // A correction: 200 mis-scanned baskets are replaced with fixed ones
    // (modification = delete + insert in one staged batch).
    let miskeyed: Vec<Tid> = maintainer
        .store()
        .iter()
        .take(200)
        .map(|(tid, _)| tid)
        .collect();
    let corrected: Vec<Transaction> = maintainer
        .store()
        .iter()
        .take(200)
        .map(|(_, t)| {
            // The scanner dropped item 0 from these baskets; restore it.
            Transaction::from_items(t.items().iter().map(|i| i.raw()).chain([0u32]))
        })
        .collect();
    maintainer
        .stage(UpdateBatch {
            inserts: corrected,
            deletes: miskeyed,
        })
        .expect("valid correction");
    let report = maintainer.commit().expect("valid correction");
    println!(
        "correction round ({}, v{}): {} transactions, itemsets +{} -{}",
        report.algorithm,
        report.version,
        report.num_transactions,
        report.itemsets.emerged.len(),
        report.itemsets.expired.len()
    );

    maintainer.verify_consistency().expect("FUP2 == re-mine");
    println!("consistency verified: maintained state == from-scratch mine");
}

//! A week of point-of-sale feeds: the motivating scenario of the paper's
//! introduction. A store mines its basket rules once; during each day the
//! hourly feeds are *staged* (arrival is decoupled from application), and
//! one nightly *commit* maintains the rules at a fraction of the
//! re-mining cost.
//!
//! The workload is the paper's own synthetic family (`T10.I4`, scaled to
//! run in seconds): a 20 000-basket history plus seven daily batches of
//! 2 000 baskets drawn from the same statistical process.
//!
//! ```sh
//! cargo run --release --example retail_feed
//! ```

use fup::datagen::{generate_multi_split, GenParams};
use fup::{Apriori, Maintainer, MinConfidence, MinSupport, UpdateBatch};
use std::time::Instant;

fn main() {
    let days = 7usize;
    let params = GenParams {
        num_transactions: 20_000,
        increment_size: 0, // increments come from generate_multi_split
        seed: 0x5a1e5,
        ..GenParams::default()
    };
    let (history_db, daily) = generate_multi_split(&params, &vec![2_000; days]);
    let minsup = MinSupport::percent(1);
    let minconf = MinConfidence::percent(60);

    println!(
        "bootstrap: mining {} historical baskets at minsup {minsup}",
        history_db.len()
    );
    let t0 = Instant::now();
    let mut maintainer = Maintainer::builder()
        .min_support(minsup)
        .min_confidence(minconf)
        .build(history_db.into_transactions())
        .expect("valid session configuration");
    println!(
        "  {} large itemsets, {} rules in {:?}\n",
        maintainer.large_itemsets().len(),
        maintainer.rules().len(),
        t0.elapsed()
    );

    let mut total_fup = std::time::Duration::ZERO;
    let mut total_remine = std::time::Duration::ZERO;
    for (day, batch) in daily.into_iter().enumerate() {
        // The day's feed arrives in four staged deliveries; the mined
        // state (and any snapshot a dashboard took) is untouched until
        // the nightly commit applies them as one FUP round.
        let mut deliveries = batch.into_transactions();
        while !deliveries.is_empty() {
            let rest = deliveries.split_off(deliveries.len().min(500));
            maintainer
                .stage(UpdateBatch::insert_only(deliveries))
                .expect("valid batch");
            deliveries = rest;
        }
        let t = Instant::now();
        let report = maintainer.commit().expect("valid update");
        let fup_time = t.elapsed();
        total_fup += fup_time;

        // What a naive pipeline would pay instead: Apriori on everything.
        let t = Instant::now();
        let remined = Apriori::new().run(maintainer.store(), minsup);
        total_remine += t.elapsed();
        assert!(remined.large.same_itemsets(maintainer.large_itemsets()));

        println!(
            "day {}: {} baskets total | rules +{} -{} (keep {}) | FUP {:>9?} vs re-mine {:>9?} | candidates {} vs {}",
            day + 1,
            report.num_transactions,
            report.rules.added.len(),
            report.rules.removed.len(),
            report.rules.retained,
            fup_time,
            total_remine / (day as u32 + 1), // latest re-mine ≈ running mean
            report.stats.total_candidates_checked(),
            remined.stats.total_candidates_checked(),
        );
    }

    println!(
        "\nweek total: FUP {:?} vs re-mining {:?}  ({:.1}x faster, identical results)",
        total_fup,
        total_remine,
        total_remine.as_secs_f64() / total_fup.as_secs_f64().max(1e-9)
    );
    let m = maintainer.store().metrics();
    println!(
        "store scan accounting: {} full scans, {} transactions read",
        m.full_scans(),
        m.transactions_read()
    );
}

//! Kill one shard worker of a live cluster and watch it rejoin. A
//! two-worker [`fup::Cluster`] serves a retail-style feed with each
//! worker keeping its own WAL + checkpoint directory on real disk.
//! Worker 1 is then killed the hard way — transport severed, every
//! byte of its memory gone — while worker 0 keeps answering health
//! probes and the published snapshot keeps serving reads. A staged
//! round is held (typed `WorkerDown`, never lost), the worker is
//! restarted from its own directory alone, and the held round commits
//! as if nothing happened. The final rule base is verified
//! bit-identical to a flat single-process session fed the same stream.
//!
//! ```sh
//! cargo run --release --example cluster_restart
//! ```

use fup::core::Error;
use fup::datagen::{generate_multi_split, GenParams};
use fup::tidb::{DiskStorage, DurableStorage};
use fup::{Cluster, FupConfig, Maintainer, MinConfidence, MinSupport, ShardSpec, UpdateBatch};
use std::sync::Arc;

fn main() {
    let params = GenParams {
        num_transactions: 4_000,
        increment_size: 0,
        seed: 0xc1_05,
        ..GenParams::default()
    };
    let (history, batches) = generate_multi_split(&params, &[500, 500, 500]);
    let history = history.into_transactions();
    let mut batches = batches.into_iter().map(|db| db.into_transactions());

    let dir = std::env::temp_dir().join(format!("fup-cluster-restart-{}", std::process::id()));
    let shards = 2u32;
    let storages: Vec<Arc<dyn DurableStorage>> = (0..shards)
        .map(|s| {
            let shard_dir = dir.join(format!("shard-{s}"));
            std::fs::create_dir_all(&shard_dir).expect("create shard directory");
            Arc::new(DiskStorage::open(shard_dir).expect("open shard storage"))
                as Arc<dyn DurableStorage>
        })
        .collect();
    println!("per-worker durable state lives under {}\n", dir.display());

    // The flat single-process reference the cluster must stay
    // bit-identical to, fed the same stream.
    let mut flat = Maintainer::builder()
        .min_support(MinSupport::percent(1))
        .min_confidence(MinConfidence::percent(60))
        .build(history.clone())
        .expect("flat reference");

    let mut cluster = Cluster::bootstrap(
        ShardSpec::striped(shards),
        storages,
        history,
        MinSupport::percent(1),
        MinConfidence::percent(60),
        FupConfig::default(),
    )
    .expect("bootstrap cluster");
    println!(
        "cluster: {} workers bootstrapped, {} baskets, {} rules",
        cluster.num_shards(),
        cluster.num_transactions(),
        cluster.snapshot().rules().len()
    );

    // One round committed while everyone is healthy: staged to both
    // workers' WALs, decided, delivered — durably acknowledged.
    let round1 = batches.next().unwrap();
    flat.apply(UpdateBatch::insert_only(round1.clone()))
        .unwrap();
    let report = cluster.apply(UpdateBatch::insert_only(round1)).unwrap();
    println!(
        "cluster: round committed two-phase at version {} ({} baskets)",
        report.version, report.num_transactions
    );

    // ---- kill worker 1 the hard way --------------------------------
    let probe_before = cluster.probe(1).expect("probe worker 1");
    cluster.kill_worker(1);
    println!("\nworker 1 killed: memory gone, only its directory survives");

    let round2 = batches.next().unwrap();
    cluster
        .stage(UpdateBatch::insert_only(round2.clone()))
        .unwrap();
    match cluster.commit() {
        Err(Error::WorkerDown { shard, reason }) => {
            println!("commit refused fast and typed: worker {shard} down ({reason})");
        }
        other => panic!("expected WorkerDown, got {other:?}"),
    }
    println!(
        "survivor keeps serving: worker 0 probe says {} live baskets, \
         snapshot still reads version {}",
        cluster.probe(0).expect("probe worker 0").live,
        cluster.snapshot().version()
    );

    // ---- restart: recover from the worker's own checkpoint + WAL ---
    cluster.restart_worker(1).expect("restart worker 1");
    let probe_after = cluster.probe(1).expect("probe recovered worker");
    assert_eq!(probe_after.live, probe_before.live);
    println!(
        "\nworker 1 rejoined: {} live baskets recovered from checkpoint + WAL",
        probe_after.live
    );

    // The held round commits now, as if nothing happened.
    flat.apply(UpdateBatch::insert_only(round2)).unwrap();
    let report = cluster.commit().expect("commit the held round");
    println!(
        "held round committed: version {}, {} baskets",
        report.version, report.num_transactions
    );

    let (cs, fs) = (cluster.snapshot(), flat.snapshot());
    assert_eq!(cs.large_itemsets(), fs.large_itemsets());
    assert_eq!(cs.rules(), fs.rules());
    println!(
        "verified: {} rules bit-identical to the flat single-process session",
        cs.rules().len()
    );

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

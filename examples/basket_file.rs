//! Working with external basket files: load a FIMI-style numeric dataset,
//! mine it, save an updated snapshot, and keep rules current as more
//! lines arrive — the plumbing a downstream user needs around the
//! algorithms.
//!
//! The example is self-contained: it writes a small dataset to a temp
//! directory first, then treats it as "the input file".
//!
//! ```sh
//! cargo run --release --example basket_file
//! ```

use fup::datagen::{GenParams, QuestGenerator};
use fup::tidb::io;
use fup::{Maintainer, MinConfidence, MinSupport, UpdateBatch};
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("fup-basket-example");
    std::fs::create_dir_all(&dir)?;
    let history_path = dir.join("history.dat");
    let feed_path = dir.join("feed.dat");

    // --- Pretend an upstream system exported two basket files. ---
    let mut generator = QuestGenerator::new(GenParams {
        num_items: 200,
        num_patterns: 80,
        pool_size: 20,
        seed: 0xf11e,
        ..GenParams::default()
    });
    io::write_numeric(
        BufWriter::new(File::create(&history_path)?),
        &generator.generate(2_000),
    )?;
    io::write_numeric(
        BufWriter::new(File::create(&feed_path)?),
        &generator.generate(400),
    )?;

    // --- Load, mine, maintain. ---
    let history = io::read_numeric(File::open(&history_path)?)?;
    println!(
        "loaded {} transactions from {}",
        history.len(),
        history_path.display()
    );

    // This pipeline only ever appends, so the session declares itself
    // insert-only — staging a deletion would fail with a typed error.
    let mut maintainer = Maintainer::builder()
        .min_support(MinSupport::percent(2))
        .min_confidence(MinConfidence::percent(70))
        .deletions(false)
        .build(history)?;
    println!(
        "mined {} large itemsets, {} rules",
        maintainer.large_itemsets().len(),
        maintainer.rules().len()
    );

    let feed = io::read_numeric(File::open(&feed_path)?)?;
    println!(
        "staging {} new transactions from {}",
        feed.len(),
        feed_path.display()
    );
    maintainer.stage(UpdateBatch::insert_only(feed))?;
    let report = maintainer.commit()?;
    println!(
        "ran {} (v{}): rules +{} -{} (retained {})",
        report.algorithm,
        report.version,
        report.rules.added.len(),
        report.rules.removed.len(),
        report.rules.retained
    );

    // --- Export the merged database for the next pipeline stage. ---
    let snapshot_path = dir.join("snapshot.dat");
    let all: Vec<_> = maintainer.store().iter().map(|(_, t)| t.clone()).collect();
    io::write_numeric(BufWriter::new(File::create(&snapshot_path)?), &all)?;
    println!(
        "wrote {} transactions to {}",
        maintainer.len(),
        snapshot_path.display()
    );

    // Sanity: the snapshot re-reads to the same store size.
    let back = io::read_numeric(File::open(&snapshot_path)?)?;
    assert_eq!(back.len(), maintainer.len());
    let m = maintainer.store().metrics();
    println!(
        "scan accounting: {} full scans, {} transactions read",
        m.full_scans(),
        m.transactions_read()
    );
    maintainer.verify_consistency()?;
    println!("consistency verified");
    Ok(())
}

//! # fup — incremental maintenance of discovered association rules
//!
//! A complete Rust implementation of **FUP** (Cheung, Han, Ng & Wong,
//! *"Maintenance of Discovered Association Rules in Large Databases: An
//! Incremental Updating Technique"*, ICDE 1996), together with everything
//! it stands on: a transaction-database substrate, the Apriori and DHP
//! miners it is evaluated against, the IBM Quest-style synthetic workload
//! generator of its §4, and the FUP2 extension for deletions.
//!
//! This crate is a facade: it re-exports the public API of the four
//! underlying crates so an application can depend on `fup` alone.
//!
//! ## Quickstart
//!
//! ```
//! use fup::{MinConfidence, MinSupport, RuleMaintainer, Transaction, UpdateBatch};
//!
//! // 1. Bootstrap from historical transactions (mined once, from scratch).
//! let history = vec![
//!     Transaction::from_items([1u32, 2, 3]),
//!     Transaction::from_items([1u32, 2]),
//!     Transaction::from_items([2u32, 3]),
//!     Transaction::from_items([1u32, 3]),
//! ];
//! let mut maintainer = RuleMaintainer::bootstrap(
//!     history,
//!     MinSupport::percent(50),
//!     MinConfidence::percent(70),
//! );
//!
//! // 2. New transactions arrive: maintain (don't re-mine) the rules.
//! let report = maintainer
//!     .apply_update(UpdateBatch::insert_only(vec![
//!         Transaction::from_items([1u32, 2, 3]),
//!         Transaction::from_items([2u32, 3]),
//!     ]))
//!     .unwrap();
//!
//! // 3. The report says exactly which rules the update created/killed.
//! println!(
//!     "+{} rules, -{} rules, {} retained",
//!     report.rules.added.len(),
//!     report.rules.removed.len(),
//!     report.rules.retained
//! );
//! assert_eq!(report.num_transactions, 6);
//! ```
//!
//! ## Layout
//!
//! * [`tidb`] — transactions, stores, scan accounting ([`fup_tidb`])
//! * [`mining`] — itemsets, Apriori, DHP, rule generation ([`fup_mining`])
//! * [`core`] — FUP, FUP2, the [`RuleMaintainer`] ([`fup_core`])
//! * [`datagen`] — the paper's synthetic workloads ([`fup_datagen`])

#![warn(missing_docs)]

pub use fup_core as core;
pub use fup_datagen as datagen;
pub use fup_mining as mining;
pub use fup_tidb as tidb;

// The working vocabulary, flattened.
pub use fup_core::{
    Fup, Fup2, FupConfig, FupOutcome, ItemsetDiff, MaintenanceReport, RuleDiff, RuleMaintainer,
    UpdatePolicy,
};
pub use fup_datagen::{GenParams, QuestGenerator};
pub use fup_mining::{
    Apriori, CountingBackend, Dhp, EngineConfig, GenConfig, Itemset, ItemsetTable, LargeItemsets,
    MinConfidence, MinSupport, Miner, Rule, RuleSet, VerticalIndex,
};
pub use fup_tidb::{
    ItemDictionary, ItemId, SegmentedDb, Tid, Transaction, TransactionDb, TransactionSource,
    UpdateBatch,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let t = Transaction::from_items([1u32, 2]);
        let x = Itemset::from_items([1u32]);
        assert_eq!(t.len(), 2);
        assert_eq!(x.k(), 1);
        let _ = MinSupport::percent(1);
        let _ = MinConfidence::percent(50);
        let _ = FupConfig::default();
    }
}

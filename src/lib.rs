//! # fup — incremental maintenance of discovered association rules
//!
//! A complete Rust implementation of **FUP** (Cheung, Han, Ng & Wong,
//! *"Maintenance of Discovered Association Rules in Large Databases: An
//! Incremental Updating Technique"*, ICDE 1996), together with everything
//! it stands on: a transaction-database substrate, the Apriori and DHP
//! miners it is evaluated against, the IBM Quest-style synthetic workload
//! generator of its §4, and the FUP2 extension for deletions.
//!
//! This crate is a facade: it re-exports the public API of the four
//! underlying crates so an application can depend on `fup` alone.
//!
//! ## Quickstart
//!
//! Rule maintenance is a *session*: build a [`Maintainer`] once, stage
//! update batches as they arrive, commit them as one incremental round,
//! and serve lookups from version-stamped snapshots that later commits
//! never invalidate.
//!
//! ```
//! use fup::{Maintainer, MinConfidence, MinSupport, Transaction, UpdateBatch};
//!
//! // 1. Bootstrap from historical transactions (mined once, from scratch).
//! let history = vec![
//!     Transaction::from_items([1u32, 2, 3]),
//!     Transaction::from_items([1u32, 2]),
//!     Transaction::from_items([2u32, 3]),
//!     Transaction::from_items([1u32, 3]),
//! ];
//! let mut maintainer = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .build(history)
//!     .expect("valid configuration");
//!
//! // 2. Serve reads from a snapshot — an Arc-backed, version-stamped view
//! //    that stays valid and consistent while updates proceed.
//! let snapshot = maintainer.snapshot();
//! assert_eq!(snapshot.version(), 0);
//!
//! // 3. New transactions arrive: stage them (arrival), then commit them
//! //    as one FUP round (application) — never re-mine from scratch.
//! maintainer
//!     .stage(UpdateBatch::insert_only(vec![
//!         Transaction::from_items([1u32, 2, 3]),
//!         Transaction::from_items([2u32, 3]),
//!     ]))
//!     .unwrap();
//! let report = maintainer.commit().unwrap();
//!
//! // 4. The report says exactly which rules the update created/killed...
//! println!(
//!     "v{}: +{} rules, -{} rules, {} retained",
//!     report.version,
//!     report.rules.added.len(),
//!     report.rules.removed.len(),
//!     report.rules.retained
//! );
//! assert_eq!(report.num_transactions, 6);
//!
//! // ...the old snapshot still reads its own version, and a fresh one
//! // answers serving-side queries without walking the raw rule set.
//! assert_eq!(snapshot.version(), 0);
//! let now = maintainer.snapshot();
//! assert_eq!(now.version(), 1);
//! let top = now.top_k_by_confidence(3);
//! assert!(top.len() <= 3);
//! ```
//!
//! ## Concurrent serving
//!
//! When updates arrive from many threads, wrap the session in a
//! [`MaintainerService`]: producers [`stage`](MaintainerService::stage)
//! batches concurrently through `&self` (sharded, lock-striped staging),
//! a background committer thread applies them as one FUP/FUP2 round per
//! [`CommitPolicy`] trigger (pending count, increment ratio, or explicit
//! [`flush`](MaintainerService::flush)), and
//! [`snapshot`](MaintainerService::snapshot) reads are wait-free even
//! while a round is scanning.
//!
//! ```
//! use fup::{CommitPolicy, Maintainer, MaintainerService};
//! use fup::{MinConfidence, MinSupport, Transaction, UpdateBatch};
//!
//! let maintainer = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .build(vec![
//!         Transaction::from_items([1u32, 2]),
//!         Transaction::from_items([1u32, 2, 3]),
//!     ])
//!     .unwrap();
//! let service = MaintainerService::launch(maintainer, CommitPolicy::manual()).unwrap();
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         scope.spawn(|| {
//!             service
//!                 .stage(UpdateBatch::insert_only(vec![
//!                     Transaction::from_items([2u32, 3]),
//!                 ]))
//!                 .unwrap();
//!         });
//!     }
//! });
//! let report = service.flush().unwrap();
//! assert_eq!(report.num_transactions, 6);
//! let (maintainer, _metrics) = service.shutdown();
//! assert_eq!(maintainer.len(), 6);
//! ```
//!
//! ## Serving under load
//!
//! Under sustained overload the service degrades predictably instead of
//! queueing without bound: [`CommitPolicy::staging_capacity`] caps the
//! staged backlog (producers choose their blocking behaviour per call —
//! [`try_stage`](MaintainerService::try_stage) fails fast with a typed
//! [`ServiceError::WouldBlock`],
//! [`stage_deadline`](MaintainerService::stage_deadline) waits up to a
//! deadline, plain [`stage`](MaintainerService::stage) rides the burst
//! out), and [`CommitPolicy::ops_per_round`] chunks an accumulated
//! backlog into bounded commit rounds so per-round latency — and with
//! it snapshot staleness — stays flat no matter how deep the burst was.
//! [`ServiceMetrics`] reports the backlog and round-size picture, and
//! [`round_latencies`](MaintainerService::round_latencies) serves the
//! per-round wall-clock series behind p50/p99 reporting.
//!
//! ```
//! use fup::{CommitPolicy, Maintainer, MaintainerService, ServiceError};
//! use fup::{MinConfidence, MinSupport, Transaction, UpdateBatch};
//!
//! let maintainer = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .build(vec![
//!         Transaction::from_items([1u32, 2]),
//!         Transaction::from_items([1u32, 2, 3]),
//!     ])
//!     .unwrap();
//! // Admit at most 2 staged ops; drain in rounds of at most 1 op.
//! let policy = CommitPolicy::manual().staging_capacity(2).ops_per_round(1);
//! let service = MaintainerService::launch(maintainer, policy).unwrap();
//!
//! let batch = || UpdateBatch::insert_only(vec![Transaction::from_items([2u32, 3])]);
//! service.try_stage(batch()).unwrap();
//! service.try_stage(batch()).unwrap();
//!
//! // The gate is full: a third try_stage fails *now*, typed — the
//! // producer sheds or retries instead of queueing unboundedly.
//! match service.try_stage(batch()) {
//!     Err(ServiceError::WouldBlock { pending: 2, capacity: 2 }) => {}
//!     other => panic!("expected WouldBlock, got {other:?}"),
//! }
//!
//! // A flush drains the 2-op backlog in bounded 1-op rounds.
//! let report = service.flush().unwrap();
//! assert_eq!(report.version, 2);
//! let metrics = service.metrics();
//! assert_eq!(metrics.backpressure_rejections, 1);
//! assert_eq!(metrics.max_round_ops, 1);
//! assert_eq!(service.round_latencies().len(), 2);
//!
//! // With space freed, admission succeeds again.
//! service.try_stage(batch()).unwrap();
//! service.shutdown();
//! ```
//!
//! ## Durable serving
//!
//! A session built with
//! [`build_durable`](MaintainerBuilder::build_durable) survives crashes:
//! every staged batch is written to a CRC-framed write-ahead log before it
//! becomes visible, every commit is acknowledged with a logged boundary,
//! and a [`DurabilityPolicy`] drives periodic checkpoints that bound the
//! log replay. After a kill — at *any* point —
//! [`recover`](MaintainerBuilder::recover) rebuilds the session to
//! exactly its last durably-acknowledged commit, re-queues staged-but-
//! uncommitted batches, and reports what it did. Use [`DiskStorage`]
//! for a real directory, or [`MemStorage`] (with fault injection) in
//! tests.
//!
//! ```
//! use fup::core::DurabilityPolicy;
//! use fup::tidb::MemStorage;
//! use fup::{Maintainer, MinConfidence, MinSupport, Transaction, UpdateBatch};
//! use std::sync::Arc;
//!
//! let storage = Arc::new(MemStorage::new()); // or DiskStorage::open(dir)
//! let mut m = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .durability(DurabilityPolicy::default())
//!     .build_durable(
//!         vec![
//!             Transaction::from_items([1u32, 2, 3]),
//!             Transaction::from_items([1u32, 2]),
//!         ],
//!         Arc::clone(&storage) as Arc<dyn fup::tidb::DurableStorage>,
//!     )
//!     .unwrap();
//! m.stage(UpdateBatch::insert_only(vec![
//!     Transaction::from_items([2u32, 3]),
//! ]))
//! .unwrap();
//! m.commit().unwrap(); // durably acknowledged once this returns
//!
//! // Simulate a crash: drop the session, keep only the storage bytes.
//! let image = Arc::new(MemStorage::from_files(storage.files()));
//! drop(m);
//! let (recovered, report) = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .recover(image as Arc<dyn fup::tidb::DurableStorage>)
//!     .unwrap();
//! assert_eq!(recovered.version(), 1);
//! assert_eq!(report.version, 1);
//! assert_eq!(recovered.len(), 3);
//! ```
//!
//! ## Degraded serving
//!
//! A durable service heals itself where it can and degrades *typed*
//! where it cannot. Transient storage faults are absorbed by the
//! durable log's [`RetryPolicy`] (bounded attempts, exponential backoff,
//! deterministic jitter); a fault that outlives the budget closes
//! admissions — producers get [`ServiceError::Degraded`], never a hang —
//! while a background probe re-checks storage and reopens admissions on
//! heal, and a panicked committer is rebuilt from its own WAL up to
//! [`CommitPolicy::max_committer_restarts`] times. Permanent faults are
//! terminal ([`HealthState::Failed`]): the service keeps serving
//! snapshots and says why through
//! [`health`](MaintainerService::health).
//!
//! ```
//! use fup::tidb::{DurableStorage, MemStorage};
//! use fup::{CommitPolicy, DurabilityPolicy, HealthState, Maintainer, MaintainerService};
//! use fup::{MinConfidence, MinSupport, ServiceError, Transaction, UpdateBatch};
//! use std::sync::Arc;
//!
//! let storage = Arc::new(MemStorage::new());
//! let maintainer = Maintainer::builder()
//!     .min_support(MinSupport::percent(50))
//!     .min_confidence(MinConfidence::percent(70))
//!     .durability(DurabilityPolicy::default())
//!     .build_durable(
//!         vec![
//!             Transaction::from_items([1u32, 2, 3]),
//!             Transaction::from_items([1u32, 2]),
//!         ],
//!         Arc::clone(&storage) as Arc<dyn DurableStorage>,
//!     )
//!     .unwrap();
//! let service = MaintainerService::launch(maintainer, CommitPolicy::manual()).unwrap();
//!
//! // The disk dies — permanently, in this simulation: fsync always fails.
//! storage.set_fail_sync(true);
//!
//! // Producers get a typed refusal, never a hang...
//! let err = service
//!     .stage(UpdateBatch::insert_only(vec![
//!         Transaction::from_items([2u32, 3]),
//!     ]))
//!     .unwrap_err();
//! assert_eq!(err, ServiceError::Degraded);
//! // ...the health report says why...
//! assert_eq!(service.health().state, HealthState::Failed);
//! // ...and snapshots keep serving the last published state.
//! assert_eq!(service.snapshot().num_transactions(), 2);
//! let (maintainer, _metrics) = service.shutdown();
//! assert_eq!(maintainer.len(), 2);
//! ```
//!
//! ## Sharded serving
//!
//! A session can partition its live set into N tid-range shards
//! ([`MaintainerBuilder::shards`], or [`ShardSpec`] for explicit
//! routing). Support counts are additive over disjoint tid ranges, so
//! each shard counts its own slice and the merged result is
//! **bit-identical** to the flat session — same itemsets and supports,
//! same rules, same reports — while each shard keeps its own persistent
//! vertical index (a delete rebuilds only the shard it lands on) and
//! scans in parallel as its own chunk partition. The routing spec is
//! pure configuration: it is validated at build time and never changes
//! a result, only where rows live. See `DESIGN_SHARDING.md` for the
//! invariants.
//!
//! ```
//! use fup::{Maintainer, MinConfidence, MinSupport, ShardSpec, Tid};
//! use fup::{Transaction, UpdateBatch};
//!
//! let history: Vec<Transaction> = (0..8u32)
//!     .map(|i| Transaction::from_items([i % 2, 2 + (i % 3), 9]))
//!     .collect();
//! let builder = || {
//!     Maintainer::builder()
//!         .min_support(MinSupport::percent(25))
//!         .min_confidence(MinConfidence::percent(60))
//! };
//! let mut flat = builder().build(history.clone()).unwrap();
//! let mut sharded = builder()
//!     .shard_spec(ShardSpec::striped_with(4, 1)) // tid t -> shard t % 4
//!     .build(history)
//!     .unwrap();
//! assert_eq!(sharded.store().num_shards(), 4);
//!
//! // One update, routed by tid range: the insert lands on one shard,
//! // the delete on another.
//! let batch = UpdateBatch {
//!     inserts: vec![Transaction::from_items([0u32, 2, 9])],
//!     deletes: vec![Tid(3)],
//! };
//! flat.apply(batch.clone()).unwrap();
//! sharded.apply(batch).unwrap();
//!
//! // Count distribution: per-shard supports merge by summation, so the
//! // sharded session is bit-identical to the flat one.
//! assert!(sharded.large_itemsets().same_itemsets(flat.large_itemsets()));
//! assert_eq!(sharded.rules(), flat.rules());
//!
//! // A spec that cannot route every tid is a typed build error, never a
//! // stage-time panic.
//! use fup::TidRange;
//! let err = builder()
//!     .shard_spec(ShardSpec::Ranges(vec![TidRange::new(5, 10)]))
//!     .build(vec![])
//!     .unwrap_err();
//! assert!(matches!(err, fup::BuildError::InvalidShardSpec(_)));
//! ```
//!
//! ## Cluster serving
//!
//! The cluster runtime takes sharding across the process seam: each
//! shard becomes a [`ShardWorker`] with its own thread, its own store
//! slice and persistent index, and its own WAL + checkpoint namespace,
//! speaking a CRC-framed RPC protocol to a [`Cluster`] coordinator
//! that merges per-shard support counts by summation and commits every
//! round two-phase. Results stay **bit-identical** to a flat session.
//! The crash model is single-shard: kill a worker and commits fail
//! fast with a typed [`core::Error::WorkerDown`] while the staged
//! backlog is held, snapshots keep serving reads and surviving workers
//! keep answering [`probe`](Cluster::probe)s; a restart recovers the
//! worker from its own checkpoint + WAL without losing an acknowledged
//! commit. See `DESIGN_CLUSTER.md` for the protocol and the crash
//! model.
//!
//! ```
//! use fup::tidb::{DurableStorage, MemStorage};
//! use fup::{Cluster, FupConfig, MinConfidence, MinSupport, ShardSpec};
//! use fup::{Tid, Transaction, UpdateBatch};
//! use std::sync::Arc;
//!
//! let history: Vec<Transaction> = (0..8u32)
//!     .map(|i| Transaction::from_items([i % 2, 2 + (i % 3), 9]))
//!     .collect();
//! let storages: Vec<Arc<dyn DurableStorage>> = (0..2)
//!     .map(|_| Arc::new(MemStorage::new()) as Arc<dyn DurableStorage>)
//!     .collect();
//! let mut cluster = Cluster::bootstrap(
//!     ShardSpec::striped_with(2, 1), // tid t -> worker t % 2
//!     storages,
//!     history,
//!     MinSupport::percent(25),
//!     MinConfidence::percent(60),
//!     FupConfig::default(),
//! )
//! .unwrap();
//!
//! // One incremental round: routed to workers, counted per shard,
//! // merged by summation, committed two-phase.
//! let report = cluster
//!     .apply(UpdateBatch {
//!         inserts: vec![Transaction::from_items([0u32, 2, 9])],
//!         deletes: vec![Tid(3)],
//!     })
//!     .unwrap();
//! assert_eq!(report.version, 1);
//!
//! // Kill one worker the hard way: its memory is gone, only its
//! // storage namespace survives. Commits now fail fast and typed —
//! // the staged batch is held, not lost.
//! cluster.kill_worker(1);
//! let err = cluster
//!     .apply(UpdateBatch::insert_only(vec![
//!         Transaction::from_items([0u32, 9]),
//!     ]))
//!     .unwrap_err();
//! assert!(matches!(err, fup::core::Error::WorkerDown { shard: 1, .. }));
//!
//! // The survivor keeps answering probes; snapshots keep serving.
//! assert!(cluster.probe(0).unwrap().live > 0);
//! assert_eq!(cluster.snapshot().version(), 1);
//!
//! // Restart: the worker recovers from its checkpoint + WAL and the
//! // held backlog commits on the next attempt.
//! cluster.restart_worker(1).unwrap();
//! let report = cluster.commit().unwrap();
//! assert_eq!(report.version, 2);
//! cluster.shutdown();
//! ```
//!
//! ## Layout
//!
//! * [`tidb`] — transactions, stores, scan accounting ([`fup_tidb`])
//! * [`mining`] — itemsets, Apriori, DHP, rule generation ([`fup_mining`])
//! * [`core`] — FUP, FUP2, the [`Maintainer`] session ([`fup_core`])
//! * [`datagen`] — the paper's synthetic workloads ([`fup_datagen`])

#![warn(missing_docs)]

pub use fup_core as core;
pub use fup_datagen as datagen;
pub use fup_mining as mining;
pub use fup_tidb as tidb;

// The working vocabulary, flattened.
pub use fup_core::{
    BuildError, Cluster, CommitPolicy, DurabilityPolicy, Fup, Fup2, FupConfig, FupOutcome,
    HealthReport, HealthState, IndexStats, ItemsetDiff, LogState, Maintainer, MaintainerBuilder,
    MaintainerService, MaintenanceReport, RecoveryReport, RetryPolicy, RuleDiff, RuleSnapshot,
    ServiceError, ServiceHealth, ServiceMetrics, SessionStore, ShardHealth, ShardWorker,
    StageHandle, UpdatePolicy, Updater, WorkerProbe,
};
pub use fup_datagen::{GenParams, QuestGenerator};
pub use fup_mining::{
    Apriori, CountingBackend, Dhp, EngineConfig, GenConfig, Itemset, ItemsetTable, LargeItemsets,
    MinConfidence, MinSupport, Miner, Rule, RuleSet, VerticalIndex,
};
pub use fup_tidb::{
    Admission, DiskStorage, DurableStorage, FaultKind, FlakyStorage, ItemDictionary, ItemId,
    MemStorage, OpClass, SegmentedDb, ShardSpec, ShardedDb, SpecError, Tid, TidRange, Transaction,
    TransactionDb, TransactionSource, UpdateBatch,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_usable() {
        let t = Transaction::from_items([1u32, 2]);
        let x = Itemset::from_items([1u32]);
        assert_eq!(t.len(), 2);
        assert_eq!(x.k(), 1);
        let _ = MinSupport::percent(1);
        let _ = MinConfidence::percent(50);
        let _ = FupConfig::default();
        let _ = Maintainer::builder();
    }
}

//! Plain-text transaction I/O.
//!
//! Two interchange formats are supported:
//!
//! * **numeric** — one transaction per line, whitespace-separated item
//!   ids (the format of the classic IBM/FIMI basket datasets);
//! * **named** — one transaction per line, comma-separated item names,
//!   interned through an [`ItemDictionary`].
//!
//! Readers are resilient to blank lines and `#` comments, and report the
//! line number of any malformed token.

use crate::dictionary::ItemDictionary;
use crate::error::{Error, Result};
use crate::item::ItemId;
use crate::transaction::Transaction;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads numeric, whitespace-separated transactions (FIMI format).
///
/// Blank lines and lines starting with `#` are skipped. Duplicate items
/// within a line are deduplicated (transactions are sets).
pub fn read_numeric<R: Read>(reader: R) -> Result<Vec<Transaction>> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| Error::Corrupt {
            reason: format!("I/O error: {e}"),
            offset: None,
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut items: Vec<ItemId> = Vec::new();
        for token in trimmed.split_whitespace() {
            let raw: u32 = token.parse().map_err(|_| Error::Corrupt {
                reason: format!("line {}: bad item id {token:?}", lineno + 1),
                offset: None,
            })?;
            items.push(ItemId(raw));
        }
        out.push(Transaction::from_items(items));
    }
    Ok(out)
}

/// Writes transactions in the numeric format read by [`read_numeric`].
pub fn write_numeric<W: Write>(mut writer: W, transactions: &[Transaction]) -> Result<()> {
    for t in transactions {
        let line: Vec<String> = t.items().iter().map(|i| i.raw().to_string()).collect();
        writeln!(writer, "{}", line.join(" ")).map_err(|e| Error::Corrupt {
            reason: format!("I/O error: {e}"),
            offset: None,
        })?;
    }
    Ok(())
}

/// Reads named, comma-separated transactions, interning names into `dict`.
///
/// Names are trimmed; empty fields are skipped. Blank lines and `#`
/// comments are ignored.
pub fn read_named<R: Read>(reader: R, dict: &mut ItemDictionary) -> Result<Vec<Transaction>> {
    let mut out = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line.map_err(|e| Error::Corrupt {
            reason: format!("I/O error: {e}"),
            offset: None,
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut items: Vec<ItemId> = Vec::new();
        for name in trimmed.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            items.push(dict.intern(name)?);
        }
        out.push(Transaction::from_items(items));
    }
    Ok(out)
}

/// Writes transactions in the named format read by [`read_named`],
/// resolving ids through `dict` (unknown ids render as raw numbers).
pub fn write_named<W: Write>(
    mut writer: W,
    transactions: &[Transaction],
    dict: &ItemDictionary,
) -> Result<()> {
    for t in transactions {
        let line: Vec<String> = t
            .items()
            .iter()
            .map(|i| {
                dict.name(*i)
                    .map(str::to_owned)
                    .unwrap_or_else(|| i.raw().to_string())
            })
            .collect();
        writeln!(writer, "{}", line.join(",")).map_err(|e| Error::Corrupt {
            reason: format!("I/O error: {e}"),
            offset: None,
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_roundtrip() {
        // Note: empty transactions are not representable in the text
        // format (an empty line reads as a skip).
        let txs = vec![
            Transaction::from_items([3u32, 1, 2]),
            Transaction::from_items([7u32]),
        ];
        let mut buf = Vec::new();
        write_numeric(&mut buf, &txs).unwrap();
        let back = read_numeric(&buf[..]).unwrap();
        assert_eq!(back, txs);
    }

    #[test]
    fn numeric_skips_comments_and_blanks() {
        let input = "# basket data\n1 2 3\n\n  \n4 5\n";
        let txs = read_numeric(input.as_bytes()).unwrap();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].len(), 3);
        assert_eq!(txs[1].len(), 2);
    }

    #[test]
    fn numeric_dedupes_within_line() {
        let txs = read_numeric("5 5 5 1".as_bytes()).unwrap();
        assert_eq!(txs[0].items(), &[ItemId(1), ItemId(5)]);
    }

    #[test]
    fn numeric_reports_bad_tokens_with_line() {
        let err = read_numeric("1 2\n3 x 4\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("\"x\""), "{msg}");
    }

    #[test]
    fn named_roundtrip_with_dictionary() {
        let mut dict = ItemDictionary::new();
        let input = "# groceries\nbread, butter\nmilk,bread\n";
        let txs = read_named(input.as_bytes(), &mut dict).unwrap();
        assert_eq!(txs.len(), 2);
        assert_eq!(dict.len(), 3);
        assert!(txs[1].contains(dict.get("milk").unwrap()));

        let mut buf = Vec::new();
        write_named(&mut buf, &txs, &dict).unwrap();
        let rendered = String::from_utf8(buf).unwrap();
        assert!(rendered.contains("bread,butter"));
        let mut dict2 = ItemDictionary::new();
        let back = read_named(rendered.as_bytes(), &mut dict2).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn named_skips_empty_fields() {
        let mut dict = ItemDictionary::new();
        let txs = read_named("a,,b,\n".as_bytes(), &mut dict).unwrap();
        assert_eq!(txs[0].len(), 2);
    }

    #[test]
    fn write_named_falls_back_to_raw_ids() {
        let dict = ItemDictionary::new();
        let txs = vec![Transaction::from_items([9u32])];
        let mut buf = Vec::new();
        write_named(&mut buf, &txs, &dict).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().trim(), "9");
    }
}

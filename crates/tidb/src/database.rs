//! Flat in-memory transaction store.

use crate::item::ItemId;
use crate::scan::ScanMetrics;
use crate::source::TransactionSource;
use crate::transaction::Transaction;

/// An in-memory transaction database: the `DB` (or `db`) of the paper.
///
/// Every full pass over the store goes through
/// [`for_each`](TransactionSource::for_each) so scan volume is charged to
/// [`metrics`](TransactionSource::metrics); algorithms never index into the
/// store directly, mirroring the sequential-scan access pattern of the
/// paper's disk-resident databases.
#[derive(Debug, Default)]
pub struct TransactionDb {
    transactions: Vec<Transaction>,
    metrics: ScanMetrics,
}

impl TransactionDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with room for `n` transactions.
    pub fn with_capacity(n: usize) -> Self {
        TransactionDb {
            transactions: Vec::with_capacity(n),
            metrics: ScanMetrics::new(),
        }
    }

    /// Builds a database from transactions.
    pub fn from_transactions<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        TransactionDb {
            transactions: iter.into_iter().collect(),
            metrics: ScanMetrics::new(),
        }
    }

    /// Appends one transaction.
    pub fn push(&mut self, t: Transaction) {
        self.transactions.push(t);
    }

    /// Appends many transactions.
    pub fn extend<I: IntoIterator<Item = Transaction>>(&mut self, iter: I) {
        self.transactions.extend(iter);
    }

    /// Number of transactions (the paper's `D` for the original database,
    /// `d` for the increment).
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` if the store holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Direct, *uncharged* access to the stored transactions. Intended for
    /// tests and for building derived stores (trimmed copies, pagings); mining
    /// code must scan via [`TransactionSource::for_each`].
    pub fn raw(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Consumes the store, returning its transactions.
    pub fn into_transactions(self) -> Vec<Transaction> {
        self.transactions
    }

    /// The largest item id present, if any. Useful for sizing per-item
    /// tables (DHP bucket hashing, item counters).
    pub fn max_item(&self) -> Option<ItemId> {
        self.transactions
            .iter()
            .filter_map(|t| t.items().last())
            .max()
            .copied()
    }

    /// Sum of transaction lengths.
    pub fn total_items(&self) -> u64 {
        self.transactions.iter().map(|t| t.len() as u64).sum()
    }
}

impl TransactionSource for TransactionDb {
    fn num_transactions(&self) -> u64 {
        self.transactions.len() as u64
    }

    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.metrics.record_full_scan();
        for t in &self.transactions {
            self.metrics.record_transaction(t.len());
            f(t.items());
        }
    }

    fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    /// Chunks are zero-copy views of the stored transactions.
    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        _scratch: &'s mut crate::chunk::ChunkScratch,
    ) -> crate::chunk::TxChunk<'s> {
        let (start, end) = crate::source::chunk_bounds(self.num_transactions(), chunk_size, index);
        let chunk = crate::chunk::TxChunk::from_transactions(&self.transactions[start..end]);
        self.metrics
            .record_transactions(chunk.len() as u64, chunk.total_items());
        chunk
    }
}

impl FromIterator<Transaction> for TransactionDb {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        TransactionDb::from_transactions(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    #[test]
    fn push_and_len() {
        let mut db = TransactionDb::new();
        assert!(db.is_empty());
        db.push(tx(&[1, 2]));
        db.push(tx(&[3]));
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_items(), 3);
    }

    #[test]
    fn for_each_charges_metrics() {
        let db = TransactionDb::from_transactions(vec![tx(&[1, 2, 3]), tx(&[4])]);
        let mut n = 0;
        db.for_each(&mut |_| n += 1);
        db.for_each(&mut |_| n += 1);
        assert_eq!(n, 4);
        assert_eq!(db.metrics().full_scans(), 2);
        assert_eq!(db.metrics().transactions_read(), 4);
        assert_eq!(db.metrics().items_read(), 8);
    }

    #[test]
    fn max_item_and_empty() {
        let db = TransactionDb::new();
        assert_eq!(db.max_item(), None);
        let db = TransactionDb::from_transactions(vec![tx(&[9, 1]), tx(&[5])]);
        assert_eq!(db.max_item(), Some(ItemId(9)));
    }

    #[test]
    fn from_iterator() {
        let db: TransactionDb = vec![tx(&[1]), tx(&[2])].into_iter().collect();
        assert_eq!(db.len(), 2);
        assert_eq!(db.into_transactions().len(), 2);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let db = TransactionDb::with_capacity(128);
        assert!(db.is_empty());
        assert_eq!(db.num_transactions(), 0);
    }
}

//! Append-only write-ahead log for the maintenance layer.
//!
//! Every durable mutation of a maintenance session is one framed record
//! appended to the current WAL segment *before* the in-memory effect is
//! acknowledged:
//!
//! * [`WalRecord::Stage`] — one staged update batch with its global
//!   arrival ticket. Ticket order is the staging area's global arrival
//!   order, so replaying stage records in ticket order reproduces the
//!   exact batch concatenation every commit round saw.
//! * [`WalRecord::Commit`] — a round boundary: the tickets the round
//!   consumed (in ticket order) and the state version it produced.
//! * [`WalRecord::Abort`] — a discarded set of tickets (staged work
//!   dropped without being applied).
//!
//! ## Frame format
//!
//! ```text
//! [u32 le payload_len][u32 le crc32(payload)][payload]
//! ```
//!
//! The payload is a type byte followed by the existing varint/delta
//! [`codec`] encoding (transactions exactly as
//! [`PagedStore`](crate::page::PagedStore) stores them). CRC32 is the
//! IEEE/zlib polynomial, table-driven, no dependencies.
//!
//! ## Torn tails
//!
//! A crash can leave any byte prefix of the last append. [`read_records`]
//! therefore decodes records until the first frame that is truncated or
//! fails its CRC, *drops everything from that frame on*, and reports the
//! drop as a typed [`Error::Corrupt`] with the byte offset — the caller
//! (recovery) logs it and proceeds. This is safe because records become
//! effective strictly in file order: a commit boundary always follows the
//! stage records it covers, so a valid prefix is always a consistent
//! history.
//!
//! The same prefix argument is what makes **group commit** safe: when the
//! durability layer batches the `sync` barriers of several `Stage`
//! appends (see `fup_core::DurabilityPolicy::group_commit`), a power cut
//! can only drop a *suffix* of un-synced stage records — never an
//! acknowledged boundary, which always syncs unconditionally.

use crate::codec;
use crate::error::{Error, Result};
use crate::segment::{Tid, UpdateBatch};
use crate::transaction::Transaction;

/// Bytes of frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

const TAG_STAGE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;

// ----------------------------------------------------------------- crc --

/// IEEE CRC32 lookup table, built at first use.
fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ------------------------------------------------------------- records --

/// One durable log record. See the [module docs](self) for semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A staged update batch under its global arrival ticket.
    Stage {
        /// The staging area's global arrival ticket.
        ticket: u64,
        /// The batch exactly as staged.
        batch: UpdateBatch,
    },
    /// A commit boundary: the round consumed `tickets` (ascending) and
    /// published state version `version`.
    Commit {
        /// The state version the round produced.
        version: u64,
        /// Tickets consumed by the round, ascending.
        tickets: Vec<u64>,
    },
    /// Staged tickets dropped without being applied.
    Abort {
        /// Tickets discarded, ascending.
        tickets: Vec<u64>,
    },
}

/// Encodes an [`UpdateBatch`] (insert transactions, then delete tids)
/// into `buf` — the payload layout [`WalRecord::Stage`] uses, shared with
/// the checkpoint format's embedded backlog.
pub fn encode_batch(buf: &mut Vec<u8>, batch: &UpdateBatch) {
    codec::write_varint64(buf, batch.inserts.len() as u64);
    for t in &batch.inserts {
        codec::encode_transaction(buf, t.items());
    }
    codec::write_varint64(buf, batch.deletes.len() as u64);
    for &Tid(tid) in &batch.deletes {
        codec::write_varint64(buf, tid);
    }
}

/// Decodes an [`UpdateBatch`] written by [`encode_batch`], advancing
/// `pos` past it.
pub fn decode_batch(buf: &[u8], pos: &mut usize) -> Result<UpdateBatch> {
    let n_inserts = codec::read_varint64(buf, pos)? as usize;
    let mut inserts = Vec::with_capacity(n_inserts.min(buf.len()));
    let mut items = Vec::new();
    for _ in 0..n_inserts {
        codec::decode_transaction(buf, pos, &mut items)?;
        inserts.push(Transaction::from_sorted_vec(items.clone()));
    }
    let n_deletes = codec::read_varint64(buf, pos)? as usize;
    let mut deletes = Vec::with_capacity(n_deletes.min(buf.len()));
    for _ in 0..n_deletes {
        deletes.push(Tid(codec::read_varint64(buf, pos)?));
    }
    Ok(UpdateBatch { inserts, deletes })
}

fn encode_tickets(buf: &mut Vec<u8>, tickets: &[u64]) {
    // Tickets are ascending, so delta encoding keeps them to ~1 byte.
    codec::write_varint64(buf, tickets.len() as u64);
    let mut prev = 0u64;
    for (i, &t) in tickets.iter().enumerate() {
        codec::write_varint64(buf, if i == 0 { t } else { t - prev });
        prev = t;
    }
}

fn decode_tickets(buf: &[u8], pos: &mut usize) -> Result<Vec<u64>> {
    let n = codec::read_varint64(buf, pos)? as usize;
    let mut out = Vec::with_capacity(n.min(buf.len()));
    let mut prev = 0u64;
    for i in 0..n {
        let v = codec::read_varint64(buf, pos)?;
        let t = if i == 0 {
            v
        } else {
            prev.checked_add(v).ok_or_else(|| Error::Corrupt {
                reason: "ticket delta overflows u64".into(),
                offset: Some(*pos),
            })?
        };
        if i > 0 && v == 0 {
            return Err(Error::Corrupt {
                reason: "zero ticket delta: duplicate ticket".into(),
                offset: Some(*pos),
            });
        }
        out.push(t);
        prev = t;
    }
    Ok(out)
}

impl WalRecord {
    /// Encodes the record payload (without framing) into `buf`.
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Stage { ticket, batch } => {
                buf.push(TAG_STAGE);
                codec::write_varint64(buf, *ticket);
                encode_batch(buf, batch);
            }
            WalRecord::Commit { version, tickets } => {
                buf.push(TAG_COMMIT);
                codec::write_varint64(buf, *version);
                encode_tickets(buf, tickets);
            }
            WalRecord::Abort { tickets } => {
                buf.push(TAG_ABORT);
                encode_tickets(buf, tickets);
            }
        }
    }

    /// Decodes one record payload (the bytes inside a frame).
    fn decode_payload(payload: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let Some(&tag) = payload.first() else {
            return Err(Error::Corrupt {
                reason: "empty WAL record payload".into(),
                offset: Some(0),
            });
        };
        pos += 1;
        let record = match tag {
            TAG_STAGE => {
                let ticket = codec::read_varint64(payload, &mut pos)?;
                let batch = decode_batch(payload, &mut pos)?;
                WalRecord::Stage { ticket, batch }
            }
            TAG_COMMIT => {
                let version = codec::read_varint64(payload, &mut pos)?;
                let tickets = decode_tickets(payload, &mut pos)?;
                WalRecord::Commit { version, tickets }
            }
            TAG_ABORT => {
                let tickets = decode_tickets(payload, &mut pos)?;
                WalRecord::Abort { tickets }
            }
            other => {
                return Err(Error::Corrupt {
                    reason: format!("unknown WAL record tag {other}"),
                    offset: Some(0),
                })
            }
        };
        if pos != payload.len() {
            return Err(Error::Corrupt {
                reason: "trailing bytes after WAL record".into(),
                offset: Some(pos),
            });
        }
        Ok(record)
    }

    /// Appends the framed encoding (`len` + `crc` + payload) to `buf`.
    pub fn encode_framed(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.extend_from_slice(&[0u8; FRAME_HEADER]);
        self.encode_payload(buf);
        let payload = &buf[start + FRAME_HEADER..];
        let len = payload.len() as u32;
        let crc = crc32(payload);
        buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
        buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    }

    /// The framed encoding as a fresh buffer.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_framed(&mut buf);
        buf
    }
}

/// The outcome of scanning one WAL segment: every record in the valid
/// prefix, plus the typed reason the tail (if any) was dropped.
#[derive(Debug)]
pub struct WalScan {
    /// Records decoded from the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Bytes of the valid prefix (everything at and after this offset was
    /// dropped).
    pub valid_len: usize,
    /// Why the scan stopped early — `None` when the whole segment parsed.
    pub tail_error: Option<Error>,
}

/// Scans a WAL segment: decodes frames until EOF or the first frame that
/// is truncated, fails its CRC, or does not decode, then stops. Never
/// panics and never returns `Err`; a bad tail is reported in
/// [`WalScan::tail_error`] with the frame's byte offset, and every record
/// before it is kept.
pub fn read_records(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut tail_error = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            tail_error = Some(Error::Corrupt {
                reason: format!("torn WAL frame header ({remaining} bytes)"),
                offset: Some(pos),
            });
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > remaining - FRAME_HEADER {
            tail_error = Some(Error::Corrupt {
                reason: format!(
                    "torn WAL record: frame wants {len} payload bytes, {} remain",
                    remaining - FRAME_HEADER
                ),
                offset: Some(pos),
            });
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            tail_error = Some(Error::Corrupt {
                reason: "WAL record CRC mismatch".into(),
                offset: Some(pos),
            });
            break;
        }
        match WalRecord::decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(e) => {
                // A CRC-valid but undecodable payload still ends the
                // trustworthy prefix (writer bug or targeted corruption).
                tail_error = Some(match e {
                    Error::Corrupt { reason, offset } => Error::Corrupt {
                        reason,
                        offset: Some(pos + FRAME_HEADER + offset.unwrap_or(0)),
                    },
                    other => other,
                });
                break;
            }
        }
        pos += FRAME_HEADER + len;
    }
    WalScan {
        records,
        valid_len: pos,
        tail_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Stage {
                ticket: 0,
                batch: UpdateBatch::insert_only(vec![tx(&[1, 2, 3]), tx(&[2])]),
            },
            WalRecord::Stage {
                ticket: 1,
                batch: UpdateBatch {
                    inserts: vec![tx(&[5, 9])],
                    deletes: vec![Tid(0), Tid(2)],
                },
            },
            WalRecord::Commit {
                version: 1,
                tickets: vec![0, 1],
            },
            WalRecord::Stage {
                ticket: 2,
                batch: UpdateBatch::delete_only(vec![Tid(4)]),
            },
            WalRecord::Abort { tickets: vec![2] },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in records {
            r.encode_framed(&mut buf);
        }
        buf
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = sample_records();
        let buf = encode_all(&records);
        let scan = read_records(&buf);
        assert!(scan.tail_error.is_none());
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.records, records);
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = read_records(&[]);
        assert!(scan.records.is_empty());
        assert!(scan.tail_error.is_none());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn every_truncation_point_drops_only_the_tail() {
        let records = sample_records();
        let buf = encode_all(&records);
        // Frame boundaries: prefix lengths at which the log is whole.
        let mut boundaries = vec![0usize];
        {
            let mut pos = 0;
            while pos < buf.len() {
                let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
                pos += FRAME_HEADER + len;
                boundaries.push(pos);
            }
        }
        for cut in 0..=buf.len() {
            let scan = read_records(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            assert_eq!(scan.records[..], records[..whole], "cut at {cut}");
            if boundaries.contains(&cut) {
                assert!(scan.tail_error.is_none(), "cut at {cut}");
            } else {
                let err = scan.tail_error.expect("mid-frame cut must report");
                assert!(matches!(
                    err,
                    Error::Corrupt {
                        offset: Some(_),
                        ..
                    }
                ));
            }
        }
    }

    #[test]
    fn flipped_byte_fails_crc_and_stops_scan() {
        let records = sample_records();
        let buf = encode_all(&records);
        for offset in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[offset] = !corrupted[offset];
            let scan = read_records(&corrupted);
            // Never a panic; never *more* records than were written, and
            // the surviving prefix matches the original records.
            assert!(scan.records.len() <= records.len());
            for (got, want) in scan.records.iter().zip(&records) {
                if got != want {
                    // A flip inside a length header can shift framing so a
                    // later "record" decodes differently — but only when
                    // the CRC happens to collide, which it does not here.
                    panic!("byte {offset}: surviving record diverged");
                }
            }
        }
    }

    #[test]
    fn commit_and_abort_ticket_lists_roundtrip_sparse() {
        let r = WalRecord::Commit {
            version: 42,
            tickets: vec![3, 4, 100, 10_000_000_007],
        };
        let buf = r.to_framed_bytes();
        let scan = read_records(&buf);
        assert_eq!(scan.records, vec![r]);
        let r = WalRecord::Abort {
            tickets: Vec::new(),
        };
        let scan = read_records(&r.to_framed_bytes());
        assert_eq!(scan.records, vec![r]);
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_corrupt_not_panic() {
        // Hand-build a CRC-valid frame with a bogus tag.
        let payload = [9u8, 1, 2, 3];
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let scan = read_records(&buf);
        assert!(scan.records.is_empty());
        assert!(matches!(scan.tail_error, Some(Error::Corrupt { .. })));
    }
}

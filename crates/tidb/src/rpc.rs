//! Cluster message protocol: length-prefixed, CRC-framed messages over a
//! pluggable transport.
//!
//! The process-per-shard runtime (`fup_core::cluster`) speaks this
//! protocol between the coordinator and its shard workers. Frames reuse
//! the WAL's conventions exactly —
//!
//! ```text
//! [u32 le payload_len][u32 le crc32(payload)][payload]
//! ```
//!
//! — with the payload a type byte followed by the same varint/delta
//! [`codec`] encoding the [`wal`](crate::wal) and
//! [`PagedStore`](crate::page::PagedStore) use. Sharing the frame format
//! is load-bearing, not cosmetic: a shard worker's WAL records *are*
//! protocol frames ([`Message::StageRound`] / [`Message::CommitRound`] /
//! [`Message::AbortRound`] appended verbatim), so recovery replays the
//! log with the same decoder that serves the wire and inherits the WAL's
//! torn-tail prefix argument (see [`read_frames`]).
//!
//! Transports are deliberately dumb byte pipes: [`ChannelTransport`]
//! pairs two in-process mpsc channels (tests, single-machine
//! simulation), [`UdsTransport`] wraps a Unix-domain socket stream.
//! Both carry whole frames; CRC is verified on every receive, so a
//! corrupted or truncated frame surfaces as a typed
//! [`Error::Corrupt`] rather than a garbled
//! message.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::sync::mpsc;

use crate::codec;
use crate::error::{Error, FaultKind, Result};
use crate::item::ItemId;
use crate::segment::Tid;
use crate::transaction::Transaction;
use crate::wal::{crc32, FRAME_HEADER};

// ------------------------------------------------------------ messages --

const TAG_STAGE_ROUND: u8 = 1;
const TAG_ENGAGE: u8 = 2;
const TAG_COUNT_SPLIT: u8 = 3;
const TAG_COUNT_ITEMS: u8 = 4;
const TAG_COUNT_DENSE: u8 = 5;
const TAG_FINISH_ROUND: u8 = 6;
const TAG_COMMIT_ROUND: u8 = 7;
const TAG_ABORT_ROUND: u8 = 8;
const TAG_CHECKPOINT: u8 = 9;
const TAG_HEALTH_PROBE: u8 = 10;
const TAG_FETCH_ROWS: u8 = 11;
const TAG_SHUTDOWN: u8 = 12;
const TAG_STAGED_OK: u8 = 13;
const TAG_COUNTS: u8 = 14;
const TAG_SPLITS: u8 = 15;
const TAG_ROWS: u8 = 16;
const TAG_HEALTH: u8 = 17;
const TAG_OK: u8 = 18;
const TAG_ERR: u8 = 19;

/// One protocol message. The first group travels coordinator → worker,
/// the second worker → coordinator; both directions share the frame
/// format so either end can log or replay what it saw.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Phase 1 of a commit round: the rows this shard gains (with their
    /// pre-assigned global tids) and the tids it loses. The worker logs
    /// the frame to its WAL before acting and answers
    /// [`Message::StagedOk`] with the removed rows.
    StageRound {
        /// Coordinator round number (monotone per cluster session).
        round: u64,
        /// Inserted rows routed to this shard, global tid order.
        inserts: Vec<(Tid, Transaction)>,
        /// Tids deleted from this shard.
        deletes: Vec<Tid>,
    },
    /// Build/extend the worker's vertical index for this round, filtered
    /// to `keep` (the coordinator's `old L₁ ∪ result L₁` item union).
    Engage {
        /// Items the round's index must cover.
        keep: Vec<ItemId>,
    },
    /// Count a candidate table: `items` is the flat row-major item array
    /// of a `k`-itemset table (`items.len() % k == 0`). Answered with
    /// [`Message::Splits`] — per-row `(base, delta)` support splits.
    CountSplit {
        /// Itemset size of every row.
        k: u32,
        /// Flat row-major items, rows sorted lexicographically.
        items: Vec<ItemId>,
    },
    /// Count single items in the shard's *base* rows only (pre-round
    /// rows). Answered with [`Message::Counts`], one count per item.
    CountItems {
        /// Items to count, in reply order.
        items: Vec<ItemId>,
    },
    /// Dense item histogram of the shard's base rows: answered with
    /// [`Message::Counts`] where index `i` counts `ItemId(i)`; the
    /// vector may be shorter than the coordinator's dictionary (missing
    /// tail = zeros).
    CountDense,
    /// Return the round's index to its slot (successful round).
    FinishRound,
    /// Phase 2: make the staged round effective. WAL-logged, answered
    /// [`Message::Ok`].
    CommitRound {
        /// The round being committed (must match the staged round).
        round: u64,
    },
    /// Phase 2 alternative: discard the staged round. WAL-logged,
    /// answered [`Message::Ok`].
    AbortRound {
        /// The round being aborted.
        round: u64,
    },
    /// Compact durable state: write a checkpoint and truncate the WAL.
    Checkpoint,
    /// Liveness + progress probe, answered [`Message::Health`].
    HealthProbe,
    /// Stream the shard's live rows back (re-mine support), answered
    /// [`Message::Rows`].
    FetchRows,
    /// Orderly worker shutdown, answered [`Message::Ok`].
    Shutdown,

    /// Reply to [`Message::StageRound`]: the full rows the deletes
    /// removed (the coordinator needs them to count the delete side of
    /// FUP2 locally).
    StagedOk {
        /// Echo of the staged round number.
        round: u64,
        /// Removed rows, one per requested delete, request order.
        removed: Vec<(Tid, Transaction)>,
    },
    /// Reply to [`Message::CountItems`] / [`Message::CountDense`].
    Counts(Vec<u64>),
    /// Reply to [`Message::CountSplit`]: per-row `(base, delta)` splits.
    Splits(Vec<(u64, u64)>),
    /// Reply to [`Message::FetchRows`]: live rows in global tid order.
    Rows(Vec<(Tid, Transaction)>),
    /// Reply to [`Message::HealthProbe`].
    Health {
        /// Live transactions in the shard.
        live: u64,
        /// Highest round made effective (committed or aborted).
        decided_round: u64,
        /// A staged round awaiting its phase-2 decision, if any.
        staged_round: Option<u64>,
    },
    /// Generic success reply.
    Ok,
    /// Typed failure reply; the round must be aborted.
    Err(String),
}

fn corrupt(reason: &str, offset: usize) -> Error {
    Error::Corrupt {
        reason: reason.into(),
        offset: Some(offset),
    }
}

fn write_tid_rows(buf: &mut Vec<u8>, rows: &[(Tid, Transaction)]) {
    codec::write_varint64(buf, rows.len() as u64);
    for (Tid(tid), t) in rows {
        codec::write_varint64(buf, *tid);
        codec::encode_transaction(buf, t.items());
    }
}

fn read_tid_rows(buf: &[u8], pos: &mut usize) -> Result<Vec<(Tid, Transaction)>> {
    let n = codec::read_varint64(buf, pos)? as usize;
    let mut rows = Vec::with_capacity(n.min(buf.len()));
    let mut items = Vec::new();
    for _ in 0..n {
        let tid = Tid(codec::read_varint64(buf, pos)?);
        codec::decode_transaction(buf, pos, &mut items)?;
        rows.push((tid, Transaction::from_sorted_vec(items.clone())));
    }
    Ok(rows)
}

fn write_items(buf: &mut Vec<u8>, items: &[ItemId]) {
    codec::write_varint64(buf, items.len() as u64);
    for item in items {
        codec::write_varint(buf, item.raw());
    }
}

fn read_items(buf: &[u8], pos: &mut usize) -> Result<Vec<ItemId>> {
    let n = codec::read_varint64(buf, pos)? as usize;
    let mut items = Vec::with_capacity(n.min(buf.len()));
    for _ in 0..n {
        items.push(ItemId(codec::read_varint(buf, pos)?));
    }
    Ok(items)
}

impl Message {
    /// Encodes the message payload (type byte + body, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::StageRound {
                round,
                inserts,
                deletes,
            } => {
                buf.push(TAG_STAGE_ROUND);
                codec::write_varint64(&mut buf, *round);
                write_tid_rows(&mut buf, inserts);
                codec::write_varint64(&mut buf, deletes.len() as u64);
                for Tid(tid) in deletes {
                    codec::write_varint64(&mut buf, *tid);
                }
            }
            Message::Engage { keep } => {
                buf.push(TAG_ENGAGE);
                write_items(&mut buf, keep);
            }
            Message::CountSplit { k, items } => {
                buf.push(TAG_COUNT_SPLIT);
                codec::write_varint(&mut buf, *k);
                write_items(&mut buf, items);
            }
            Message::CountItems { items } => {
                buf.push(TAG_COUNT_ITEMS);
                write_items(&mut buf, items);
            }
            Message::CountDense => buf.push(TAG_COUNT_DENSE),
            Message::FinishRound => buf.push(TAG_FINISH_ROUND),
            Message::CommitRound { round } => {
                buf.push(TAG_COMMIT_ROUND);
                codec::write_varint64(&mut buf, *round);
            }
            Message::AbortRound { round } => {
                buf.push(TAG_ABORT_ROUND);
                codec::write_varint64(&mut buf, *round);
            }
            Message::Checkpoint => buf.push(TAG_CHECKPOINT),
            Message::HealthProbe => buf.push(TAG_HEALTH_PROBE),
            Message::FetchRows => buf.push(TAG_FETCH_ROWS),
            Message::Shutdown => buf.push(TAG_SHUTDOWN),
            Message::StagedOk { round, removed } => {
                buf.push(TAG_STAGED_OK);
                codec::write_varint64(&mut buf, *round);
                write_tid_rows(&mut buf, removed);
            }
            Message::Counts(counts) => {
                buf.push(TAG_COUNTS);
                codec::write_varint64(&mut buf, counts.len() as u64);
                for &c in counts {
                    codec::write_varint64(&mut buf, c);
                }
            }
            Message::Splits(splits) => {
                buf.push(TAG_SPLITS);
                codec::write_varint64(&mut buf, splits.len() as u64);
                for &(base, delta) in splits {
                    codec::write_varint64(&mut buf, base);
                    codec::write_varint64(&mut buf, delta);
                }
            }
            Message::Rows(rows) => {
                buf.push(TAG_ROWS);
                write_tid_rows(&mut buf, rows);
            }
            Message::Health {
                live,
                decided_round,
                staged_round,
            } => {
                buf.push(TAG_HEALTH);
                codec::write_varint64(&mut buf, *live);
                codec::write_varint64(&mut buf, *decided_round);
                match staged_round {
                    Some(r) => {
                        buf.push(1);
                        codec::write_varint64(&mut buf, *r);
                    }
                    None => buf.push(0),
                }
            }
            Message::Ok => buf.push(TAG_OK),
            Message::Err(reason) => {
                buf.push(TAG_ERR);
                codec::write_varint64(&mut buf, reason.len() as u64);
                buf.extend_from_slice(reason.as_bytes());
            }
        }
        buf
    }

    /// Decodes a payload written by [`Message::encode`].
    pub fn decode(buf: &[u8]) -> Result<Message> {
        let Some(&tag) = buf.first() else {
            return Err(corrupt("empty message payload", 0));
        };
        let pos = &mut 1usize;
        let msg = match tag {
            TAG_STAGE_ROUND => {
                let round = codec::read_varint64(buf, pos)?;
                let inserts = read_tid_rows(buf, pos)?;
                let n = codec::read_varint64(buf, pos)? as usize;
                let mut deletes = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    deletes.push(Tid(codec::read_varint64(buf, pos)?));
                }
                Message::StageRound {
                    round,
                    inserts,
                    deletes,
                }
            }
            TAG_ENGAGE => Message::Engage {
                keep: read_items(buf, pos)?,
            },
            TAG_COUNT_SPLIT => {
                let k = codec::read_varint(buf, pos)?;
                let items = read_items(buf, pos)?;
                if k == 0 || items.len() % k as usize != 0 {
                    return Err(corrupt("count-split table not k-strided", *pos));
                }
                Message::CountSplit { k, items }
            }
            TAG_COUNT_ITEMS => Message::CountItems {
                items: read_items(buf, pos)?,
            },
            TAG_COUNT_DENSE => Message::CountDense,
            TAG_FINISH_ROUND => Message::FinishRound,
            TAG_COMMIT_ROUND => Message::CommitRound {
                round: codec::read_varint64(buf, pos)?,
            },
            TAG_ABORT_ROUND => Message::AbortRound {
                round: codec::read_varint64(buf, pos)?,
            },
            TAG_CHECKPOINT => Message::Checkpoint,
            TAG_HEALTH_PROBE => Message::HealthProbe,
            TAG_FETCH_ROWS => Message::FetchRows,
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_STAGED_OK => {
                let round = codec::read_varint64(buf, pos)?;
                let removed = read_tid_rows(buf, pos)?;
                Message::StagedOk { round, removed }
            }
            TAG_COUNTS => {
                let n = codec::read_varint64(buf, pos)? as usize;
                let mut counts = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    counts.push(codec::read_varint64(buf, pos)?);
                }
                Message::Counts(counts)
            }
            TAG_SPLITS => {
                let n = codec::read_varint64(buf, pos)? as usize;
                let mut splits = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    let base = codec::read_varint64(buf, pos)?;
                    let delta = codec::read_varint64(buf, pos)?;
                    splits.push((base, delta));
                }
                Message::Splits(splits)
            }
            TAG_ROWS => Message::Rows(read_tid_rows(buf, pos)?),
            TAG_HEALTH => {
                let live = codec::read_varint64(buf, pos)?;
                let decided_round = codec::read_varint64(buf, pos)?;
                let staged_round = match buf.get(*pos) {
                    Some(0) => {
                        *pos += 1;
                        None
                    }
                    Some(1) => {
                        *pos += 1;
                        Some(codec::read_varint64(buf, pos)?)
                    }
                    _ => return Err(corrupt("bad staged-round presence byte", *pos)),
                };
                Message::Health {
                    live,
                    decided_round,
                    staged_round,
                }
            }
            TAG_OK => Message::Ok,
            TAG_ERR => {
                let n = codec::read_varint64(buf, pos)? as usize;
                let end = pos
                    .checked_add(n)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| corrupt("truncated error string", *pos))?;
                let reason = String::from_utf8(buf[*pos..end].to_vec())
                    .map_err(|_| corrupt("error string not utf-8", *pos))?;
                *pos = end;
                Message::Err(reason)
            }
            _ => return Err(corrupt("unknown message tag", 0)),
        };
        if *pos != buf.len() {
            return Err(corrupt("trailing bytes after message", *pos));
        }
        Ok(msg)
    }

    /// Encodes the message as one complete frame
    /// (`[len][crc32][payload]`) — the bytes a transport carries and a
    /// worker WAL appends.
    pub fn to_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes one complete frame produced by [`Message::to_frame`],
    /// verifying length and CRC.
    pub fn from_frame(frame: &[u8]) -> Result<Message> {
        let (msg, used) = Self::from_frame_prefix(frame)?;
        if used != frame.len() {
            return Err(corrupt("trailing bytes after frame", used));
        }
        Ok(msg)
    }

    fn from_frame_prefix(bytes: &[u8]) -> Result<(Message, usize)> {
        if bytes.len() < FRAME_HEADER {
            return Err(corrupt("truncated frame header", bytes.len()));
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let end = FRAME_HEADER
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt("truncated frame payload", bytes.len()))?;
        let payload = &bytes[FRAME_HEADER..end];
        if crc32(payload) != crc {
            return Err(corrupt("frame crc mismatch", FRAME_HEADER));
        }
        Ok((Message::decode(payload)?, end))
    }
}

/// Decodes a concatenation of frames (a shard worker's WAL) with the
/// WAL's torn-tail rule: messages are returned up to the first frame
/// that is truncated or fails its CRC, and the byte offset of the drop
/// (if any) is reported alongside. A valid prefix is always a
/// consistent history because rounds become effective strictly in file
/// order.
pub fn read_frames(bytes: &[u8]) -> (Vec<Message>, Option<usize>) {
    let mut messages = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match Message::from_frame_prefix(&bytes[pos..]) {
            Ok((msg, used)) => {
                messages.push(msg);
                pos += used;
            }
            Err(_) => return (messages, Some(pos)),
        }
    }
    (messages, None)
}

// ----------------------------------------------------------- transport --

/// A bidirectional, message-oriented byte pipe. Implementations carry
/// whole frames; `recv` verifies the CRC before decoding, so transport
/// corruption surfaces as [`Error::Corrupt`] and
/// a closed peer as a permanent [`Error::Io`].
pub trait Transport: Send {
    /// Sends one message.
    fn send(&mut self, msg: &Message) -> Result<()>;
    /// Receives the next message, blocking until one arrives.
    fn recv(&mut self) -> Result<Message>;
}

fn disconnected(op: &'static str) -> Error {
    Error::Io {
        op,
        file: "rpc".into(),
        kind: FaultKind::Permanent,
        reason: "transport peer disconnected".into(),
    }
}

/// In-process transport: a pair of mpsc channels carrying framed bytes.
/// The frames still round-trip through the full encode/CRC/decode path,
/// so channel tests exercise exactly the bytes a socket would carry.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Builds a connected pair: what one end sends, the other receives.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            ChannelTransport { tx: a_tx, rx: a_rx },
            ChannelTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: &Message) -> Result<()> {
        self.tx
            .send(msg.to_frame())
            .map_err(|_| disconnected("send"))
    }

    fn recv(&mut self) -> Result<Message> {
        let frame = self.rx.recv().map_err(|_| disconnected("recv"))?;
        Message::from_frame(&frame)
    }
}

/// Unix-domain-socket transport: frames written/read directly on the
/// stream. One frame per [`send`](Transport::send); `recv` reads the
/// 8-byte header then exactly the payload.
pub struct UdsTransport {
    stream: UnixStream,
}

impl UdsTransport {
    /// Wraps a connected stream.
    pub fn new(stream: UnixStream) -> Self {
        UdsTransport { stream }
    }

    /// Builds a connected socketpair — the in-machine equivalent of a
    /// listener handshake, convenient for spawning a worker thread or
    /// forked process with one end each.
    pub fn pair() -> std::io::Result<(UdsTransport, UdsTransport)> {
        let (a, b) = UnixStream::pair()?;
        Ok((UdsTransport::new(a), UdsTransport::new(b)))
    }
}

fn io_err(op: &'static str, e: &std::io::Error) -> Error {
    Error::Io {
        op,
        file: "rpc".into(),
        kind: FaultKind::Permanent,
        reason: e.to_string(),
    }
}

impl Transport for UdsTransport {
    fn send(&mut self, msg: &Message) -> Result<()> {
        let frame = msg.to_frame();
        self.stream
            .write_all(&frame)
            .and_then(|()| self.stream.flush())
            .map_err(|e| io_err("send", &e))
    }

    fn recv(&mut self) -> Result<Message> {
        let mut header = [0u8; FRAME_HEADER];
        self.stream
            .read_exact(&mut header)
            .map_err(|e| io_err("recv", &e))?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let mut frame = vec![0u8; FRAME_HEADER + len];
        frame[..FRAME_HEADER].copy_from_slice(&header);
        self.stream
            .read_exact(&mut frame[FRAME_HEADER..])
            .map_err(|e| io_err("recv", &e))?;
        Message::from_frame(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::StageRound {
                round: 7,
                inserts: vec![(Tid(100), t(&[1, 2, 3])), (Tid(101), t(&[2]))],
                deletes: vec![Tid(3), Tid(42)],
            },
            Message::Engage {
                keep: vec![ItemId(1), ItemId(9), ItemId(300)],
            },
            Message::CountSplit {
                k: 2,
                items: vec![ItemId(1), ItemId(2), ItemId(1), ItemId(3)],
            },
            Message::CountItems {
                items: vec![ItemId(5)],
            },
            Message::CountDense,
            Message::FinishRound,
            Message::CommitRound { round: 7 },
            Message::AbortRound { round: 8 },
            Message::Checkpoint,
            Message::HealthProbe,
            Message::FetchRows,
            Message::Shutdown,
            Message::StagedOk {
                round: 7,
                removed: vec![(Tid(3), t(&[1, 9]))],
            },
            Message::Counts(vec![0, 3, 17, u64::MAX]),
            Message::Splits(vec![(4, 1), (0, 0)]),
            Message::Rows(vec![(Tid(0), t(&[])), (Tid(9), t(&[7, 8]))]),
            Message::Health {
                live: 12,
                decided_round: 6,
                staged_round: Some(7),
            },
            Message::Health {
                live: 0,
                decided_round: 0,
                staged_round: None,
            },
            Message::Ok,
            Message::Err("shard on fire".into()),
        ]
    }

    #[test]
    fn payload_roundtrips() {
        for msg in sample_messages() {
            let buf = msg.encode();
            assert_eq!(Message::decode(&buf).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn frame_roundtrips() {
        for msg in sample_messages() {
            let frame = msg.to_frame();
            assert_eq!(Message::from_frame(&frame).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn crc_flip_rejected() {
        let frame = Message::CommitRound { round: 3 }.to_frame();
        for bit in 0..8 {
            let mut bad = frame.clone();
            let last = bad.len() - 1;
            bad[last] ^= 1 << bit; // corrupt payload → CRC mismatch
            assert!(Message::from_frame(&bad).is_err(), "bit {bit}");
        }
        // Corrupting the stored CRC itself is equally fatal.
        let mut bad = frame.clone();
        bad[4] ^= 0xff;
        assert!(Message::from_frame(&bad).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = Message::Counts(vec![1, 2, 3]).to_frame();
        for cut in 0..frame.len() {
            assert!(Message::from_frame(&frame[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_rejected() {
        assert!(Message::decode(&[200]).is_err());
        assert!(Message::decode(&[]).is_err());
        let mut buf = Message::Ok.encode();
        buf.push(0);
        assert!(Message::decode(&buf).is_err());
    }

    #[test]
    fn read_frames_applies_torn_tail_rule() {
        let mut log = Vec::new();
        log.extend_from_slice(&Message::CommitRound { round: 1 }.to_frame());
        log.extend_from_slice(&Message::CommitRound { round: 2 }.to_frame());
        let clean_len = log.len();
        let torn = Message::CommitRound { round: 3 }.to_frame();
        log.extend_from_slice(&torn[..torn.len() - 2]);

        let (messages, dropped) = read_frames(&log);
        assert_eq!(
            messages,
            vec![
                Message::CommitRound { round: 1 },
                Message::CommitRound { round: 2 }
            ]
        );
        assert_eq!(dropped, Some(clean_len));

        let (messages, dropped) = read_frames(&log[..clean_len]);
        assert_eq!(messages.len(), 2);
        assert_eq!(dropped, None);
    }

    #[test]
    fn channel_transport_carries_messages() {
        let (mut coord, mut worker) = ChannelTransport::pair();
        for msg in sample_messages() {
            coord.send(&msg).unwrap();
            assert_eq!(worker.recv().unwrap(), msg);
            worker.send(&Message::Ok).unwrap();
            assert_eq!(coord.recv().unwrap(), Message::Ok);
        }
        drop(worker);
        assert!(coord.recv().is_err());
        assert!(coord.send(&Message::Shutdown).is_err());
    }

    #[test]
    fn uds_transport_carries_messages() {
        let (mut coord, mut worker) = UdsTransport::pair().unwrap();
        let handle = std::thread::spawn(move || {
            loop {
                match worker.recv() {
                    Ok(Message::Shutdown) => {
                        worker.send(&Message::Ok).unwrap();
                        return;
                    }
                    Ok(msg) => worker.send(&msg).unwrap(), // echo
                    Err(_) => return,
                }
            }
        });
        for msg in sample_messages() {
            if msg == Message::Shutdown {
                continue;
            }
            coord.send(&msg).unwrap();
            assert_eq!(coord.recv().unwrap(), msg);
        }
        coord.send(&Message::Shutdown).unwrap();
        assert_eq!(coord.recv().unwrap(), Message::Ok);
        handle.join().unwrap();
    }
}

//! The [`TransactionSource`] abstraction that all miners scan.

use crate::item::ItemId;
use crate::scan::ScanMetrics;

/// Anything a mining algorithm can perform a full pass over.
///
/// Implemented by [`TransactionDb`](crate::TransactionDb) (flat in-memory
/// store), [`SegmentedDb`](crate::SegmentedDb) views (base / increment /
/// whole), and [`PagedStore`](crate::page::PagedStore) (block-storage
/// simulation). Algorithms are generic over this trait, so the same FUP code
/// runs against any of them.
pub trait TransactionSource {
    /// Number of transactions a full pass will deliver.
    fn num_transactions(&self) -> u64;

    /// Performs one full pass, invoking `f` on each transaction's sorted
    /// item slice, and charges the pass to [`Self::metrics`].
    fn for_each(&self, f: &mut dyn FnMut(&[ItemId]));

    /// The scan accounting for this source.
    fn metrics(&self) -> &ScanMetrics;

    /// `true` if the source holds no transactions.
    fn is_empty(&self) -> bool {
        self.num_transactions() == 0
    }
}

/// A source adapter that chains two sources, presenting `DB ∪ db` as one
/// database. Used by the harness to re-run Apriori/DHP on the updated
/// database, which is exactly the baseline the paper compares FUP against.
pub struct ChainSource<'a, A: ?Sized, B: ?Sized> {
    first: &'a A,
    second: &'a B,
}

impl<'a, A, B> ChainSource<'a, A, B>
where
    A: TransactionSource + ?Sized,
    B: TransactionSource + ?Sized,
{
    /// Chains `first` followed by `second`.
    pub fn new(first: &'a A, second: &'a B) -> Self {
        ChainSource { first, second }
    }
}

impl<A, B> TransactionSource for ChainSource<'_, A, B>
where
    A: TransactionSource + ?Sized,
    B: TransactionSource + ?Sized,
{
    fn num_transactions(&self) -> u64 {
        self.first.num_transactions() + self.second.num_transactions()
    }

    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.first.for_each(f);
        self.second.for_each(f);
    }

    /// Chained scans charge each underlying source; the chain itself reports
    /// the first source's metrics (callers interested in totals should read
    /// both underlying sources).
    fn metrics(&self) -> &ScanMetrics {
        self.first.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TransactionDb;
    use crate::transaction::Transaction;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        let mut d = TransactionDb::new();
        for r in rows {
            d.push(Transaction::from_items(r.iter().copied()));
        }
        d
    }

    #[test]
    fn chain_concatenates_passes() {
        let a = db(&[&[1, 2], &[3]]);
        let b = db(&[&[4]]);
        let chain = ChainSource::new(&a, &b);
        assert_eq!(chain.num_transactions(), 3);
        let mut seen = Vec::new();
        chain.for_each(&mut |t| seen.push(t.to_vec()));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], vec![ItemId(4)]);
        // Both underlying sources were charged a full scan.
        assert_eq!(a.metrics().full_scans(), 1);
        assert_eq!(b.metrics().full_scans(), 1);
    }

    #[test]
    fn is_empty_default() {
        let a = db(&[]);
        let b = db(&[]);
        assert!(a.is_empty());
        let chain = ChainSource::new(&a, &b);
        assert!(chain.is_empty());
    }
}

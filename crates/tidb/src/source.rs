//! The [`TransactionSource`] abstraction that all miners scan.

use crate::chunk::{ChunkScratch, TxChunk};
use crate::item::ItemId;
use crate::scan::ScanMetrics;

/// Anything a mining algorithm can perform a full pass over.
///
/// Implemented by [`TransactionDb`](crate::TransactionDb) (flat in-memory
/// store), [`SegmentedDb`](crate::SegmentedDb) views (base / increment /
/// whole), and [`PagedStore`](crate::page::PagedStore) (block-storage
/// simulation). Algorithms are generic over this trait, so the same FUP code
/// runs against any of them.
///
/// Two scan shapes are offered:
///
/// * [`for_each`](TransactionSource::for_each) — the classic serial pass,
///   one callback per transaction;
/// * the chunked pass — [`plan_chunks`](TransactionSource::plan_chunks)
///   splits a pass into [`TxChunk`]s that
///   [`chunk`](TransactionSource::chunk) materialises individually, so
///   independent workers can claim chunks concurrently (the source is
///   required to be `Sync` for exactly this reason).
///   [`for_each_chunk`](TransactionSource::for_each_chunk) is the serial
///   driver over the same machinery.
///
/// The chunked contract: for a fixed `chunk_size ≥ 1`, the chunks
/// `0..plan_chunks(chunk_size)` are disjoint, each holds at most
/// `chunk_size` transactions, and concatenated in index order they deliver
/// exactly the transactions of one `for_each` pass in the same order.
pub trait TransactionSource: Sync {
    /// Number of transactions a full pass will deliver.
    fn num_transactions(&self) -> u64;

    /// Performs one full pass, invoking `f` on each transaction's sorted
    /// item slice, and charges the pass to [`Self::metrics`].
    fn for_each(&self, f: &mut dyn FnMut(&[ItemId]));

    /// The scan accounting for this source.
    fn metrics(&self) -> &ScanMetrics;

    /// `true` if the source holds no transactions.
    fn is_empty(&self) -> bool {
        self.num_transactions() == 0
    }

    /// Charges the start of one full pass. Chunked drivers call this once
    /// before materialising any chunk; `for_each` implementations charge
    /// it internally.
    fn record_scan_start(&self) {
        self.metrics().record_full_scan();
    }

    /// Number of chunks a chunked pass with `chunk_size` will deliver.
    /// `chunk_size` is clamped to at least 1.
    fn plan_chunks(&self, chunk_size: usize) -> u64 {
        self.num_transactions().div_ceil(chunk_size.max(1) as u64)
    }

    /// The pass-order position (0-based tid) of the **first** transaction
    /// of chunk `index` under the `chunk_size` plan, so chunked workers
    /// can recover every transaction's global position without
    /// coordination: transaction `i` of the chunk sits at
    /// `chunk_tid_offset(chunk_size, index) + i`.
    ///
    /// The default plan packs chunks back to back, so the offset is
    /// simply `index * chunk_size`. Sources whose chunks may run short
    /// mid-pass (e.g. [`ChainSource`], whose chunks never straddle the
    /// seam) must override this to keep the offsets consistent with the
    /// transactions [`chunk`](TransactionSource::chunk) actually
    /// delivers.
    fn chunk_tid_offset(&self, chunk_size: usize, index: u64) -> u64 {
        index * chunk_size.max(1) as u64
    }

    /// Partition boundaries of the `chunk_size` chunk plan, as cumulative
    /// chunk counts: partition `p` covers chunk indices
    /// `[boundaries[p-1], boundaries[p])` (with an implicit leading 0).
    /// The last boundary always equals
    /// [`plan_chunks`](TransactionSource::plan_chunks).
    ///
    /// Partitions group chunks whose data live together (one tid-range
    /// shard, one chained sub-source, …). Chunk-claiming drivers may give
    /// each partition its **own cursor** so workers drain independent
    /// partitions without contending on one shared counter — the
    /// count-distribution scan shape. The default is a single partition,
    /// which every driver must treat exactly like the classic shared
    /// cursor; partitioning never changes which chunks exist, only how
    /// they are claimed.
    fn chunk_partitions(&self, chunk_size: usize) -> Vec<u64> {
        vec![self.plan_chunks(chunk_size)]
    }

    /// Materialises chunk `index` of the `chunk_size` plan, either as a
    /// borrowed view of stored transactions or decoded into `scratch`.
    /// Charges the chunk's transactions and items (plus pages/bytes for
    /// paged sources) to [`Self::metrics`]; the full-scan counter is *not*
    /// charged here — drivers charge it once via
    /// [`record_scan_start`](TransactionSource::record_scan_start).
    ///
    /// # Panics
    ///
    /// May panic if `index >= plan_chunks(chunk_size)`.
    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        scratch: &'s mut ChunkScratch,
    ) -> TxChunk<'s>;

    /// One full pass delivered as chunks of at most `chunk_size`
    /// transactions, charged to [`Self::metrics`] per chunk.
    fn for_each_chunk(&self, chunk_size: usize, f: &mut dyn FnMut(&TxChunk<'_>)) {
        self.record_scan_start();
        let mut scratch = ChunkScratch::new();
        for index in 0..self.plan_chunks(chunk_size) {
            let chunk = self.chunk(chunk_size, index, &mut scratch);
            f(&chunk);
        }
    }
}

/// Resolves the transaction range `[start, end)` covered by chunk `index`
/// under the default transaction-range plan.
pub(crate) fn chunk_bounds(num_transactions: u64, chunk_size: usize, index: u64) -> (usize, usize) {
    let cs = chunk_size.max(1) as u64;
    let start = index * cs;
    assert!(
        start < num_transactions || num_transactions == 0,
        "chunk index out of range"
    );
    let end = (start + cs).min(num_transactions);
    (start as usize, end as usize)
}

/// A source adapter that chains two sources, presenting `DB ∪ db` as one
/// database. Used by the harness to re-run Apriori/DHP on the updated
/// database, which is exactly the baseline the paper compares FUP against.
pub struct ChainSource<'a, A: ?Sized, B: ?Sized> {
    first: &'a A,
    second: &'a B,
}

impl<'a, A, B> ChainSource<'a, A, B>
where
    A: TransactionSource + ?Sized,
    B: TransactionSource + ?Sized,
{
    /// Chains `first` followed by `second`.
    pub fn new(first: &'a A, second: &'a B) -> Self {
        ChainSource { first, second }
    }
}

impl<A, B> TransactionSource for ChainSource<'_, A, B>
where
    A: TransactionSource + ?Sized,
    B: TransactionSource + ?Sized,
{
    fn num_transactions(&self) -> u64 {
        self.first.num_transactions() + self.second.num_transactions()
    }

    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.first.for_each(f);
        self.second.for_each(f);
    }

    /// Chained scans charge each underlying source; the chain itself reports
    /// the first source's metrics (callers interested in totals should read
    /// both underlying sources).
    fn metrics(&self) -> &ScanMetrics {
        self.first.metrics()
    }

    /// A chained pass is one pass over each underlying source.
    fn record_scan_start(&self) {
        self.first.record_scan_start();
        self.second.record_scan_start();
    }

    /// Chunks never straddle the seam: the chain delivers every chunk of
    /// `first` followed by every chunk of `second` (the last chunk of
    /// `first` may therefore be short even mid-pass, which the chunked
    /// contract allows).
    fn plan_chunks(&self, chunk_size: usize) -> u64 {
        self.first.plan_chunks(chunk_size) + self.second.plan_chunks(chunk_size)
    }

    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        scratch: &'s mut ChunkScratch,
    ) -> TxChunk<'s> {
        let first_chunks = self.first.plan_chunks(chunk_size);
        if index < first_chunks {
            self.first.chunk(chunk_size, index, scratch)
        } else {
            self.second.chunk(chunk_size, index - first_chunks, scratch)
        }
    }

    /// Chunks after the seam start at `|first|` plus the second source's
    /// own offset — the last chunk of `first` may run short, so the
    /// default back-to-back arithmetic would drift for every chunk of
    /// `second`.
    fn chunk_tid_offset(&self, chunk_size: usize, index: u64) -> u64 {
        let first_chunks = self.first.plan_chunks(chunk_size);
        if index < first_chunks {
            self.first.chunk_tid_offset(chunk_size, index)
        } else {
            self.first.num_transactions()
                + self
                    .second
                    .chunk_tid_offset(chunk_size, index - first_chunks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TransactionDb;
    use crate::transaction::Transaction;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        let mut d = TransactionDb::new();
        for r in rows {
            d.push(Transaction::from_items(r.iter().copied()));
        }
        d
    }

    #[test]
    fn chain_concatenates_passes() {
        let a = db(&[&[1, 2], &[3]]);
        let b = db(&[&[4]]);
        let chain = ChainSource::new(&a, &b);
        assert_eq!(chain.num_transactions(), 3);
        let mut seen = Vec::new();
        chain.for_each(&mut |t| seen.push(t.to_vec()));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[2], vec![ItemId(4)]);
        // Both underlying sources were charged a full scan.
        assert_eq!(a.metrics().full_scans(), 1);
        assert_eq!(b.metrics().full_scans(), 1);
    }

    #[test]
    fn is_empty_default() {
        let a = db(&[]);
        let b = db(&[]);
        assert!(a.is_empty());
        let chain = ChainSource::new(&a, &b);
        assert!(chain.is_empty());
    }

    /// Walks every chunk of `source`, asserting that `chunk_tid_offset`
    /// plus the in-chunk position reproduces exactly the pass order of
    /// `for_each`.
    fn assert_tid_offsets_consistent(source: &dyn TransactionSource, chunk_size: usize) {
        let mut pass_order = Vec::new();
        source.for_each(&mut |t| pass_order.push(t.to_vec()));
        let mut scratch = ChunkScratch::new();
        for index in 0..source.plan_chunks(chunk_size) {
            let offset = source.chunk_tid_offset(chunk_size, index);
            let chunk = source.chunk(chunk_size, index, &mut scratch);
            for (i, t) in chunk.iter().enumerate() {
                let tid = offset as usize + i;
                assert_eq!(
                    t,
                    &pass_order[tid][..],
                    "chunk {index} pos {i} (chunk_size {chunk_size})"
                );
            }
        }
    }

    #[test]
    fn default_tid_offsets_match_pass_order() {
        let a = db(&[&[1, 2], &[3], &[4, 5], &[6], &[7]]);
        for chunk_size in [1, 2, 3, 7] {
            assert_tid_offsets_consistent(&a, chunk_size);
        }
    }

    #[test]
    fn chained_tid_offsets_skip_the_short_seam_chunk() {
        // 5 transactions then 4: with chunk_size 2 the first source's last
        // chunk is short (1 transaction), so the second source's chunks do
        // NOT sit at index * chunk_size — the override must account for it.
        let a = db(&[&[1], &[2], &[3], &[4], &[5]]);
        let b = db(&[&[6], &[7], &[8], &[9]]);
        let chain = ChainSource::new(&a, &b);
        assert_eq!(chain.chunk_tid_offset(2, 3), 5); // first chunk of `b`
        for chunk_size in [1, 2, 3, 4, 10] {
            assert_tid_offsets_consistent(&chain, chunk_size);
        }
        // Nested chains compound the seam handling.
        let c = db(&[&[10]]);
        let nested = ChainSource::new(&chain, &c);
        for chunk_size in [2, 3] {
            assert_tid_offsets_consistent(&nested, chunk_size);
        }
    }
}

//! Descriptive statistics over a transaction source.
//!
//! Used by the generator's validation tests and the experiment harness to
//! sanity-check workloads against Table 1's parameters (mean transaction
//! size, item-frequency skew) before measuring anything on them.

use crate::item::ItemId;
use crate::source::TransactionSource;

/// Summary statistics of one full pass over a source.
#[derive(Debug, Clone, PartialEq)]
pub struct DbStats {
    /// Number of transactions.
    pub transactions: u64,
    /// Total item occurrences.
    pub item_occurrences: u64,
    /// Smallest transaction length.
    pub min_len: usize,
    /// Largest transaction length.
    pub max_len: usize,
    /// Number of distinct items seen.
    pub distinct_items: u64,
    /// Occurrence count of the most frequent item.
    pub top_item_count: u64,
    /// The most frequent item (ties broken by smaller id).
    pub top_item: Option<ItemId>,
    /// Histogram of transaction lengths (index = length, capped at 63;
    /// longer transactions land in the last bucket).
    pub len_histogram: Vec<u64>,
}

impl DbStats {
    /// Computes statistics with one scan of `source`.
    pub fn collect<S: TransactionSource + ?Sized>(source: &S) -> Self {
        let mut stats = DbStats {
            transactions: 0,
            item_occurrences: 0,
            min_len: usize::MAX,
            max_len: 0,
            distinct_items: 0,
            top_item_count: 0,
            top_item: None,
            len_histogram: vec![0; 64],
        };
        let mut item_counts: Vec<u64> = Vec::new();
        source.for_each(&mut |t| {
            stats.transactions += 1;
            stats.item_occurrences += t.len() as u64;
            stats.min_len = stats.min_len.min(t.len());
            stats.max_len = stats.max_len.max(t.len());
            stats.len_histogram[t.len().min(63)] += 1;
            for &item in t {
                let i = item.index();
                if i >= item_counts.len() {
                    item_counts.resize(i + 1, 0);
                }
                item_counts[i] += 1;
            }
        });
        if stats.transactions == 0 {
            stats.min_len = 0;
        }
        for (i, &c) in item_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            stats.distinct_items += 1;
            if c > stats.top_item_count {
                stats.top_item_count = c;
                stats.top_item = Some(ItemId(i as u32));
            }
        }
        stats
    }

    /// Mean transaction length (`|T|` of Table 1).
    pub fn mean_len(&self) -> f64 {
        if self.transactions == 0 {
            return 0.0;
        }
        self.item_occurrences as f64 / self.transactions as f64
    }

    /// Support fraction of the most frequent item.
    pub fn top_item_support(&self) -> f64 {
        if self.transactions == 0 {
            return 0.0;
        }
        self.top_item_count as f64 / self.transactions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TransactionDb;
    use crate::transaction::Transaction;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    #[test]
    fn collects_basic_statistics() {
        let d = db(&[&[1, 2, 3], &[2], &[2, 3]]);
        let s = DbStats::collect(&d);
        assert_eq!(s.transactions, 3);
        assert_eq!(s.item_occurrences, 6);
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 3);
        assert_eq!(s.distinct_items, 3);
        assert_eq!(s.top_item, Some(ItemId(2)));
        assert_eq!(s.top_item_count, 3);
        assert!((s.mean_len() - 2.0).abs() < 1e-12);
        assert!((s.top_item_support() - 1.0).abs() < 1e-12);
        assert_eq!(s.len_histogram[1], 1);
        assert_eq!(s.len_histogram[2], 1);
        assert_eq!(s.len_histogram[3], 1);
    }

    #[test]
    fn empty_source() {
        let d = db(&[]);
        let s = DbStats::collect(&d);
        assert_eq!(s.transactions, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.mean_len(), 0.0);
        assert_eq!(s.top_item, None);
        assert_eq!(s.top_item_support(), 0.0);
    }

    #[test]
    fn long_transactions_land_in_last_bucket() {
        let items: Vec<u32> = (0..100).collect();
        let d = db(&[&items]);
        let s = DbStats::collect(&d);
        assert_eq!(s.len_histogram[63], 1);
        assert_eq!(s.max_len, 100);
    }
}

//! Error type for the substrate.

use std::fmt;

/// Whether a failed durable-storage operation is worth retrying.
///
/// Storage backends classify every [`Error::Io`] they produce so the
/// durability layer can tell a blip from a broken medium:
///
/// * [`Transient`](FaultKind::Transient) — the failure may clear on its
///   own (`EINTR`, `EAGAIN`, a timeout, `ENOSPC` that an operator can
///   free). Retrying the same operation with backoff is sound *provided
///   the failed attempt left no partial effect*; the caller owns that
///   judgement (see `fup_core::durable`).
/// * [`Permanent`](FaultKind::Permanent) — retrying cannot help
///   (corruption, permission denied, a killed fault-injection storage).
///   The session must treat itself as crashed and recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The failure may clear on its own; bounded retry is reasonable.
    Transient,
    /// Retrying cannot fix it; recover from durable state instead.
    Permanent,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::Permanent => write!(f, "permanent"),
        }
    }
}

/// Errors produced by the transaction database substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A varint or page structure could not be decoded.
    Corrupt {
        /// Human-readable description of what failed to decode.
        reason: String,
        /// Byte offset at which decoding failed, when known.
        offset: Option<usize>,
    },
    /// A transaction id referenced a transaction that does not exist
    /// (or was already deleted).
    UnknownTransaction(crate::segment::Tid),
    /// A segment id referenced a segment that does not exist.
    UnknownSegment(crate::segment::SegmentId),
    /// An encoded transaction exceeds the page payload capacity and can
    /// never be stored.
    TransactionTooLarge {
        /// Encoded size of the offending transaction in bytes.
        encoded_len: usize,
        /// Maximum payload a page can hold.
        page_capacity: usize,
    },
    /// The dictionary is full (more than `u32::MAX` distinct items).
    DictionaryFull,
    /// A durable-storage operation failed (or was killed by fault
    /// injection). The [`kind`](Error::Io::kind) says whether retrying
    /// is worth it: a [`FaultKind::Permanent`] failure means the session
    /// that observed it must be considered crashed — discard it and
    /// recover from the durable state — while a
    /// [`FaultKind::Transient`] one may be retried with backoff.
    Io {
        /// The storage operation that failed (`append`, `sync`, …).
        op: &'static str,
        /// The file the operation targeted.
        file: String,
        /// Whether the failure is worth retrying.
        kind: FaultKind,
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A non-blocking stage found the staging area at capacity. The
    /// batch was not queued; the producer should back off and retry (or
    /// shed the batch). Only produced when a capacity limit is set.
    WouldBlock {
        /// Ops (inserts + deletes) occupying the area when rejected.
        pending: u64,
        /// The configured capacity limit, in ops.
        capacity: u64,
    },
    /// A blocking stage waited for capacity until its deadline passed.
    /// The batch was not queued.
    StageTimeout {
        /// Ops (inserts + deletes) occupying the area when the deadline
        /// expired.
        pending: u64,
        /// The configured capacity limit, in ops.
        capacity: u64,
    },
    /// The staging area is closed to new admissions (the owning service
    /// is shutting down, or its committer thread died). The batch was
    /// not queued.
    StagingClosed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt { reason, offset } => match offset {
                Some(o) => write!(f, "corrupt encoding at byte {o}: {reason}"),
                None => write!(f, "corrupt encoding: {reason}"),
            },
            Error::UnknownTransaction(tid) => write!(f, "unknown transaction id {tid:?}"),
            Error::UnknownSegment(sid) => write!(f, "unknown segment id {sid:?}"),
            Error::TransactionTooLarge {
                encoded_len,
                page_capacity,
            } => write!(
                f,
                "transaction encodes to {encoded_len} bytes, exceeding page capacity {page_capacity}"
            ),
            Error::DictionaryFull => write!(f, "item dictionary is full"),
            Error::Io {
                op,
                file,
                kind,
                reason,
            } => {
                write!(f, "durable storage {op} on {file:?} failed ({kind}): {reason}")
            }
            Error::WouldBlock { pending, capacity } => write!(
                f,
                "staging area at capacity ({pending}/{capacity} ops): try again later"
            ),
            Error::StageTimeout { pending, capacity } => write!(
                f,
                "stage deadline expired waiting for staging capacity ({pending}/{capacity} ops)"
            ),
            Error::StagingClosed => write!(f, "staging area is closed to new admissions"),
        }
    }
}

impl Error {
    /// `true` when this is a [`FaultKind::Transient`] storage failure —
    /// one a bounded retry with backoff may clear. Everything else
    /// (including admission pushback like [`Error::WouldBlock`], which
    /// has its own retry protocol) reports `false`.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::Io {
                kind: FaultKind::Transient,
                ..
            }
        )
    }
}

impl std::error::Error for Error {}

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{SegmentId, Tid};

    #[test]
    fn display_messages_are_informative() {
        let e = Error::Corrupt {
            reason: "truncated varint".into(),
            offset: Some(12),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("truncated varint"));

        let e = Error::UnknownTransaction(Tid(9));
        assert!(e.to_string().contains('9'));

        let e = Error::UnknownSegment(SegmentId(3));
        assert!(e.to_string().contains('3'));

        let e = Error::TransactionTooLarge {
            encoded_len: 9000,
            page_capacity: 4088,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4088"));

        let e = Error::Io {
            op: "append",
            file: "wal-0".into(),
            kind: FaultKind::Permanent,
            reason: "fault injected".into(),
        };
        assert!(e.to_string().contains("append"));
        assert!(e.to_string().contains("wal-0"));
        assert!(e.to_string().contains("permanent"));
        assert!(e.to_string().contains("fault injected"));
        assert!(!e.is_transient());

        let e = Error::Io {
            op: "sync",
            file: "wal-0".into(),
            kind: FaultKind::Transient,
            reason: "injected blip".into(),
        };
        assert!(e.to_string().contains("transient"));
        assert!(e.is_transient());

        let e = Error::WouldBlock {
            pending: 512,
            capacity: 512,
        };
        assert!(e.to_string().contains("512/512"));
        // Admission pushback has its own retry protocol; it is not a
        // storage fault.
        assert!(!e.is_transient());

        let e = Error::StageTimeout {
            pending: 500,
            capacity: 512,
        };
        assert!(e.to_string().contains("deadline"));
        assert!(e.to_string().contains("500/512"));

        assert!(Error::StagingClosed.to_string().contains("closed"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DictionaryFull);
    }
}

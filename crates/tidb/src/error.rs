//! Error type for the substrate.

use std::fmt;

/// Errors produced by the transaction database substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A varint or page structure could not be decoded.
    Corrupt {
        /// Human-readable description of what failed to decode.
        reason: String,
        /// Byte offset at which decoding failed, when known.
        offset: Option<usize>,
    },
    /// A transaction id referenced a transaction that does not exist
    /// (or was already deleted).
    UnknownTransaction(crate::segment::Tid),
    /// A segment id referenced a segment that does not exist.
    UnknownSegment(crate::segment::SegmentId),
    /// An encoded transaction exceeds the page payload capacity and can
    /// never be stored.
    TransactionTooLarge {
        /// Encoded size of the offending transaction in bytes.
        encoded_len: usize,
        /// Maximum payload a page can hold.
        page_capacity: usize,
    },
    /// The dictionary is full (more than `u32::MAX` distinct items).
    DictionaryFull,
    /// A durable-storage operation failed (or was killed by fault
    /// injection). The session that observed it must be considered
    /// crashed: discard it and recover from the durable state.
    Io {
        /// The storage operation that failed (`append`, `sync`, …).
        op: &'static str,
        /// The file the operation targeted.
        file: String,
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A non-blocking stage found the staging area at capacity. The
    /// batch was not queued; the producer should back off and retry (or
    /// shed the batch). Only produced when a capacity limit is set.
    WouldBlock {
        /// Ops (inserts + deletes) occupying the area when rejected.
        pending: u64,
        /// The configured capacity limit, in ops.
        capacity: u64,
    },
    /// A blocking stage waited for capacity until its deadline passed.
    /// The batch was not queued.
    StageTimeout {
        /// Ops (inserts + deletes) occupying the area when the deadline
        /// expired.
        pending: u64,
        /// The configured capacity limit, in ops.
        capacity: u64,
    },
    /// The staging area is closed to new admissions (the owning service
    /// is shutting down, or its committer thread died). The batch was
    /// not queued.
    StagingClosed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corrupt { reason, offset } => match offset {
                Some(o) => write!(f, "corrupt encoding at byte {o}: {reason}"),
                None => write!(f, "corrupt encoding: {reason}"),
            },
            Error::UnknownTransaction(tid) => write!(f, "unknown transaction id {tid:?}"),
            Error::UnknownSegment(sid) => write!(f, "unknown segment id {sid:?}"),
            Error::TransactionTooLarge {
                encoded_len,
                page_capacity,
            } => write!(
                f,
                "transaction encodes to {encoded_len} bytes, exceeding page capacity {page_capacity}"
            ),
            Error::DictionaryFull => write!(f, "item dictionary is full"),
            Error::Io { op, file, reason } => {
                write!(f, "durable storage {op} on {file:?} failed: {reason}")
            }
            Error::WouldBlock { pending, capacity } => write!(
                f,
                "staging area at capacity ({pending}/{capacity} ops): try again later"
            ),
            Error::StageTimeout { pending, capacity } => write!(
                f,
                "stage deadline expired waiting for staging capacity ({pending}/{capacity} ops)"
            ),
            Error::StagingClosed => write!(f, "staging area is closed to new admissions"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{SegmentId, Tid};

    #[test]
    fn display_messages_are_informative() {
        let e = Error::Corrupt {
            reason: "truncated varint".into(),
            offset: Some(12),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("truncated varint"));

        let e = Error::UnknownTransaction(Tid(9));
        assert!(e.to_string().contains('9'));

        let e = Error::UnknownSegment(SegmentId(3));
        assert!(e.to_string().contains('3'));

        let e = Error::TransactionTooLarge {
            encoded_len: 9000,
            page_capacity: 4088,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4088"));

        let e = Error::Io {
            op: "append",
            file: "wal-0".into(),
            reason: "fault injected".into(),
        };
        assert!(e.to_string().contains("append"));
        assert!(e.to_string().contains("wal-0"));
        assert!(e.to_string().contains("fault injected"));

        let e = Error::WouldBlock {
            pending: 512,
            capacity: 512,
        };
        assert!(e.to_string().contains("512/512"));

        let e = Error::StageTimeout {
            pending: 500,
            capacity: 512,
        };
        assert!(e.to_string().contains("deadline"));
        assert!(e.to_string().contains("500/512"));

        assert!(Error::StagingClosed.to_string().contains("closed"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DictionaryFull);
    }
}

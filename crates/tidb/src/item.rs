//! Compact item identifiers.

use std::fmt;

/// A compact identifier for an item (a "literal" in the paper's terminology,
/// `I = {i1, i2, ..., im}`).
///
/// Items are dense small integers so that itemsets can be stored as sorted
/// `u32` slices and candidate hash trees can index on them cheaply. Mapping
/// to and from application-level names is the job of
/// [`ItemDictionary`](crate::ItemDictionary).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The smallest possible item id.
    pub const MIN: ItemId = ItemId(0);
    /// The largest possible item id.
    pub const MAX: ItemId = ItemId(u32::MAX);

    /// Returns the raw integer value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize`, for indexing into per-item tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<ItemId> for u32 {
    #[inline]
    fn from(v: ItemId) -> Self {
        v.0
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ItemId(1) < ItemId(2));
        assert!(ItemId::MIN < ItemId::MAX);
        let mut v = vec![ItemId(5), ItemId(1), ItemId(3)];
        v.sort();
        assert_eq!(v, vec![ItemId(1), ItemId(3), ItemId(5)]);
    }

    #[test]
    fn conversions_roundtrip() {
        let id: ItemId = 42u32.into();
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        let raw: u32 = id.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", ItemId(7)), "I7");
        assert_eq!(format!("{}", ItemId(7)), "7");
    }
}

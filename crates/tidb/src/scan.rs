//! Scan accounting.
//!
//! The paper's cost model is dominated by database passes: each iteration of
//! Apriori/DHP scans the *whole updated database* `DB ∪ db`, while FUP scans
//! the small increment `db` for the old large itemsets and only then the
//! original `DB` for the (heavily pruned) candidates. [`ScanMetrics`]
//! captures that asymmetry so the experiment harness can report scan volume
//! alongside wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters charged by every scan of a transaction source.
///
/// All counters are relaxed atomics: exactness across threads is not needed
/// (the harness runs scans serially), but `&self` bumping keeps the scan API
/// ergonomic.
#[derive(Debug, Default)]
pub struct ScanMetrics {
    full_scans: AtomicU64,
    transactions_read: AtomicU64,
    items_read: AtomicU64,
    bytes_read: AtomicU64,
    pages_read: AtomicU64,
}

impl ScanMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the start of one full pass over the source.
    #[inline]
    pub fn record_full_scan(&self) {
        self.full_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transaction of `items` items read.
    #[inline]
    pub fn record_transaction(&self, items: usize) {
        self.transactions_read.fetch_add(1, Ordering::Relaxed);
        self.items_read.fetch_add(items as u64, Ordering::Relaxed);
    }

    /// Records a batch of `transactions` totalling `items` items read —
    /// the per-chunk form of [`ScanMetrics::record_transaction`]. Chunked
    /// scans charge once per chunk so concurrent workers touch the shared
    /// counters O(chunks) instead of O(transactions) times.
    #[inline]
    pub fn record_transactions(&self, transactions: u64, items: u64) {
        self.transactions_read
            .fetch_add(transactions, Ordering::Relaxed);
        self.items_read.fetch_add(items, Ordering::Relaxed);
    }

    /// Records `n` bytes read from storage.
    #[inline]
    pub fn record_bytes(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one storage page read.
    #[inline]
    pub fn record_page(&self) {
        self.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of complete passes started.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.load(Ordering::Relaxed)
    }

    /// Total transactions delivered across all passes.
    pub fn transactions_read(&self) -> u64 {
        self.transactions_read.load(Ordering::Relaxed)
    }

    /// Total items delivered across all passes.
    pub fn items_read(&self) -> u64 {
        self.items_read.load(Ordering::Relaxed)
    }

    /// Total bytes charged (paged sources only; in-memory sources charge an
    /// estimate based on the codec's encoded size).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total pages charged (paged sources only).
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.full_scans.store(0, Ordering::Relaxed);
        self.transactions_read.store(0, Ordering::Relaxed);
        self.items_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.pages_read.store(0, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            full_scans: self.full_scans(),
            transactions_read: self.transactions_read(),
            items_read: self.items_read(),
            bytes_read: self.bytes_read(),
            pages_read: self.pages_read(),
        }
    }
}

/// A point-in-time copy of [`ScanMetrics`], supporting deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Complete passes started.
    pub full_scans: u64,
    /// Transactions delivered.
    pub transactions_read: u64,
    /// Items delivered.
    pub items_read: u64,
    /// Bytes charged.
    pub bytes_read: u64,
    /// Pages charged.
    pub pages_read: u64,
}

impl ScanSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &ScanSnapshot) -> ScanSnapshot {
        ScanSnapshot {
            full_scans: self.full_scans.saturating_sub(earlier.full_scans),
            transactions_read: self
                .transactions_read
                .saturating_sub(earlier.transactions_read),
            items_read: self.items_read.saturating_sub(earlier.items_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
        }
    }

    /// Counter-wise sum.
    pub fn plus(&self, other: &ScanSnapshot) -> ScanSnapshot {
        ScanSnapshot {
            full_scans: self.full_scans + other.full_scans,
            transactions_read: self.transactions_read + other.transactions_read,
            items_read: self.items_read + other.items_read,
            bytes_read: self.bytes_read + other.bytes_read,
            pages_read: self.pages_read + other.pages_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ScanMetrics::new();
        m.record_full_scan();
        m.record_transaction(3);
        m.record_transaction(5);
        m.record_bytes(100);
        m.record_page();
        assert_eq!(m.full_scans(), 1);
        assert_eq!(m.transactions_read(), 2);
        assert_eq!(m.items_read(), 8);
        assert_eq!(m.bytes_read(), 100);
        assert_eq!(m.pages_read(), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ScanMetrics::new();
        m.record_full_scan();
        m.record_transaction(2);
        m.reset();
        assert_eq!(m.snapshot(), ScanSnapshot::default());
    }

    #[test]
    fn snapshot_deltas() {
        let m = ScanMetrics::new();
        m.record_full_scan();
        m.record_transaction(4);
        let a = m.snapshot();
        m.record_full_scan();
        m.record_transaction(6);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.full_scans, 1);
        assert_eq!(d.transactions_read, 1);
        assert_eq!(d.items_read, 6);
        // since() saturates rather than underflowing.
        let z = a.since(&b);
        assert_eq!(z.full_scans, 0);
    }

    #[test]
    fn snapshot_plus_adds() {
        let a = ScanSnapshot {
            full_scans: 1,
            transactions_read: 2,
            items_read: 3,
            bytes_read: 4,
            pages_read: 5,
        };
        let s = a.plus(&a);
        assert_eq!(s.full_scans, 2);
        assert_eq!(s.pages_read, 10);
    }
}

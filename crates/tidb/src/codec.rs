//! Binary transaction codec.
//!
//! Transactions are stored as a LEB128 varint length followed by
//! delta-encoded varint item ids (items are sorted, so gaps are small and
//! varints stay short). This is the on-"disk" format of
//! [`PagedStore`](crate::page::PagedStore) and also the basis for the byte
//! accounting of in-memory scans.

use crate::error::{Error, Result};
use crate::item::ItemId;
use crate::transaction::Transaction;

/// Maximum bytes a `u32` varint can occupy.
pub const MAX_VARINT_LEN: usize = 5;

/// Appends `v` as a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf[*pos..]`, advancing `*pos`.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(Error::Corrupt {
                reason: "truncated varint".into(),
                offset: Some(*pos),
            });
        };
        *pos += 1;
        let payload = u32::from(byte & 0x7f);
        if shift >= 32 || (shift == 28 && payload > 0xf) {
            return Err(Error::Corrupt {
                reason: "varint overflows u32".into(),
                offset: Some(*pos - 1),
            });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Maximum bytes a `u64` varint can occupy.
pub const MAX_VARINT64_LEN: usize = 10;

/// Appends `v` as a LEB128 varint (64-bit variant, used by the durable
/// WAL/checkpoint formats for tids, tickets, versions and supports).
#[inline]
pub fn write_varint64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a 64-bit LEB128 varint from `buf[*pos..]`, advancing `*pos`.
#[inline]
pub fn read_varint64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(Error::Corrupt {
                reason: "truncated varint".into(),
                offset: Some(*pos),
            });
        };
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(Error::Corrupt {
                reason: "varint overflows u64".into(),
                offset: Some(*pos - 1),
            });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Appends the encoding of `items` (a sorted item slice) to `buf`.
///
/// Layout: `varint(len)` then `len` delta varints (`first`, `gap`, `gap`, …).
pub fn encode_transaction(buf: &mut Vec<u8>, items: &[ItemId]) {
    write_varint(buf, items.len() as u32);
    let mut prev = 0u32;
    for (i, item) in items.iter().enumerate() {
        let raw = item.raw();
        if i == 0 {
            write_varint(buf, raw);
        } else {
            write_varint(buf, raw - prev);
        }
        prev = raw;
    }
}

/// Decodes one transaction from `buf[*pos..]`, advancing `*pos`.
/// Items are pushed into `out`, which is cleared first (a reusable
/// "workhorse" buffer keeps scan decoding allocation-free).
pub fn decode_transaction(buf: &[u8], pos: &mut usize, out: &mut Vec<ItemId>) -> Result<()> {
    out.clear();
    let len = read_varint(buf, pos)? as usize;
    out.reserve(len);
    let mut prev = 0u32;
    for i in 0..len {
        let v = read_varint(buf, pos)?;
        let raw = if i == 0 {
            v
        } else {
            prev.checked_add(v).ok_or_else(|| Error::Corrupt {
                reason: "item delta overflows u32".into(),
                offset: Some(*pos),
            })?
        };
        if i > 0 && v == 0 {
            return Err(Error::Corrupt {
                reason: "zero delta: duplicate item".into(),
                offset: Some(*pos),
            });
        }
        out.push(ItemId(raw));
        prev = raw;
    }
    Ok(())
}

/// Number of bytes [`encode_transaction`] would produce for `items`.
pub fn encoded_len(items: &[ItemId]) -> usize {
    let mut n = varint_len(items.len() as u32);
    let mut prev = 0u32;
    for (i, item) in items.iter().enumerate() {
        let raw = item.raw();
        n += if i == 0 {
            varint_len(raw)
        } else {
            varint_len(raw - prev)
        };
        prev = raw;
    }
    n
}

/// Number of bytes a varint encoding of `v` occupies.
#[inline]
pub fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Convenience: encodes a [`Transaction`] into a fresh buffer.
pub fn encode_to_vec(t: &Transaction) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_len(t.items()));
    encode_transaction(&mut buf, t.items());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(items: &[u32]) {
        let t = Transaction::from_items(items.iter().copied());
        let buf = encode_to_vec(&t);
        assert_eq!(buf.len(), encoded_len(t.items()), "encoded_len mismatch");
        let mut pos = 0;
        let mut out = Vec::new();
        decode_transaction(&buf, &mut pos, &mut out).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(out.as_slice(), t.items());
    }

    #[test]
    fn roundtrips() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[127, 128, 16384, 2_000_000]);
        roundtrip(&[u32::MAX - 1, u32::MAX]);
        roundtrip(&(0..200).collect::<Vec<_>>());
    }

    #[test]
    fn varint_boundaries() {
        for (v, len) in [
            (0u32, 1),
            (127, 1),
            (128, 2),
            (16383, 2),
            (16384, 3),
            (u32::MAX, 5),
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), len, "value {v}");
            assert_eq!(varint_len(v), len, "value {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn varint64_roundtrips_and_rejects_overflow() {
        for v in [
            0u64,
            1,
            127,
            128,
            16384,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint64(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT64_LEN);
            let mut pos = 0;
            assert_eq!(read_varint64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // Truncation is a typed error.
        let mut pos = 0;
        assert!(read_varint64(&[0x80u8], &mut pos).is_err());
        // Eleven continuation bytes overflow a u64.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert!(read_varint64(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8]; // continuation bit set, nothing follows
        let mut pos = 0;
        let err = read_varint(&buf, &mut pos).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }

    #[test]
    fn overlong_varint_errors() {
        // Six continuation bytes overflow a u32.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn truncated_transaction_errors() {
        let t = Transaction::from_items([10u32, 20, 30]);
        let buf = encode_to_vec(&t);
        let mut out = Vec::new();
        let mut pos = 0;
        assert!(decode_transaction(&buf[..buf.len() - 1], &mut pos, &mut out).is_err());
    }

    #[test]
    fn zero_delta_rejected() {
        // len=2, first=5, delta=0 → duplicate item
        let buf = vec![2, 5, 0];
        let mut out = Vec::new();
        let mut pos = 0;
        let err = decode_transaction(&buf, &mut pos, &mut out).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn delta_encoding_is_compact() {
        // 10 consecutive large items: deltas of 1 keep it ~1 byte each.
        let items: Vec<u32> = (1_000_000..1_000_010).collect();
        let t = Transaction::from_items(items);
        let buf = encode_to_vec(&t);
        // 1 (len) + 3 (first, 1_000_000 < 2^21) + 9 (deltas) = 13
        assert_eq!(buf.len(), 13);
    }

    #[test]
    fn decode_reuses_buffer() {
        let t1 = Transaction::from_items([1u32, 2, 3, 4, 5]);
        let t2 = Transaction::from_items([9u32]);
        let mut buf = Vec::new();
        encode_transaction(&mut buf, t1.items());
        encode_transaction(&mut buf, t2.items());
        let mut out = Vec::new();
        let mut pos = 0;
        decode_transaction(&buf, &mut pos, &mut out).unwrap();
        assert_eq!(out.len(), 5);
        decode_transaction(&buf, &mut pos, &mut out).unwrap();
        assert_eq!(out.as_slice(), &[ItemId(9)]);
        assert_eq!(pos, buf.len());
    }
}

//! Sharded, thread-safe staging for [`SegmentedDb`](crate::SegmentedDb):
//! the pending area behind `enqueue`/`take_pending`, restructured so many
//! producer threads can stage update batches **concurrently** — through
//! `&self` — while scans of the live set and snapshot reads proceed
//! untouched.
//!
//! ## Design
//!
//! * **Lock-striped shards.** Arriving batches land in one of
//!   [`StagingArea::num_shards`] queues, each behind its own mutex;
//!   producers hitting different shards never contend. Every batch takes
//!   a **ticket** from one shared atomic counter, so the drain can
//!   re-assemble the exact global arrival order (sort by ticket) no
//!   matter how batches interleaved across shards — the committed round
//!   is deterministic given the arrival sequence.
//! * **Arrival-time delete validation.** Deletes are validated when
//!   staged, exactly like the single-threaded pending area: the tid must
//!   be live and not already claimed by an earlier pending delete. The
//!   area keeps its own *live-tid view* (maintained by the owning
//!   [`SegmentedDb`](crate::SegmentedDb) on every mutation) so validation
//!   never touches the store — producers can validate while a commit
//!   round is scanning.
//! * **Claims survive the round.** A drained delete stays claimed until
//!   the round that carries it commits or aborts; only then does the tid
//!   leave (or re-enter) the live view and the claim set together. A
//!   producer therefore can never double-book a deletion against a round
//!   in flight.
//!
//! The area is shared by `Arc`: the store holds one handle and hands out
//! clones ([`SegmentedDb::staging`](crate::SegmentedDb::staging)) to
//! producer threads, which is what lets a maintenance service accept
//! `stage(&self, …)` calls while its committer thread owns the store
//! mutably.

use crate::error::{Error, Result};
use crate::segment::{Tid, UpdateBatch};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Instant;

/// Default shard count — enough stripes that a handful of producer
/// threads effectively never collide on a shard mutex.
pub const DEFAULT_STAGING_SHARDS: usize = 16;

/// One shard's queue: `(ticket, batch)` pairs in local arrival order.
type Shard = Vec<(u64, UpdateBatch)>;

/// How a producer wants to wait when the staging area is at capacity.
///
/// With no capacity limit configured every mode admits immediately; the
/// modes only differ once [`StagingArea::set_capacity`] has bounded the
/// area and it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Fail immediately with [`Error::WouldBlock`] instead of waiting.
    Try,
    /// Wait (indefinitely) until a drain frees enough capacity.
    Block,
    /// Wait until the deadline, then fail with [`Error::StageTimeout`].
    Deadline(Instant),
}

/// The capacity gate: admitted-but-undrained ops plus the closed flag,
/// behind one mutex so blocked producers can park on the condvar.
#[derive(Debug, Default)]
struct Gate {
    /// Ops (inserts + deletes) admitted and not yet drained. Tracks the
    /// pending counters, but under the gate mutex so waiting is
    /// race-free.
    occupancy: u64,
    /// When set, every admission fails with [`Error::StagingClosed`].
    closed: bool,
}

/// A compact view of the live tid set: tids are assigned sequentially, so
/// "live" is *allocated* (`tid < watermark`) and *not tombstoned*. The
/// durable checkpoint format and the staging area's arrival-time delete
/// validation share this one representation — deletes tombstone a tid
/// instead of rewriting the tid universe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveTidView {
    /// One past the highest tid ever allocated.
    watermark: u64,
    /// Allocated-but-deleted tids below the watermark.
    tombstones: HashSet<Tid>,
}

impl LiveTidView {
    /// A view with explicit parts — used when restoring from a checkpoint.
    pub fn from_parts(watermark: u64, tombstones: impl IntoIterator<Item = Tid>) -> Self {
        LiveTidView {
            watermark,
            tombstones: tombstones.into_iter().filter(|t| t.0 < watermark).collect(),
        }
    }

    /// `true` if `tid` is live (allocated and not tombstoned).
    pub fn contains(&self, tid: Tid) -> bool {
        tid.0 < self.watermark && !self.tombstones.contains(&tid)
    }

    /// One past the highest tid ever allocated.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Number of live tids.
    pub fn len(&self) -> u64 {
        self.watermark - self.tombstones.len() as u64
    }

    /// `true` if nothing is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tombstoned tids, ascending (materialised for serialisation).
    pub fn tombstones_sorted(&self) -> Vec<Tid> {
        let mut out: Vec<Tid> = self.tombstones.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// The live tids, ascending.
    pub fn live_sorted(&self) -> Vec<Tid> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for t in 0..self.watermark {
            let tid = Tid(t);
            if !self.tombstones.contains(&tid) {
                out.push(tid);
            }
        }
        out
    }

    fn insert(&mut self, tid: Tid) {
        if tid.0 >= self.watermark {
            // Fresh allocations arrive in order; tolerate gaps anyway.
            for skipped in self.watermark..tid.0 {
                self.tombstones.insert(Tid(skipped));
            }
            self.watermark = tid.0 + 1;
        } else {
            // A tombstoned tid resurrected (an aborted deletion).
            self.tombstones.remove(&tid);
        }
    }

    fn remove(&mut self, tid: Tid) {
        if tid.0 < self.watermark {
            self.tombstones.insert(tid);
        }
    }
}

/// The sharded staging area. See the module docs for the concurrency
/// contract; the owning [`SegmentedDb`](crate::SegmentedDb) keeps the
/// live-tid view in sync.
#[derive(Debug)]
pub struct StagingArea {
    shards: Vec<Mutex<Shard>>,
    /// Global arrival tickets (also the shard selector).
    ticket: AtomicU64,
    /// Tids claimed by a pending *or in-flight* delete.
    claims: Mutex<HashSet<Tid>>,
    /// Mirror of the store's live tid set, for arrival-time validation
    /// without touching the store.
    live: RwLock<LiveTidView>,
    pending_inserts: AtomicU64,
    pending_deletes: AtomicU64,
    /// Capacity limit in ops; 0 means unbounded.
    capacity: AtomicU64,
    gate: Mutex<Gate>,
    freed: Condvar,
}

impl Default for StagingArea {
    fn default() -> Self {
        Self::with_shards(DEFAULT_STAGING_SHARDS)
    }
}

impl StagingArea {
    // ## Lock poisoning
    //
    // Every lock acquisition below *recovers* a poisoned guard
    // (`PoisonError::into_inner`) instead of panicking in sympathy with
    // whatever thread died while holding it. This is sound because no
    // critical section in this module can be interrupted between the
    // steps of a multi-part invariant: each one either mutates a single
    // scalar or flag (gate occupancy, the closed bit, the ticket
    // counter), inserts/removes whole elements of one collection (a
    // shard's queue, the claim set, the live view), or completes all
    // validation *before* its first mutation (`claim` reads the live
    // view and rejects before extending the claim set). The only panics
    // that can fire inside a section are allocation failures, which
    // abort the process outright. A poisoned guard therefore still
    // protects consistent data, and recovering it keeps one panicking
    // producer from cascading into a panic in every other producer —
    // the same policy the service layer applies to its control lock.
    fn lock_gate(&self) -> MutexGuard<'_, Gate> {
        self.gate.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_claims(&self) -> MutexGuard<'_, HashSet<Tid>> {
        self.claims.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shard(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn read_live(&self) -> RwLockReadGuard<'_, LiveTidView> {
        self.live.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_live(&self) -> RwLockWriteGuard<'_, LiveTidView> {
        self.live.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty area with `shards` lock stripes (min 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        StagingArea {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            ticket: AtomicU64::new(0),
            claims: Mutex::new(HashSet::new()),
            live: RwLock::new(LiveTidView::default()),
            pending_inserts: AtomicU64::new(0),
            pending_deletes: AtomicU64::new(0),
            capacity: AtomicU64::new(0),
            gate: Mutex::new(Gate::default()),
            freed: Condvar::new(),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Bounds the area to `limit` ops (inserts + deletes), or removes
    /// the bound with `None`. While more than `limit` ops are queued,
    /// new admissions wait or fail per their [`Admission`] mode. Raising
    /// the limit wakes blocked producers.
    pub fn set_capacity(&self, limit: Option<u64>) {
        self.capacity.store(limit.unwrap_or(0), Ordering::Relaxed);
        // Take the gate lock so no reserver can observe the old limit
        // between its capacity check and its wait.
        drop(self.lock_gate());
        self.freed.notify_all();
    }

    /// The configured capacity limit in ops, if any.
    pub fn capacity(&self) -> Option<u64> {
        match self.capacity.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Ops (inserts + deletes) currently occupying the capacity gate:
    /// admitted (or reserved by a mid-flight stage) and not yet drained.
    pub fn occupancy(&self) -> u64 {
        self.lock_gate().occupancy
    }

    /// Closes the area to new admissions: every subsequent (and every
    /// blocked) [`reserve`](Self::reserve) fails with
    /// [`Error::StagingClosed`]. Draining, committing, and releasing
    /// claims still work — a shutdown drains the backlog after closing
    /// the door. Reopen with [`reopen_admissions`](Self::reopen_admissions).
    pub fn close_admissions(&self) {
        self.lock_gate().closed = true;
        self.freed.notify_all();
    }

    /// Reopens the area after [`close_admissions`](Self::close_admissions).
    pub fn reopen_admissions(&self) {
        self.lock_gate().closed = false;
        self.freed.notify_all();
    }

    /// Reserves `ops` worth of capacity, waiting per `admission` when
    /// the area is full. Every admission path (including the decomposed
    /// durable path) reserves before claiming; a reservation is paid
    /// back by a drain, or by [`release_capacity`](Self::release_capacity)
    /// if the stage fails after reserving.
    ///
    /// A batch larger than the whole capacity can never fit and is
    /// rejected immediately with [`Error::WouldBlock`] in every mode.
    pub fn reserve(&self, ops: u64, admission: Admission) -> Result<()> {
        let mut gate = self.lock_gate();
        loop {
            if gate.closed {
                return Err(Error::StagingClosed);
            }
            let limit = self.capacity.load(Ordering::Relaxed);
            if limit == 0 || gate.occupancy.saturating_add(ops) <= limit {
                gate.occupancy += ops;
                return Ok(());
            }
            if ops > limit {
                // Would never fit: waiting is a guaranteed hang.
                return Err(Error::WouldBlock {
                    pending: gate.occupancy,
                    capacity: limit,
                });
            }
            match admission {
                Admission::Try => {
                    return Err(Error::WouldBlock {
                        pending: gate.occupancy,
                        capacity: limit,
                    });
                }
                Admission::Block => {
                    gate = self
                        .freed
                        .wait(gate)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Admission::Deadline(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(Error::StageTimeout {
                            pending: gate.occupancy,
                            capacity: limit,
                        });
                    }
                    let (g, _) = self
                        .freed
                        .wait_timeout(gate, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    gate = g;
                }
            }
        }
    }

    /// Returns `ops` worth of reserved capacity (a stage failed after
    /// reserving, or a drain paid back what it removed) and wakes
    /// blocked producers.
    pub fn release_capacity(&self, ops: u64) {
        if ops == 0 {
            return;
        }
        let mut gate = self.lock_gate();
        gate.occupancy = gate.occupancy.saturating_sub(ops);
        drop(gate);
        self.freed.notify_all();
    }

    /// Accounts `ops` against the gate without checking the limit or the
    /// closed flag — recovery re-admits a checkpoint/WAL backlog that
    /// must be accepted regardless of any capacity configured later.
    pub fn reserve_restored(&self, ops: u64) {
        self.lock_gate().occupancy += ops;
    }

    /// Queues a batch, validating deletes at arrival: every deleted tid
    /// must be live and not already claimed by an earlier pending (or
    /// in-flight) delete, including earlier in the same batch. On
    /// [`Error::UnknownTransaction`] nothing is queued.
    ///
    /// Takes `&self`: any number of producer threads may stage
    /// concurrently, with each other and with scans of the live set.
    /// Returns the batch's global arrival ticket.
    ///
    /// When a capacity limit is set and the area is full, **blocks**
    /// until a drain frees space — use [`try_stage`](Self::try_stage) or
    /// [`stage_deadline`](Self::stage_deadline) for bounded waiting.
    pub fn stage(&self, batch: UpdateBatch) -> Result<u64> {
        self.stage_with(batch, Admission::Block)
    }

    /// Non-blocking [`stage`](Self::stage): fails with
    /// [`Error::WouldBlock`] instead of waiting for capacity.
    pub fn try_stage(&self, batch: UpdateBatch) -> Result<u64> {
        self.stage_with(batch, Admission::Try)
    }

    /// [`stage`](Self::stage) that waits for capacity only until
    /// `deadline`, then fails with [`Error::StageTimeout`].
    pub fn stage_deadline(&self, batch: UpdateBatch, deadline: Instant) -> Result<u64> {
        self.stage_with(batch, Admission::Deadline(deadline))
    }

    /// [`stage`](Self::stage) with an explicit [`Admission`] mode.
    pub fn stage_with(&self, batch: UpdateBatch, admission: Admission) -> Result<u64> {
        let ops = batch.num_ops();
        self.reserve(ops, admission)?;
        if let Err(e) = self.claim(&batch.deletes) {
            self.release_capacity(ops);
            return Err(e);
        }
        let ticket = self.take_ticket();
        self.admit_with_ticket(ticket, batch);
        Ok(ticket)
    }

    /// Validates and claims a set of delete tids: every tid must be live
    /// and not already claimed by an earlier pending (or in-flight)
    /// delete, including earlier in the slice. On error nothing is
    /// claimed. A successful claim must be followed by
    /// [`admit_with_ticket`](Self::admit_with_ticket) or undone with
    /// [`release_deletes`](Self::release_deletes) — the durable write
    /// path claims first, appends the WAL record, and only then admits.
    pub fn claim(&self, deletes: &[Tid]) -> Result<()> {
        if deletes.is_empty() {
            return Ok(());
        }
        // Claim lock first, live view second — the same order the
        // store uses when it applies a round.
        let mut claims = self.lock_claims();
        {
            let live = self.read_live();
            let mut seen = HashSet::new();
            for &tid in deletes {
                if !live.contains(tid) || claims.contains(&tid) || !seen.insert(tid) {
                    return Err(Error::UnknownTransaction(tid));
                }
            }
        }
        claims.extend(deletes.iter().copied());
        Ok(())
    }

    /// Draws the next global arrival ticket.
    pub fn take_ticket(&self) -> u64 {
        self.ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Raises the ticket counter to at least `next` (no-op if it is
    /// already higher). Recovery re-admits logged batches under their
    /// original tickets and then bumps the counter past the highest
    /// ticket the log ever assigned, so fresh batches can never collide.
    pub fn bump_ticket(&self, next: u64) {
        self.ticket.fetch_max(next, Ordering::Relaxed);
    }

    /// Queues an already-claimed, already-ticketed batch. With
    /// [`claim`](Self::claim) + [`take_ticket`](Self::take_ticket) this is
    /// the decomposed [`stage`](Self::stage), letting the durable write
    /// path interpose a WAL append between validation and visibility.
    pub fn admit_with_ticket(&self, ticket: u64, batch: UpdateBatch) {
        // Counters go up *before* the batch is visible in a shard: a
        // concurrent drain then subtracts at most what it actually
        // merged, so the counters never underflow (they may transiently
        // overcount a batch still being pushed, which at worst wakes the
        // committer for an empty no-op round).
        self.pending_inserts
            .fetch_add(batch.inserts.len() as u64, Ordering::Relaxed);
        self.pending_deletes
            .fetch_add(batch.deletes.len() as u64, Ordering::Relaxed);
        let shard = &self.shards[(ticket % self.shards.len() as u64) as usize];
        Self::lock_shard(shard).push((ticket, batch));
    }

    /// `(inserts, deletes)` currently queued. Snapshots of two relaxed
    /// counters — exact whenever no producer is mid-`stage` (a batch
    /// being staged may already be counted before it is drainable).
    pub fn pending_ops(&self) -> (u64, u64) {
        (
            self.pending_inserts.load(Ordering::Relaxed),
            self.pending_deletes.load(Ordering::Relaxed),
        )
    }

    /// `true` if at least one insert or delete is queued.
    pub fn has_pending(&self) -> bool {
        let (i, d) = self.pending_ops();
        i + d > 0
    }

    /// Assembles (a copy of) everything queued, in global arrival order,
    /// without draining. Batches staged concurrently with the call may or
    /// may not be included.
    pub fn snapshot(&self) -> UpdateBatch {
        Self::merge_entries(self.entries_snapshot())
    }

    /// Drains the queue, returning the accumulated batches concatenated
    /// in global arrival (ticket) order. Claims for the drained deletes
    /// are **kept** until [`release_deletes`](Self::release_deletes) —
    /// the round carrying them is now in flight.
    pub fn drain(&self) -> UpdateBatch {
        Self::merge_entries(self.drain_entries())
    }

    /// Drains the queue keeping per-batch boundaries: `(ticket, batch)`
    /// pairs in global arrival order. The durable commit path uses this
    /// to record exactly which tickets a round consumed. Claims for the
    /// drained deletes are kept, as with [`drain`](Self::drain).
    pub fn drain_entries(&self) -> Vec<(u64, UpdateBatch)> {
        let entries = self.collect_entries(std::mem::take);
        self.account_drained(&entries);
        entries
    }

    /// Drains at most `max_ops` ops (inserts + deletes) of the queue,
    /// keeping per-batch boundaries: the longest prefix of the global
    /// arrival (ticket) order whose op total stays within the bound.
    /// Batches are never split, so one invariant holds instead of a
    /// strict cap: **a returned round exceeds `max_ops` only when its
    /// first batch alone does** (an oversized batch travels alone).
    /// `None` drains everything, exactly like
    /// [`drain_entries`](Self::drain_entries). Claims for the drained
    /// deletes are kept, as with [`drain`](Self::drain); claims for
    /// batches left behind stay claimed for the round that will
    /// eventually carry them.
    pub fn drain_entries_up_to(&self, max_ops: Option<u64>) -> Vec<(u64, UpdateBatch)> {
        let Some(cap) = max_ops else {
            return self.drain_entries();
        };
        // Lock every shard at once for a consistent cut (producers only
        // ever hold one shard lock, so ordering cannot deadlock).
        // Within a shard tickets ascend, so the global ticket-order
        // prefix is a per-shard prefix: k-way merge the shard fronts
        // until the cap is reached, then drain each shard's prefix.
        let mut guards: Vec<_> = self.shards.iter().map(Self::lock_shard).collect();
        let mut take = vec![0usize; guards.len()];
        let mut ops = 0u64;
        loop {
            let mut best: Option<usize> = None;
            for (i, guard) in guards.iter().enumerate() {
                if take[i] < guard.len() {
                    let ticket = guard[take[i]].0;
                    if best.is_none_or(|b: usize| ticket < guards[b][take[b]].0) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let batch_ops = guards[i][take[i]].1.num_ops();
            if ops > 0 && ops.saturating_add(batch_ops) > cap {
                break;
            }
            take[i] += 1;
            ops = ops.saturating_add(batch_ops);
            if ops >= cap {
                break;
            }
        }
        let mut entries: Vec<(u64, UpdateBatch)> = Vec::new();
        for (guard, &n) in guards.iter_mut().zip(&take) {
            entries.extend(guard.drain(..n));
        }
        drop(guards);
        entries.sort_unstable_by_key(|&(ticket, _)| ticket);
        self.account_drained(&entries);
        entries
    }

    /// Pays drained entries back to the pending counters and the
    /// capacity gate.
    fn account_drained(&self, entries: &[(u64, UpdateBatch)]) {
        let (mut inserts, mut deletes) = (0u64, 0u64);
        for (_, batch) in entries {
            inserts += batch.inserts.len() as u64;
            deletes += batch.deletes.len() as u64;
        }
        self.pending_inserts.fetch_sub(inserts, Ordering::Relaxed);
        self.pending_deletes.fetch_sub(deletes, Ordering::Relaxed);
        self.release_capacity(inserts + deletes);
    }

    /// A copy of the queued `(ticket, batch)` entries in global arrival
    /// order, without draining — the durable checkpoint embeds this
    /// backlog so a fresh WAL segment can start empty.
    pub fn entries_snapshot(&self) -> Vec<(u64, UpdateBatch)> {
        self.collect_entries(|shard| shard.clone())
    }

    /// Concatenates ticket-ordered entries into one batch.
    pub fn merge_entries(entries: Vec<(u64, UpdateBatch)>) -> UpdateBatch {
        let mut merged = UpdateBatch::default();
        for (_, batch) in entries {
            merged.inserts.extend(batch.inserts);
            merged.deletes.extend(batch.deletes);
        }
        merged
    }

    /// Drops everything queued, returning the discarded batch. The
    /// discarded deletes' claims are released — their tids may be staged
    /// for deletion again.
    pub fn discard(&self) -> UpdateBatch {
        let dropped = self.drain();
        self.release_deletes(dropped.deletes.iter().copied());
        dropped
    }

    /// Collects every shard through `take` (clone or drain) and returns
    /// the entries sorted by ticket — global arrival order.
    fn collect_entries(
        &self,
        mut take: impl FnMut(&mut Shard) -> Shard,
    ) -> Vec<(u64, UpdateBatch)> {
        let mut entries: Vec<(u64, UpdateBatch)> = Vec::new();
        for shard in &self.shards {
            let mut guard = Self::lock_shard(shard);
            entries.append(&mut take(&mut guard));
        }
        entries.sort_unstable_by_key(|&(ticket, _)| ticket);
        entries
    }

    /// Releases delete claims (round committed, aborted, or discarded).
    pub fn release_deletes(&self, tids: impl IntoIterator<Item = Tid>) {
        let mut claims = self.lock_claims();
        for tid in tids {
            claims.remove(&tid);
        }
    }

    /// A copy of the current live-tid view (watermark + tombstones) — the
    /// compact live-set the durable checkpoint format serialises.
    pub fn live_view(&self) -> LiveTidView {
        self.read_live().clone()
    }

    /// Replaces the live view wholesale — used when a store is restored
    /// from a checkpoint.
    pub(crate) fn live_reset(&self, view: LiveTidView) {
        *self.write_live() = view;
    }

    /// Adds tids to the live view (the store appended transactions).
    ///
    /// Public for row routers that keep the authoritative live view on
    /// their own staging area — [`SegmentedDb`](crate::SegmentedDb) and
    /// [`ShardedDb`](crate::ShardedDb) in this crate, and the cluster
    /// coordinator (`fup_core::cluster`), whose rows live in worker
    /// processes, one crate up.
    pub fn live_insert(&self, tids: impl IntoIterator<Item = Tid>) {
        let mut live = self.write_live();
        for tid in tids {
            live.insert(tid);
        }
    }

    /// Removes tids from the live view (the store staged deletions).
    /// Public for the same routers as
    /// [`live_insert`](StagingArea::live_insert).
    pub fn live_remove(&self, tids: impl IntoIterator<Item = Tid>) {
        let mut live = self.write_live();
        for tid in tids {
            live.remove(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn area_with_live(tids: &[u64]) -> StagingArea {
        let area = StagingArea::with_shards(4);
        area.live_insert(tids.iter().map(|&t| Tid(t)));
        area
    }

    #[test]
    fn tickets_preserve_arrival_order_across_shards() {
        let area = StagingArea::with_shards(3);
        for i in 0..10u32 {
            area.stage(UpdateBatch::insert_only(vec![tx(&[i])]))
                .unwrap();
        }
        let merged = area.drain();
        let got: Vec<u32> = merged.inserts.iter().map(|t| t.items()[0].raw()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(!area.has_pending());
    }

    #[test]
    fn delete_validation_against_live_view_and_claims() {
        let area = area_with_live(&[1, 2, 3]);
        // Unknown tid: rejected, nothing queued.
        let err = area
            .stage(UpdateBatch::delete_only(vec![Tid(99)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(99)));
        assert!(!area.has_pending());
        // First claim fine; second claim of the same tid rejected.
        area.stage(UpdateBatch::delete_only(vec![Tid(1)])).unwrap();
        let err = area
            .stage(UpdateBatch::delete_only(vec![Tid(1)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(1)));
        // Duplicate within one batch rejected.
        let err = area
            .stage(UpdateBatch::delete_only(vec![Tid(2), Tid(2)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(2)));
        assert_eq!(area.pending_ops(), (0, 1));
    }

    #[test]
    fn claims_survive_drain_until_released() {
        let area = area_with_live(&[1, 2]);
        area.stage(UpdateBatch::delete_only(vec![Tid(1)])).unwrap();
        let drained = area.drain();
        assert_eq!(drained.deletes, vec![Tid(1)]);
        // Still claimed while the round is in flight.
        let err = area
            .stage(UpdateBatch::delete_only(vec![Tid(1)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(1)));
        // Released (e.g. the round aborted): claimable again.
        area.release_deletes(drained.deletes.iter().copied());
        area.stage(UpdateBatch::delete_only(vec![Tid(1)])).unwrap();
    }

    #[test]
    fn discard_releases_claims() {
        let area = area_with_live(&[7]);
        area.stage(UpdateBatch {
            inserts: vec![tx(&[1])],
            deletes: vec![Tid(7)],
        })
        .unwrap();
        let dropped = area.discard();
        assert_eq!(dropped.inserts.len(), 1);
        assert_eq!(dropped.deletes, vec![Tid(7)]);
        assert!(!area.has_pending());
        area.stage(UpdateBatch::delete_only(vec![Tid(7)])).unwrap();
    }

    #[test]
    fn live_view_is_watermark_plus_tombstones() {
        let area = StagingArea::with_shards(2);
        area.live_insert((0..5).map(Tid));
        area.live_remove([Tid(1), Tid(3)]);
        let view = area.live_view();
        assert_eq!(view.watermark(), 5);
        assert_eq!(view.len(), 3);
        assert!(view.contains(Tid(0)));
        assert!(!view.contains(Tid(1)));
        assert!(!view.contains(Tid(7))); // beyond the watermark
        assert_eq!(view.tombstones_sorted(), vec![Tid(1), Tid(3)]);
        assert_eq!(view.live_sorted(), vec![Tid(0), Tid(2), Tid(4)]);
        // An aborted deletion resurrects the tombstoned tid.
        area.live_insert([Tid(3)]);
        assert!(area.live_view().contains(Tid(3)));
        // Reconstructing from parts round-trips.
        let view = area.live_view();
        let rebuilt = LiveTidView::from_parts(view.watermark(), view.tombstones_sorted());
        assert_eq!(rebuilt, view);
    }

    #[test]
    fn drain_entries_keeps_ticket_boundaries() {
        let area = StagingArea::with_shards(3);
        for i in 0..5u32 {
            area.stage(UpdateBatch::insert_only(vec![tx(&[i])]))
                .unwrap();
        }
        let copy = area.entries_snapshot();
        assert_eq!(copy.len(), 5);
        assert!(area.has_pending(), "snapshot must not drain");
        let entries = area.drain_entries();
        assert_eq!(entries.len(), 5);
        for (i, (ticket, batch)) in entries.iter().enumerate() {
            assert_eq!(*ticket, i as u64);
            assert_eq!(batch.inserts[0].items()[0].raw(), i as u32);
        }
        assert!(!area.has_pending());
        assert_eq!(StagingArea::merge_entries(entries).inserts.len(), 5);
    }

    #[test]
    fn claim_then_admit_matches_stage() {
        let area = area_with_live(&[0, 1]);
        // The decomposed path: claim, ticket, admit.
        area.claim(&[Tid(0)]).unwrap();
        // Claim alone already excludes others...
        assert!(area.stage(UpdateBatch::delete_only(vec![Tid(0)])).is_err());
        // ...and releasing before admit frees the tid (a failed WAL
        // append takes this path).
        area.release_deletes([Tid(0)]);
        area.claim(&[Tid(0)]).unwrap();
        let ticket = area.take_ticket();
        area.admit_with_ticket(ticket, UpdateBatch::delete_only(vec![Tid(0)]));
        assert_eq!(area.pending_ops(), (0, 1));
        let entries = area.drain_entries();
        assert_eq!(
            entries,
            vec![(ticket, UpdateBatch::delete_only(vec![Tid(0)]))]
        );
    }

    #[test]
    fn concurrent_staging_loses_nothing() {
        let area = StagingArea::default();
        let per_thread = 200u32;
        std::thread::scope(|scope| {
            for worker in 0..8u32 {
                let area = &area;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        area.stage(UpdateBatch::insert_only(vec![tx(&[
                            worker * per_thread + i
                        ])]))
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(area.pending_ops(), (8 * per_thread as u64, 0));
        let merged = area.drain();
        let mut got: Vec<u32> = merged.inserts.iter().map(|t| t.items()[0].raw()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8 * per_thread).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rejects_try_stage_when_full() {
        let area = StagingArea::with_shards(2);
        area.set_capacity(Some(3));
        assert_eq!(area.capacity(), Some(3));
        area.try_stage(UpdateBatch::insert_only(vec![tx(&[1]), tx(&[2])]))
            .unwrap();
        assert_eq!(area.occupancy(), 2);
        // 2 + 2 > 3: rejected with the typed error, nothing queued.
        let err = area
            .try_stage(UpdateBatch::insert_only(vec![tx(&[3]), tx(&[4])]))
            .unwrap_err();
        assert_eq!(
            err,
            Error::WouldBlock {
                pending: 2,
                capacity: 3
            }
        );
        assert_eq!(area.pending_ops(), (2, 0));
        // A single op still fits.
        area.try_stage(UpdateBatch::insert_only(vec![tx(&[3])]))
            .unwrap();
        // Draining pays the capacity back.
        area.drain();
        assert_eq!(area.occupancy(), 0);
        area.try_stage(UpdateBatch::insert_only(vec![tx(&[5]), tx(&[6])]))
            .unwrap();
    }

    #[test]
    fn oversized_batch_is_rejected_in_every_mode() {
        let area = StagingArea::with_shards(1);
        area.set_capacity(Some(2));
        let big = || UpdateBatch::insert_only(vec![tx(&[1]), tx(&[2]), tx(&[3])]);
        for admission in [
            Admission::Try,
            Admission::Block,
            Admission::Deadline(Instant::now() + std::time::Duration::from_secs(60)),
        ] {
            let err = area.stage_with(big(), admission).unwrap_err();
            assert!(matches!(err, Error::WouldBlock { capacity: 2, .. }));
        }
    }

    #[test]
    fn stage_deadline_times_out_with_typed_error() {
        let area = StagingArea::with_shards(1);
        area.set_capacity(Some(1));
        area.stage(UpdateBatch::insert_only(vec![tx(&[1])]))
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_millis(20);
        let err = area
            .stage_deadline(UpdateBatch::insert_only(vec![tx(&[2])]), deadline)
            .unwrap_err();
        assert_eq!(
            err,
            Error::StageTimeout {
                pending: 1,
                capacity: 1
            }
        );
        assert_eq!(area.pending_ops(), (1, 0));
    }

    #[test]
    fn blocked_stage_wakes_when_a_drain_frees_capacity() {
        let area = StagingArea::with_shards(2);
        area.set_capacity(Some(2));
        area.stage(UpdateBatch::insert_only(vec![tx(&[1]), tx(&[2])]))
            .unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| area.stage(UpdateBatch::insert_only(vec![tx(&[3])])));
            // Let the producer park, then free capacity.
            std::thread::sleep(std::time::Duration::from_millis(20));
            let drained = area.drain();
            assert_eq!(drained.inserts.len(), 2);
            handle.join().unwrap().unwrap();
        });
        assert_eq!(area.pending_ops(), (1, 0));
        assert_eq!(area.occupancy(), 1);
    }

    #[test]
    fn close_admissions_fails_blocked_and_new_stages() {
        let area = StagingArea::with_shards(2);
        area.set_capacity(Some(1));
        area.stage(UpdateBatch::insert_only(vec![tx(&[1])]))
            .unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| area.stage(UpdateBatch::insert_only(vec![tx(&[2])])));
            std::thread::sleep(std::time::Duration::from_millis(20));
            area.close_admissions();
            assert_eq!(handle.join().unwrap().unwrap_err(), Error::StagingClosed);
        });
        // New admissions fail too, in every mode; the backlog drains fine.
        let err = area
            .try_stage(UpdateBatch::insert_only(vec![tx(&[3])]))
            .unwrap_err();
        assert_eq!(err, Error::StagingClosed);
        assert_eq!(area.drain().inserts.len(), 1);
        // Reopening restores service.
        area.reopen_admissions();
        area.stage(UpdateBatch::insert_only(vec![tx(&[4])]))
            .unwrap();
    }

    #[test]
    fn failed_claim_after_reserve_returns_the_capacity() {
        let area = area_with_live(&[1]);
        area.set_capacity(Some(4));
        let err = area
            .try_stage(UpdateBatch::delete_only(vec![Tid(99)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(99)));
        assert_eq!(area.occupancy(), 0, "failed stage must not leak capacity");
    }

    #[test]
    fn bounded_drain_takes_an_arrival_order_prefix() {
        let area = StagingArea::with_shards(3);
        for i in 0..6u32 {
            // Batches of 2 ops each: tickets 0..6, ops 12 total.
            area.stage(UpdateBatch::insert_only(vec![tx(&[i]), tx(&[i + 100])]))
                .unwrap();
        }
        // Cap 5 ops → whole batches only → tickets {0, 1} (4 ops).
        let round = area.drain_entries_up_to(Some(5));
        assert_eq!(
            round.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(area.pending_ops(), (8, 0));
        // Cap 4 takes the next two, exactly.
        let round = area.drain_entries_up_to(Some(4));
        assert_eq!(
            round.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![2, 3]
        );
        // No cap drains the rest.
        let round = area.drain_entries_up_to(None);
        assert_eq!(
            round.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert!(!area.has_pending());
        assert_eq!(area.occupancy(), 0);
    }

    #[test]
    fn bounded_drain_lets_an_oversized_first_batch_travel_alone() {
        let area = StagingArea::with_shards(2);
        area.stage(UpdateBatch::insert_only(vec![tx(&[1]), tx(&[2]), tx(&[3])]))
            .unwrap();
        area.stage(UpdateBatch::insert_only(vec![tx(&[4])]))
            .unwrap();
        // Cap 2 < first batch's 3 ops: the oversized batch still moves,
        // alone, so the backlog can never wedge.
        let round = area.drain_entries_up_to(Some(2));
        assert_eq!(round.len(), 1);
        assert_eq!(round[0].1.inserts.len(), 3);
        assert_eq!(area.pending_ops(), (1, 0));
    }

    #[test]
    fn bounded_drain_keeps_claims_for_batches_left_behind() {
        let area = area_with_live(&[1, 2]);
        area.stage(UpdateBatch::delete_only(vec![Tid(1)])).unwrap();
        area.stage(UpdateBatch::delete_only(vec![Tid(2)])).unwrap();
        let round = area.drain_entries_up_to(Some(1));
        assert_eq!(round.len(), 1);
        // Both tids stay claimed: one by the in-flight round, one by the
        // batch still queued.
        for tid in [Tid(1), Tid(2)] {
            let err = area.stage(UpdateBatch::delete_only(vec![tid])).unwrap_err();
            assert_eq!(err, Error::UnknownTransaction(tid));
        }
    }

    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let area = area_with_live(&[1, 2, 3]);
        area.set_capacity(Some(10));
        // Panic while holding each internal guard: the unwinding marks
        // every one of them poisoned.
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _gate = area.gate.lock().unwrap();
                let _claims = area.claims.lock().unwrap();
                let _live = area.live.write().unwrap();
                let _shard = area.shards[0].lock().unwrap();
                panic!("producer bug while holding staging locks");
            });
            assert!(handle.join().is_err(), "the poisoning panic must fire");
        });
        // Every path recovers the guards: admission, validation,
        // ticketing, draining, and the live view all still work.
        area.stage(UpdateBatch::insert_only(vec![tx(&[9])]))
            .unwrap();
        area.stage(UpdateBatch::delete_only(vec![Tid(1)])).unwrap();
        assert_eq!(area.occupancy(), 2);
        assert_eq!(area.pending_ops(), (1, 1));
        let err = area
            .stage(UpdateBatch::delete_only(vec![Tid(1)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(1)));
        let drained = area.drain();
        assert_eq!(drained.inserts.len(), 1);
        assert_eq!(drained.deletes, vec![Tid(1)]);
        area.release_deletes(drained.deletes.iter().copied());
        assert!(area.live_view().contains(Tid(2)));
        area.close_admissions();
        area.reopen_admissions();
        area.stage(UpdateBatch::insert_only(vec![tx(&[10])]))
            .unwrap();
    }

    #[test]
    fn concurrent_delete_claims_are_exclusive() {
        // 8 threads race to claim the same 16 tids; each tid must be
        // granted exactly once.
        let area = area_with_live(&(0..16).collect::<Vec<_>>());
        let wins: Vec<AtomicU64> = (0..16).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (area, wins) = (&area, &wins);
                scope.spawn(move || {
                    for tid in 0..16u64 {
                        if area.stage(UpdateBatch::delete_only(vec![Tid(tid)])).is_ok() {
                            wins[tid as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (tid, w) in wins.iter().enumerate() {
            assert_eq!(w.load(Ordering::Relaxed), 1, "tid {tid} claimed twice");
        }
        assert_eq!(area.pending_ops(), (0, 16));
    }
}

//! Segmented store modelling the paper's update semantics.
//!
//! The FUP problem statement is: a database `DB` of `D` transactions
//! receives an increment `db` of `d` new transactions; find the large
//! itemsets of `DB ∪ db`. The FUP2 extension (§5) additionally allows a set
//! `db⁻ ⊆ DB` of deleted transactions. [`SegmentedDb`] models both with a
//! two-phase protocol:
//!
//! 1. [`SegmentedDb::stage`] removes the deleted transactions and hands back
//!    a [`StagedUpdate`] holding the materialised `db⁺` (insertions) and
//!    `db⁻` (deletions). While an update is staged, scanning the store
//!    itself yields exactly `DB⁻ = DB \ db⁻` — the portion FUP/FUP2 must
//!    check pruned candidates against.
//! 2. [`SegmentedDb::commit`] appends the insertions (making the store
//!    `(DB \ db⁻) ∪ db⁺`), or [`SegmentedDb::abort`] restores the deleted
//!    transactions.
//!
//! On top of the two-phase protocol sits a **staging area**
//! ([`SegmentedDb::enqueue`] / [`pending`](SegmentedDb::pending) /
//! [`take_pending`](SegmentedDb::take_pending) /
//! [`discard_pending`](SegmentedDb::discard_pending)): update batches can
//! accumulate — validated eagerly, so a bad tid fails at arrival time —
//! without touching the live set at all. Scans are completely unaffected
//! by pending batches, which is what lets a maintenance session keep
//! serving reads while updates stream in; application happens later, in
//! one `stage`+`commit` round over the accumulated batch.
//!
//! The staging area is a sharded, `Arc`-shared
//! [`StagingArea`]: [`SegmentedDb::enqueue`]
//! takes `&self`, and [`SegmentedDb::staging`] hands out clones of the
//! handle so **many producer threads can stage batches concurrently**
//! with each other and with scans — the substrate under
//! `fup_core::service`'s concurrent ingestion. Batches drain back out in
//! global arrival order regardless of how producers interleaved.

use crate::database::TransactionDb;
use crate::error::{Error, Result};
use crate::item::ItemId;
use crate::scan::ScanMetrics;
use crate::source::TransactionSource;
use crate::staging::{LiveTidView, StagingArea};
use crate::transaction::Transaction;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A stable identifier for a stored transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

/// A stable identifier for an applied update batch (one `stage`+`commit`
/// round). Mostly useful for audit trails in the maintenance layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg:{}", self.0)
    }
}

/// A batch of changes: transactions to insert (`db⁺`) and transaction ids to
/// delete (`db⁻`). The paper's base FUP algorithm is the pure-insertion case
/// (`deletes` empty).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct UpdateBatch {
    /// New transactions to append.
    pub inserts: Vec<Transaction>,
    /// Ids of existing transactions to remove.
    pub deletes: Vec<Tid>,
}

impl UpdateBatch {
    /// A pure-insertion batch — the setting of the base FUP algorithm.
    pub fn insert_only<I: IntoIterator<Item = Transaction>>(inserts: I) -> Self {
        UpdateBatch {
            inserts: inserts.into_iter().collect(),
            deletes: Vec::new(),
        }
    }

    /// A pure-deletion batch.
    pub fn delete_only<I: IntoIterator<Item = Tid>>(deletes: I) -> Self {
        UpdateBatch {
            inserts: Vec::new(),
            deletes: deletes.into_iter().collect(),
        }
    }

    /// `true` if the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total operations the batch carries (inserts + deletes) — the unit
    /// the staging capacity gate and bounded commit rounds account in.
    pub fn num_ops(&self) -> u64 {
        self.inserts.len() as u64 + self.deletes.len() as u64
    }
}

/// A staged (uncommitted) update: the materialised `db⁺` and `db⁻` sides.
///
/// Produced by [`SegmentedDb::stage`]; consumed by [`SegmentedDb::commit`]
/// or [`SegmentedDb::abort`].
#[derive(Debug)]
pub struct StagedUpdate {
    inserted: TransactionDb,
    deleted: TransactionDb,
    deleted_with_tids: Vec<(Tid, Transaction)>,
}

impl StagedUpdate {
    /// The insertion side `db⁺` as a scannable source.
    pub fn inserted(&self) -> &TransactionDb {
        &self.inserted
    }

    /// The deletion side `db⁻` as a scannable source.
    pub fn deleted(&self) -> &TransactionDb {
        &self.deleted
    }

    /// `d⁺`: number of inserted transactions.
    pub fn num_inserted(&self) -> u64 {
        self.inserted.len() as u64
    }

    /// `d⁻`: number of deleted transactions.
    pub fn num_deleted(&self) -> u64 {
        self.deleted.len() as u64
    }
}

/// Transaction store with staged insert/delete updates.
///
/// Scanning the store (via [`TransactionSource`]) always delivers the
/// current *live* transactions: `DB` before staging, `DB \ db⁻` while an
/// update is staged, `(DB \ db⁻) ∪ db⁺` after commit.
#[derive(Debug)]
pub struct SegmentedDb {
    live: Vec<(Tid, Transaction)>,
    /// Index from tid to position in `live`; kept in sync on every mutation.
    by_tid: HashMap<Tid, usize>,
    next_tid: u64,
    next_segment: u32,
    metrics: ScanMetrics,
    /// Accumulated-but-unapplied batches (see [`SegmentedDb::enqueue`]),
    /// shared so producer threads can stage through [`Self::staging`]
    /// handles while this store is borrowed elsewhere.
    staging: Arc<StagingArea>,
    /// `true` while the live vector is still in ascending tid order —
    /// i.e. scan order equals tid order. Deletions `swap_remove` and
    /// aborts re-append, both of which break the invariant; checkpoints
    /// use it to decide whether a positional `VerticalIndex`
    /// (`fup_mining`) can be serialised alongside the tid-ordered
    /// durable image.
    tid_ordered: bool,
}

impl Default for SegmentedDb {
    fn default() -> Self {
        SegmentedDb {
            live: Vec::new(),
            by_tid: HashMap::new(),
            next_tid: 0,
            next_segment: 0,
            metrics: ScanMetrics::new(),
            staging: Arc::default(),
            tid_ordered: true,
        }
    }
}

impl SegmentedDb {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restores a store from a durable checkpoint image: `live` pairs in
    /// ascending tid order, the tid `watermark` (next tid to allocate),
    /// the tombstoned tids below it, and the next segment id. The staging
    /// area starts empty with its live view set to match.
    pub fn from_recovered(
        live: Vec<(Tid, Transaction)>,
        watermark: u64,
        tombstones: Vec<Tid>,
        next_segment: u32,
    ) -> Self {
        let by_tid = live
            .iter()
            .enumerate()
            .map(|(i, &(tid, _))| (tid, i))
            .collect();
        let db = SegmentedDb {
            live,
            by_tid,
            next_tid: watermark,
            next_segment,
            metrics: ScanMetrics::new(),
            staging: Arc::default(),
            tid_ordered: true,
        };
        db.staging
            .live_reset(LiveTidView::from_parts(watermark, tombstones));
        db
    }

    /// Builds a store from initial transactions, assigning fresh tids.
    pub fn from_transactions<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        let mut db = SegmentedDb::new();
        db.append_all(iter);
        db
    }

    /// Appends transactions directly (no staging), returning their tids.
    pub fn append_all<I: IntoIterator<Item = Transaction>>(&mut self, iter: I) -> Vec<Tid> {
        let mut tids = Vec::new();
        for t in iter {
            let tid = Tid(self.next_tid);
            self.next_tid += 1;
            self.by_tid.insert(tid, self.live.len());
            self.live.push((tid, t));
            tids.push(tid);
        }
        self.staging.live_insert(tids.iter().copied());
        tids
    }

    /// Appends transactions under **caller-assigned** tids — the primitive
    /// a tid-range shard router uses to keep one global tid sequence
    /// across many partitions. The caller guarantees the tids are fresh
    /// (never live in this store). The store's own allocator is advanced
    /// past the highest appended tid, and the tid-order flag is cleared
    /// only if an appended tid sorts below an existing live row.
    ///
    /// The internal staging live view is **not** updated: a sharded
    /// router maintains the single authoritative view on its own staging
    /// area (a per-shard view over a strided tid subset would misread
    /// the gaps as tombstones). Public because the process-per-shard
    /// cluster worker (`fup_core::cluster`) is exactly such a router,
    /// one crate up.
    pub fn append_pairs(&mut self, pairs: Vec<(Tid, Transaction)>) {
        for (tid, t) in pairs {
            debug_assert!(!self.by_tid.contains_key(&tid), "tid reused: {tid:?}");
            if self.live.last().is_some_and(|&(last, _)| last > tid) {
                self.tid_ordered = false;
            }
            self.by_tid.insert(tid, self.live.len());
            self.live.push((tid, t));
            self.next_tid = self.next_tid.max(tid.0 + 1);
        }
    }

    /// Removes one live transaction by tid, returning it — the deletion
    /// primitive of the shard router. Mirrors the `swap_remove` of
    /// [`stage`](Self::stage) (including the tid-order bookkeeping) but
    /// leaves the internal staging live view alone, as with
    /// [`append_pairs`](Self::append_pairs). Public for the same reason.
    pub fn remove_tid(&mut self, tid: Tid) -> Option<Transaction> {
        let idx = self.by_tid.remove(&tid)?;
        let (_, t) = self.live.swap_remove(idx);
        if idx < self.live.len() {
            let moved_tid = self.live[idx].0;
            self.by_tid.insert(moved_tid, idx);
            self.tid_ordered = false;
        }
        Some(t)
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` if no transaction is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Looks up a live transaction by id.
    pub fn get(&self, tid: Tid) -> Option<&Transaction> {
        self.by_tid.get(&tid).map(|&i| &self.live[i].1)
    }

    /// `true` if `tid` is live.
    pub fn contains(&self, tid: Tid) -> bool {
        self.by_tid.contains_key(&tid)
    }

    /// Iterates `(tid, transaction)` pairs without charging scan metrics.
    /// For tests and administrative tasks; miners must use `for_each`.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &Transaction)> + '_ {
        self.live.iter().map(|(tid, t)| (*tid, t))
    }

    /// Queues a batch into the staging area **without touching the live
    /// set**: scans keep seeing exactly the current transactions, and the
    /// batch waits until [`take_pending`](Self::take_pending) hands the
    /// accumulated work to a `stage`+`commit` round.
    ///
    /// Deletes are validated at arrival: every tid must be live and not
    /// already claimed by an earlier pending delete (including earlier in
    /// the same batch). On [`Error::UnknownTransaction`] nothing is
    /// queued.
    ///
    /// Takes `&self` — the staging area is sharded and internally
    /// synchronised, so any number of threads may enqueue concurrently
    /// (see [`Self::staging`] for a handle that outlives this borrow).
    pub fn enqueue(&self, batch: UpdateBatch) -> Result<()> {
        self.staging.stage(batch)?;
        Ok(())
    }

    /// A shareable handle to the staging area: producer threads stage
    /// through it while the store itself is borrowed (even mutably, by a
    /// commit round) elsewhere. Batches staged through the handle are
    /// indistinguishable from [`enqueue`](Self::enqueue)d ones.
    pub fn staging(&self) -> Arc<StagingArea> {
        Arc::clone(&self.staging)
    }

    /// A copy of the accumulated staging area, in global arrival order
    /// (an empty batch when nothing is pending).
    pub fn pending(&self) -> UpdateBatch {
        self.staging.snapshot()
    }

    /// `true` if at least one insert or delete is queued.
    pub fn has_pending(&self) -> bool {
        self.staging.has_pending()
    }

    /// Drains the staging area, returning the accumulated batch (batches
    /// concatenate in global arrival order) for a `stage`+`commit` round.
    /// Delete claims are held until that round commits or aborts.
    pub fn take_pending(&mut self) -> UpdateBatch {
        self.staging.drain()
    }

    /// Drains the staging area keeping per-batch `(ticket, batch)`
    /// boundaries — the durable commit path records exactly which tickets
    /// a round consumed. Claims are held as with
    /// [`take_pending`](Self::take_pending).
    pub fn take_pending_entries(&mut self) -> Vec<(u64, UpdateBatch)> {
        self.staging.drain_entries()
    }

    /// [`take_pending_entries`](Self::take_pending_entries) bounded to at
    /// most `max_ops` operations: drains the longest arrival-order prefix
    /// of whole batches within the bound (an oversized first batch
    /// travels alone — see
    /// [`StagingArea::drain_entries_up_to`]). `None` drains everything.
    pub fn take_pending_entries_up_to(&mut self, max_ops: Option<u64>) -> Vec<(u64, UpdateBatch)> {
        self.staging.drain_entries_up_to(max_ops)
    }

    /// One past the highest tid ever allocated (the durable watermark).
    pub fn watermark(&self) -> u64 {
        self.next_tid
    }

    /// The segment id the next committed round will receive.
    pub fn next_segment(&self) -> u32 {
        self.next_segment
    }

    /// The compact live-tid view (watermark + tombstones) shared with the
    /// staging area's delete validation and the durable format.
    pub fn live_view(&self) -> LiveTidView {
        self.staging.live_view()
    }

    /// `true` while scan order still equals ascending tid order (no
    /// deletion has `swap_remove`d and no abort has re-appended) — the
    /// condition under which a positional index over the live set can be
    /// serialised against the tid-ordered checkpoint image.
    pub fn is_tid_ordered(&self) -> bool {
        self.tid_ordered
    }

    /// Drops everything queued in the staging area, returning the
    /// discarded batch. The live set was never touched, and the discarded
    /// deletes' tids may be staged again.
    pub fn discard_pending(&mut self) -> UpdateBatch {
        self.staging.discard()
    }

    /// Stages an update: removes `batch.deletes` from the live set and
    /// materialises both sides of the update. Fails with
    /// [`Error::UnknownTransaction`] (leaving the store untouched) if any
    /// deleted tid is not live or is listed twice.
    pub fn stage(&mut self, batch: UpdateBatch) -> Result<StagedUpdate> {
        // Validate first so failure cannot leave a partial removal. No
        // staging claims are touched on failure: a claim for one of
        // these tids may legitimately belong to a *different* batch
        // still pending in the staging area, and only the owner of a
        // drained batch knows its claims died with it (see
        // [`StagingArea::release_deletes`]).
        {
            let mut seen = std::collections::HashSet::new();
            for &tid in &batch.deletes {
                if !self.by_tid.contains_key(&tid) || !seen.insert(tid) {
                    return Err(Error::UnknownTransaction(tid));
                }
            }
        }
        self.staging.live_remove(batch.deletes.iter().copied());
        let mut deleted_with_tids = Vec::with_capacity(batch.deletes.len());
        for &tid in &batch.deletes {
            let idx = self.by_tid.remove(&tid).expect("validated above");
            let (_, t) = self.live.swap_remove(idx);
            // swap_remove moved the former last element into `idx` —
            // scan order no longer equals tid order.
            if idx < self.live.len() {
                let moved_tid = self.live[idx].0;
                self.by_tid.insert(moved_tid, idx);
                self.tid_ordered = false;
            }
            deleted_with_tids.push((tid, t));
        }
        let deleted =
            TransactionDb::from_transactions(deleted_with_tids.iter().map(|(_, t)| t.clone()));
        let inserted = TransactionDb::from_transactions(batch.inserts);
        Ok(StagedUpdate {
            inserted,
            deleted,
            deleted_with_tids,
        })
    }

    /// Commits a staged update: appends the insertion side and returns the
    /// new tids together with the segment id of the batch.
    pub fn commit(&mut self, staged: StagedUpdate) -> (SegmentId, Vec<Tid>) {
        let seg = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.staging
            .release_deletes(staged.deleted_with_tids.iter().map(|&(tid, _)| tid));
        let tids = self.append_all(staged.inserted.into_transactions());
        (seg, tids)
    }

    /// Aborts a staged update, restoring the deleted transactions under
    /// their original tids (live — and deletable — again).
    pub fn abort(&mut self, staged: StagedUpdate) {
        self.staging
            .release_deletes(staged.deleted_with_tids.iter().map(|&(tid, _)| tid));
        self.staging
            .live_insert(staged.deleted_with_tids.iter().map(|&(tid, _)| tid));
        if !staged.deleted_with_tids.is_empty() {
            // Restored rows re-append at the end, out of tid order.
            self.tid_ordered = false;
        }
        for (tid, t) in staged.deleted_with_tids {
            self.by_tid.insert(tid, self.live.len());
            self.live.push((tid, t));
        }
    }
}

impl TransactionSource for SegmentedDb {
    fn num_transactions(&self) -> u64 {
        self.live.len() as u64
    }

    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.metrics.record_full_scan();
        for (_, t) in &self.live {
            self.metrics.record_transaction(t.len());
            f(t.items());
        }
    }

    fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    /// Chunks are zero-copy views of the live `(tid, transaction)` pairs.
    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        _scratch: &'s mut crate::chunk::ChunkScratch,
    ) -> crate::chunk::TxChunk<'s> {
        let (start, end) = crate::source::chunk_bounds(self.num_transactions(), chunk_size, index);
        let chunk = crate::chunk::TxChunk::from_pairs(&self.live[start..end]);
        self.metrics
            .record_transactions(chunk.len() as u64, chunk.total_items());
        chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    #[test]
    fn append_assigns_fresh_tids() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2])]);
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
        assert_eq!(db.len(), 2);
        assert!(db.contains(tids[0]));
        assert_eq!(db.get(tids[1]).unwrap().items(), &[ItemId(2)]);
    }

    #[test]
    fn stage_insert_only_leaves_live_unchanged() {
        let mut db = SegmentedDb::from_transactions(vec![tx(&[1]), tx(&[2])]);
        let staged = db
            .stage(UpdateBatch::insert_only(vec![tx(&[3]), tx(&[4])]))
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(staged.num_inserted(), 2);
        assert_eq!(staged.num_deleted(), 0);
        let (seg, tids) = db.commit(staged);
        assert_eq!(seg, SegmentId(0));
        assert_eq!(tids.len(), 2);
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn stage_removes_deleted_and_commit_keeps_them_out() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2]), tx(&[3])]);
        let staged = db
            .stage(UpdateBatch {
                inserts: vec![tx(&[9])],
                deletes: vec![tids[1]],
            })
            .unwrap();
        // While staged: live = DB \ db⁻.
        assert_eq!(db.len(), 2);
        assert!(!db.contains(tids[1]));
        assert_eq!(staged.deleted().len(), 1);
        db.commit(staged);
        assert_eq!(db.len(), 3);
        assert!(!db.contains(tids[1]));
    }

    #[test]
    fn abort_restores_deleted() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2])]);
        let staged = db.stage(UpdateBatch::delete_only(vec![tids[0]])).unwrap();
        assert_eq!(db.len(), 1);
        db.abort(staged);
        assert_eq!(db.len(), 2);
        assert!(db.contains(tids[0]));
        assert_eq!(db.get(tids[0]).unwrap().items(), &[ItemId(1)]);
    }

    #[test]
    fn stage_unknown_tid_fails_atomically() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2])]);
        let err = db
            .stage(UpdateBatch::delete_only(vec![tids[0], Tid(999)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(999)));
        // Nothing was removed.
        assert_eq!(db.len(), 2);
        assert!(db.contains(tids[0]));
    }

    #[test]
    fn stage_duplicate_delete_fails() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1])]);
        let err = db
            .stage(UpdateBatch::delete_only(vec![tids[0], tids[0]]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(tids[0]));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn scanning_charges_metrics_and_sees_live_only() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2]), tx(&[3])]);
        let staged = db.stage(UpdateBatch::delete_only(vec![tids[2]])).unwrap();
        let mut seen = Vec::new();
        db.for_each(&mut |t| seen.push(t[0].raw()));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(db.metrics().full_scans(), 1);
        db.abort(staged);
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2]), tx(&[3]), tx(&[4])]);
        // Delete the first; the last swaps into its slot.
        let staged = db.stage(UpdateBatch::delete_only(vec![tids[0]])).unwrap();
        db.commit(staged);
        for &tid in &tids[1..] {
            assert!(db.contains(tid), "{tid:?} lost after swap_remove");
            assert!(db.get(tid).is_some());
        }
    }

    #[test]
    fn segment_ids_increment() {
        let mut db = SegmentedDb::new();
        let s1 = db.stage(UpdateBatch::insert_only(vec![tx(&[1])])).unwrap();
        let (seg1, _) = db.commit(s1);
        let s2 = db.stage(UpdateBatch::insert_only(vec![tx(&[2])])).unwrap();
        let (seg2, _) = db.commit(s2);
        assert!(seg2 > seg1);
    }

    #[test]
    fn enqueue_accumulates_without_touching_live() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2]), tx(&[3])]);
        assert!(!db.has_pending());
        db.enqueue(UpdateBatch::insert_only(vec![tx(&[4])]))
            .unwrap();
        db.enqueue(UpdateBatch {
            inserts: vec![tx(&[5])],
            deletes: vec![tids[0]],
        })
        .unwrap();
        // Live set untouched: scans still see all three originals.
        assert_eq!(db.len(), 3);
        assert!(db.contains(tids[0]));
        assert!(db.has_pending());
        assert_eq!(db.pending().inserts.len(), 2);
        assert_eq!(db.pending().deletes, vec![tids[0]]);
        // Draining hands back the batches concatenated in arrival order.
        let batch = db.take_pending();
        assert_eq!(batch.inserts.len(), 2);
        assert_eq!(batch.inserts[0].items(), &[ItemId(4)]);
        assert!(!db.has_pending());
        // The drained batch stages and commits like any other.
        let staged = db.stage(batch).unwrap();
        db.commit(staged);
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn enqueue_validates_deletes_at_arrival() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2])]);
        // Unknown tid fails and queues nothing.
        let err = db
            .enqueue(UpdateBatch {
                inserts: vec![tx(&[9])],
                deletes: vec![Tid(999)],
            })
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(999)));
        assert!(!db.has_pending());
        // A delete already pending cannot be queued again...
        db.enqueue(UpdateBatch::delete_only(vec![tids[0]])).unwrap();
        let err = db
            .enqueue(UpdateBatch::delete_only(vec![tids[0]]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(tids[0]));
        // ...nor duplicated within one batch.
        let err = db
            .enqueue(UpdateBatch::delete_only(vec![tids[1], tids[1]]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(tids[1]));
        assert_eq!(db.pending().deletes, vec![tids[0]]);
    }

    #[test]
    fn discard_pending_drops_the_queue() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1])]);
        db.enqueue(UpdateBatch {
            inserts: vec![tx(&[2])],
            deletes: vec![tids[0]],
        })
        .unwrap();
        let dropped = db.discard_pending();
        assert_eq!(dropped.inserts.len(), 1);
        assert!(!db.has_pending());
        assert_eq!(db.len(), 1);
        // The discarded delete's tid is free to be queued again.
        db.enqueue(UpdateBatch::delete_only(vec![tids[0]])).unwrap();
    }

    #[test]
    fn tid_order_flag_tracks_reordering_mutations() {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2]), tx(&[3])]);
        assert!(db.is_tid_ordered());
        // Deleting the tail keeps scan order == tid order.
        let staged = db.stage(UpdateBatch::delete_only(vec![tids[2]])).unwrap();
        db.commit(staged);
        assert!(db.is_tid_ordered());
        // Deleting from the middle swap_removes: order broken.
        let staged = db.stage(UpdateBatch::delete_only(vec![tids[0]])).unwrap();
        db.commit(staged);
        assert!(!db.is_tid_ordered());

        // An abort that restores rows re-appends them: order broken too.
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2])]);
        let staged = db.stage(UpdateBatch::delete_only(vec![tids[0]])).unwrap();
        db.abort(staged);
        assert!(!db.is_tid_ordered());
    }

    #[test]
    fn from_recovered_restores_live_set_and_watermark() {
        // Original store: tids 0..4 with 1 and 3 deleted.
        let mut db = SegmentedDb::new();
        let tids = db.append_all(vec![tx(&[1]), tx(&[2]), tx(&[3]), tx(&[4])]);
        let staged = db
            .stage(UpdateBatch::delete_only(vec![tids[1], tids[3]]))
            .unwrap();
        db.commit(staged);

        let view = db.live_view();
        assert_eq!(view.watermark(), 4);
        assert_eq!(view.tombstones_sorted(), vec![tids[1], tids[3]]);

        // Rebuild from the checkpoint image: live pairs in tid order.
        let mut pairs: Vec<(Tid, Transaction)> =
            db.iter().map(|(tid, t)| (tid, t.clone())).collect();
        pairs.sort_unstable_by_key(|&(tid, _)| tid);
        let restored = SegmentedDb::from_recovered(
            pairs,
            view.watermark(),
            view.tombstones_sorted(),
            db.next_segment(),
        );
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.watermark(), 4);
        assert!(restored.is_tid_ordered());
        assert_eq!(restored.get(tids[0]).unwrap().items(), &[ItemId(1)]);
        assert!(!restored.contains(tids[1]));
        assert_eq!(restored.live_view(), view);
        // The watermark survives: new appends get fresh tids, and a
        // tombstoned tid cannot be deleted again.
        let mut restored = restored;
        let new = restored.append_all(vec![tx(&[9])]);
        assert_eq!(new, vec![Tid(4)]);
        assert!(restored
            .enqueue(UpdateBatch::delete_only(vec![tids[1]]))
            .is_err());
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut db = SegmentedDb::from_transactions(vec![tx(&[1])]);
        let batch = UpdateBatch::default();
        assert!(batch.is_empty());
        let staged = db.stage(batch).unwrap();
        assert_eq!(staged.num_inserted(), 0);
        assert_eq!(staged.num_deleted(), 0);
        db.commit(staged);
        assert_eq!(db.len(), 1);
    }
}

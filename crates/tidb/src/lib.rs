//! # fup-tidb — transaction database substrate
//!
//! The FUP paper's algorithms (Apriori, DHP, FUP, FUP2) are *scan* algorithms
//! over a transaction database: every iteration reads either the increment
//! `db` or the original database `DB` end-to-end and counts candidate
//! itemsets inside each transaction. Their relative performance is governed
//! by (a) how many candidate sets each pass carries and (b) how much data
//! each pass scans. This crate provides the substrate that makes both
//! quantities observable:
//!
//! * [`ItemId`] / [`ItemDictionary`] — compact item identifiers with an
//!   optional string dictionary,
//! * [`Transaction`] — a sorted, duplicate-free set of items,
//! * [`TransactionDb`] — an in-memory transaction store,
//! * [`SegmentedDb`] — a store partitioned into a base database plus
//!   increments and decrements, modelling the paper's `DB`, `db⁺` and `db⁻`,
//! * [`codec`] / [`page`] — a varint binary codec and a 4 KiB-paged storage
//!   simulation so scans can be charged in bytes and pages, standing in for
//!   the paper's on-disk RS/6000 databases,
//! * [`wal`] / [`storage`] — an append-only, CRC32-framed write-ahead log
//!   over an injectable [`DurableStorage`] medium ([`DiskStorage`] for real
//!   directories, [`MemStorage`] with fault injection for crash tests) —
//!   the substrate of `fup_core`'s durable maintenance sessions,
//! * [`chunk`] — [`TxChunk`] views for the chunked scan API
//!   ([`TransactionSource::for_each_chunk`] and the
//!   [`TransactionSource::chunk`] cursor), which lets `fup_mining`'s
//!   counting engine scan one pass from many worker threads,
//! * [`ScanMetrics`] — per-source counters (full scans, transactions, items,
//!   bytes) used by the experiment harness.
//!
//! The paper ran against on-disk data; we substitute an in-memory paged
//! store with explicit scan accounting (see DESIGN.md §2 "Substitutions").
//!
//! ## Quick example
//!
//! ```
//! use fup_tidb::{Transaction, TransactionDb, TransactionSource};
//!
//! let mut db = TransactionDb::new();
//! db.push(Transaction::from_items([1, 2, 3]));
//! db.push(Transaction::from_items([2, 3]));
//! assert_eq!(db.len(), 2);
//!
//! let mut with_2 = 0u64;
//! db.for_each(&mut |t: &[fup_tidb::ItemId]| {
//!     if t.binary_search(&fup_tidb::ItemId(2)).is_ok() {
//!         with_2 += 1;
//!     }
//! });
//! assert_eq!(with_2, 2);
//! assert_eq!(db.metrics().full_scans(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chunk;
pub mod codec;
pub mod database;
pub mod dictionary;
pub mod error;
pub mod io;
pub mod item;
pub mod page;
pub mod rpc;
pub mod scan;
pub mod segment;
pub mod shard;
pub mod source;
pub mod staging;
pub mod stats;
pub mod storage;
pub mod transaction;
pub mod wal;

pub use chunk::{ChunkScratch, TxChunk};
pub use database::TransactionDb;
pub use dictionary::ItemDictionary;
pub use error::{Error, FaultKind, Result};
pub use item::ItemId;
pub use rpc::{ChannelTransport, Message, Transport, UdsTransport};
pub use scan::ScanMetrics;
pub use segment::{SegmentId, SegmentedDb, StagedUpdate, Tid, UpdateBatch};
pub use shard::{RangeMove, ShardSpec, ShardedDb, ShardedStaged, SpecError, TidRange};
pub use source::TransactionSource;
pub use staging::{Admission, LiveTidView, StagingArea};
pub use storage::{DiskStorage, DurableStorage, FlakyStorage, MemStorage, OpClass};
pub use transaction::Transaction;
pub use wal::{WalRecord, WalScan};

//! Tid-range sharding: a partitioned [`SegmentedDb`] behind one tid space.
//!
//! The FUP family's cost model is per-support-count, and a support count
//! is a sum over transactions — so it is additive across **disjoint tid
//! ranges**. [`ShardedDb`] exploits exactly that: it partitions the live
//! set into N [`SegmentedDb`] shards by a [`ShardSpec`] routing function
//! while presenting *one* tid space, *one* staging area (tickets, delete
//! claims, capacity gate, live-tid view), and *one* scan order (shard 0's
//! rows, then shard 1's, …). Each shard is its own chunk partition
//! ([`TransactionSource::chunk_partitions`]), so a partition-aware scan
//! driver gives every shard its own chunk cursor; local counts merge by
//! summation at pass end (count distribution). Mining results are
//! bit-identical to the unsharded store because every count is the same
//! sum, merely reassociated.
//!
//! Routing invariant: `spec.shard_of(tid)` is a **pure function of the
//! tid** — staging, commit, recovery and deletes all route through it, so
//! a transaction's shard never changes and a delete always finds its
//! insert's shard, no matter how many batches apart they arrived.

use crate::chunk::{ChunkScratch, TxChunk};
use crate::database::TransactionDb;
use crate::error::{Error, Result};
use crate::item::ItemId;
use crate::scan::ScanMetrics;
use crate::segment::{SegmentId, SegmentedDb, Tid, UpdateBatch};
use crate::source::TransactionSource;
use crate::staging::{LiveTidView, StagingArea};
use crate::transaction::Transaction;
use std::fmt;
use std::sync::Arc;

/// A half-open tid interval `[start, end)`; `end == u64::MAX` means
/// unbounded (the tail range every future tid falls into).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TidRange {
    /// First tid of the range.
    pub start: u64,
    /// One past the last tid (`u64::MAX` = unbounded).
    pub end: u64,
}

impl TidRange {
    /// `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        TidRange { start, end }
    }

    /// `true` if `tid` falls inside the range.
    pub fn contains(&self, tid: Tid) -> bool {
        self.start <= tid.0 && tid.0 < self.end
    }
}

/// Why a [`ShardSpec`] was rejected. Validation runs in
/// [`ShardedDb::new`] (and therefore in every session builder), never as
/// a panic at stage time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// The spec names zero shards.
    NoShards,
    /// A striped spec with a zero stripe width.
    ZeroStripe,
    /// An explicit range list whose first range does not start at tid 0,
    /// leaving tids below `start` unroutable.
    NotAnchored {
        /// Start of the first range.
        start: u64,
    },
    /// Range `index` is empty (`start >= end`).
    EmptyRange {
        /// Position of the offending range.
        index: usize,
    },
    /// Range `index` starts before the previous range ends — two shards
    /// would own the overlapped tids.
    Overlap {
        /// Position of the offending range.
        index: usize,
        /// Its start.
        start: u64,
        /// The previous range's end.
        prev_end: u64,
    },
    /// Range `index` starts after the previous range ends — the tids in
    /// between would have no owner.
    Gap {
        /// Position of the offending range.
        index: usize,
        /// Its start.
        start: u64,
        /// The previous range's end.
        prev_end: u64,
    },
    /// The last range is bounded, leaving future tids (≥ `end`)
    /// unroutable.
    BoundedTail {
        /// The last range's end.
        end: u64,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SpecError::NoShards => write!(f, "shard spec names zero shards"),
            SpecError::ZeroStripe => write!(f, "striped shard spec with zero stripe width"),
            SpecError::NotAnchored { start } => {
                write!(f, "first range starts at {start}, not 0: tids below it are unroutable")
            }
            SpecError::EmptyRange { index } => write!(f, "range {index} is empty"),
            SpecError::Overlap { index, start, prev_end } => write!(
                f,
                "range {index} starts at {start}, overlapping the previous range ending at {prev_end}"
            ),
            SpecError::Gap { index, start, prev_end } => write!(
                f,
                "range {index} starts at {start}, leaving tids {prev_end}..{start} unowned"
            ),
            SpecError::BoundedTail { end } => {
                write!(f, "last range ends at {end}: future tids would be unroutable")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Stripe width used by [`ShardSpec::striped`] when none is given: wide
/// enough that a chunked scan rarely crosses a stripe, narrow enough
/// that a steadily-growing tid sequence spreads evenly.
pub const DEFAULT_STRIPE: u64 = 1024;

/// How tids map to shards. The routing function must be **total** (every
/// tid, including all future ones, has exactly one owner); `validate`
/// rejects anything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpec {
    /// Round-robin over fixed-width tid stripes:
    /// `shard_of(tid) = (tid / stripe) % shards`. Every stripe is a tid
    /// range, and a growing tid sequence stays balanced.
    Striped {
        /// Number of shards (≥ 1).
        shards: u32,
        /// Stripe width in tids (≥ 1).
        stripe: u64,
    },
    /// Explicit contiguous ranges, one per shard: must start at 0, tile
    /// the tid space with no gap or overlap, and end unbounded.
    Ranges(Vec<TidRange>),
}

impl ShardSpec {
    /// A striped spec over `shards` shards with the
    /// [`DEFAULT_STRIPE`] width.
    pub fn striped(shards: u32) -> Self {
        ShardSpec::Striped {
            shards,
            stripe: DEFAULT_STRIPE,
        }
    }

    /// A striped spec with an explicit stripe width.
    pub fn striped_with(shards: u32, stripe: u64) -> Self {
        ShardSpec::Striped { shards, stripe }
    }

    /// An explicit-ranges spec (validated by [`ShardedDb::new`] /
    /// [`ShardSpec::validate`]).
    pub fn ranges<I: IntoIterator<Item = TidRange>>(ranges: I) -> Self {
        ShardSpec::Ranges(ranges.into_iter().collect())
    }

    /// Number of shards the spec routes to.
    pub fn num_shards(&self) -> usize {
        match self {
            ShardSpec::Striped { shards, .. } => *shards as usize,
            ShardSpec::Ranges(r) => r.len(),
        }
    }

    /// Checks the routing function is total: at least one shard, a
    /// positive stripe, and (for explicit ranges) an anchored,
    /// gap-free, overlap-free, unbounded tiling.
    pub fn validate(&self) -> std::result::Result<(), SpecError> {
        match self {
            ShardSpec::Striped { shards, stripe } => {
                if *shards == 0 {
                    return Err(SpecError::NoShards);
                }
                if *stripe == 0 {
                    return Err(SpecError::ZeroStripe);
                }
                Ok(())
            }
            ShardSpec::Ranges(ranges) => {
                if ranges.is_empty() {
                    return Err(SpecError::NoShards);
                }
                if ranges[0].start != 0 {
                    return Err(SpecError::NotAnchored {
                        start: ranges[0].start,
                    });
                }
                for (index, r) in ranges.iter().enumerate() {
                    if r.start >= r.end {
                        return Err(SpecError::EmptyRange { index });
                    }
                    if index > 0 {
                        let prev_end = ranges[index - 1].end;
                        if r.start < prev_end {
                            return Err(SpecError::Overlap {
                                index,
                                start: r.start,
                                prev_end,
                            });
                        }
                        if r.start > prev_end {
                            return Err(SpecError::Gap {
                                index,
                                start: r.start,
                                prev_end,
                            });
                        }
                    }
                }
                let end = ranges.last().expect("non-empty").end;
                if end != u64::MAX {
                    return Err(SpecError::BoundedTail { end });
                }
                Ok(())
            }
        }
    }

    /// The shard owning `tid`. Pure and total (given a validated spec).
    pub fn shard_of(&self, tid: Tid) -> usize {
        match self {
            ShardSpec::Striped { shards, stripe } => {
                ((tid.0 / stripe) % u64::from(*shards)) as usize
            }
            ShardSpec::Ranges(ranges) => {
                // Validated tilings are sorted by start; the owner is the
                // last range starting at or below the tid.
                ranges
                    .partition_point(|r| r.start <= tid.0)
                    .saturating_sub(1)
            }
        }
    }

    /// Tid boundaries at which this spec's owner can change, strictly
    /// below `watermark`, ascending. Between two consecutive boundaries
    /// the owner is constant.
    fn owner_boundaries(&self, watermark: u64, out: &mut Vec<u64>) {
        match self {
            ShardSpec::Striped { stripe, .. } => {
                let mut b = 0u64;
                while b < watermark {
                    out.push(b);
                    let Some(next) = b.checked_add(*stripe) else {
                        break;
                    };
                    b = next;
                }
            }
            ShardSpec::Ranges(ranges) => {
                out.extend(ranges.iter().map(|r| r.start).filter(|&s| s < watermark));
            }
        }
    }

    /// Validates `new` and reports which tid ranges change owner when
    /// this spec is replaced by it — the work list of a shard rebalance.
    ///
    /// Only tids below `watermark` (the store's next-tid allocator, i.e.
    /// the tids that actually exist) are considered; future tids simply
    /// route through the new spec from the start. Adjacent moved ranges
    /// with the same `(from, to)` pair are coalesced, so the result is
    /// minimal. Cost is linear in the owner-change boundaries of either
    /// spec below the watermark (for striped specs, `watermark / stripe`).
    ///
    /// An empty result means the specs route every existing tid
    /// identically — rebalancing would move nothing.
    pub fn rebalance_to(
        &self,
        new: &ShardSpec,
        watermark: u64,
    ) -> std::result::Result<Vec<RangeMove>, SpecError> {
        self.validate()?;
        new.validate()?;
        let mut bounds = Vec::new();
        self.owner_boundaries(watermark, &mut bounds);
        new.owner_boundaries(watermark, &mut bounds);
        bounds.push(0);
        bounds.sort_unstable();
        bounds.dedup();

        let mut moves: Vec<RangeMove> = Vec::new();
        for (i, &start) in bounds.iter().enumerate() {
            let end = bounds.get(i + 1).copied().unwrap_or(watermark);
            if start >= end {
                continue;
            }
            let from = self.shard_of(Tid(start));
            let to = new.shard_of(Tid(start));
            if from == to {
                continue;
            }
            match moves.last_mut() {
                Some(last) if last.range.end == start && last.from == from && last.to == to => {
                    last.range.end = end;
                }
                _ => moves.push(RangeMove {
                    range: TidRange::new(start, end),
                    from,
                    to,
                }),
            }
        }
        Ok(moves)
    }
}

/// One contiguous tid range that changes owner in a
/// [`ShardSpec::rebalance_to`] plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeMove {
    /// The tids that move (half-open, bounded by the watermark).
    pub range: TidRange,
    /// Shard owning the range under the old spec.
    pub from: usize,
    /// Shard owning the range under the new spec.
    pub to: usize,
}

/// A staged (uncommitted) sharded update: the global `db⁺`/`db⁻` sides
/// plus the same sides routed per shard — the inputs of a shard-parallel
/// FUP/FUP2 round.
///
/// Insert tids are assigned **prospectively** at stage time (from the
/// router's global allocator, in batch order — exactly the tids an
/// unsharded [`SegmentedDb`] would assign) but the allocator itself only
/// advances at [`ShardedDb::commit`], so an aborted round burns no tids.
#[derive(Debug)]
pub struct ShardedStaged {
    inserted: TransactionDb,
    deleted: TransactionDb,
    deleted_with_tids: Vec<(Tid, Transaction)>,
    /// Per shard: the inserts routed to it, with their prospective tids.
    routed_inserts: Vec<Vec<(Tid, Transaction)>>,
    /// Per shard: the routed insert side as a scannable source.
    shard_inserted: Vec<TransactionDb>,
    /// Per shard: the deleted rows removed from it.
    shard_deleted_pairs: Vec<Vec<(Tid, Transaction)>>,
    /// Per shard: the routed delete side as a scannable source.
    shard_deleted: Vec<TransactionDb>,
    /// The global allocator value the routing was computed against.
    base_tid: u64,
}

impl ShardedStaged {
    /// The insertion side `db⁺` in batch order, as one scannable source.
    pub fn inserted(&self) -> &TransactionDb {
        &self.inserted
    }

    /// The deletion side `db⁻` in batch order, as one scannable source.
    pub fn deleted(&self) -> &TransactionDb {
        &self.deleted
    }

    /// `d⁺`: number of inserted transactions.
    pub fn num_inserted(&self) -> u64 {
        self.inserted.len() as u64
    }

    /// `d⁻`: number of deleted transactions.
    pub fn num_deleted(&self) -> u64 {
        self.deleted.len() as u64
    }

    /// Shard `s`'s slice of the insertion side, `db⁺ₛ`.
    pub fn shard_inserted(&self, s: usize) -> &TransactionDb {
        &self.shard_inserted[s]
    }

    /// Shard `s`'s slice of the deletion side, `db⁻ₛ`.
    pub fn shard_deleted(&self, s: usize) -> &TransactionDb {
        &self.shard_deleted[s]
    }

    /// Shard `s`'s routed inserts with their prospective tids.
    pub fn shard_routed_inserts(&self, s: usize) -> &[(Tid, Transaction)] {
        &self.routed_inserts[s]
    }
}

/// A tid-range-partitioned transaction store: N [`SegmentedDb`] shards
/// behind one tid space, one staging area, and one scan order.
///
/// The public surface mirrors [`SegmentedDb`] (same two-phase
/// stage/commit/abort, same staging handles, same live-tid view) so the
/// maintenance session can drive either store through one code path;
/// only [`stage`](Self::stage) returns the richer [`ShardedStaged`] that
/// the shard-parallel mining rounds consume.
#[derive(Debug)]
pub struct ShardedDb {
    spec: ShardSpec,
    shards: Vec<SegmentedDb>,
    /// The single authoritative staging area: tickets, delete claims,
    /// capacity gate and the global live-tid view. The per-shard stores'
    /// internal areas are unused.
    staging: Arc<StagingArea>,
    next_tid: u64,
    next_segment: u32,
    metrics: ScanMetrics,
}

impl ShardedDb {
    /// Creates an empty sharded store, rejecting an invalid spec (zero
    /// shards, zero stripe, or an explicit range list that overlaps,
    /// gaps, starts past 0, or ends bounded).
    pub fn new(spec: ShardSpec) -> std::result::Result<Self, SpecError> {
        spec.validate()?;
        let shards = (0..spec.num_shards()).map(|_| SegmentedDb::new()).collect();
        Ok(ShardedDb {
            spec,
            shards,
            staging: Arc::default(),
            next_tid: 0,
            next_segment: 0,
            metrics: ScanMetrics::new(),
        })
    }

    /// Builds a sharded store from initial transactions, assigning fresh
    /// tids (identical to the unsharded assignment) and routing each to
    /// its shard.
    pub fn from_transactions<I: IntoIterator<Item = Transaction>>(
        spec: ShardSpec,
        iter: I,
    ) -> std::result::Result<Self, SpecError> {
        let mut db = ShardedDb::new(spec)?;
        db.append_all(iter);
        Ok(db)
    }

    /// Restores a sharded store from a durable checkpoint image (`live`
    /// pairs in ascending tid order, watermark, tombstones, next segment
    /// id), routing every recovered row by the spec. The shard count is
    /// pure configuration: any valid spec yields the same live set, tid
    /// space and mining results, so a store checkpointed under one spec
    /// may be recovered under another.
    pub fn from_recovered(
        spec: ShardSpec,
        live: Vec<(Tid, Transaction)>,
        watermark: u64,
        tombstones: Vec<Tid>,
        next_segment: u32,
    ) -> std::result::Result<Self, SpecError> {
        let mut db = ShardedDb::new(spec)?;
        let mut routed: Vec<Vec<(Tid, Transaction)>> =
            (0..db.shards.len()).map(|_| Vec::new()).collect();
        for (tid, t) in live {
            routed[db.spec.shard_of(tid)].push((tid, t));
        }
        for (shard, pairs) in db.shards.iter_mut().zip(routed) {
            shard.append_pairs(pairs);
        }
        db.next_tid = watermark;
        db.next_segment = next_segment;
        db.staging
            .live_reset(LiveTidView::from_parts(watermark, tombstones));
        Ok(db)
    }

    /// Appends transactions directly (no staging), returning their tids.
    /// Tid assignment is global and sequential — bit-identical to
    /// [`SegmentedDb::append_all`] — with each row routed to its shard.
    pub fn append_all<I: IntoIterator<Item = Transaction>>(&mut self, iter: I) -> Vec<Tid> {
        let mut routed: Vec<Vec<(Tid, Transaction)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut tids = Vec::new();
        for t in iter {
            let tid = Tid(self.next_tid);
            self.next_tid += 1;
            routed[self.spec.shard_of(tid)].push((tid, t));
            tids.push(tid);
        }
        for (shard, pairs) in self.shards.iter_mut().zip(routed) {
            shard.append_pairs(pairs);
        }
        self.staging.live_insert(tids.iter().copied());
        tids
    }

    /// The routing spec.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s` as a read-only store (each shard is a complete
    /// [`SegmentedDb`] over its tid subset — and a complete
    /// [`TransactionSource`], which is what the per-shard mining rounds
    /// scan).
    pub fn shard(&self, s: usize) -> &SegmentedDb {
        &self.shards[s]
    }

    /// Live transaction count per shard — the balance view.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Total number of live transactions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` if no transaction is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a live transaction by tid (routed, not searched).
    pub fn get(&self, tid: Tid) -> Option<&Transaction> {
        self.shards[self.spec.shard_of(tid)].get(tid)
    }

    /// `true` if `tid` is live.
    pub fn contains(&self, tid: Tid) -> bool {
        self.shards[self.spec.shard_of(tid)].contains(tid)
    }

    /// Iterates `(tid, transaction)` pairs in scan order (shard 0's rows,
    /// then shard 1's, …) without charging scan metrics.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &Transaction)> + '_ {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Queues a batch into the (global) staging area without touching any
    /// live set — see [`SegmentedDb::enqueue`].
    pub fn enqueue(&self, batch: UpdateBatch) -> Result<()> {
        self.staging.stage(batch)?;
        Ok(())
    }

    /// A shareable handle to the global staging area.
    pub fn staging(&self) -> Arc<StagingArea> {
        Arc::clone(&self.staging)
    }

    /// A copy of the accumulated staging area in global arrival order.
    pub fn pending(&self) -> UpdateBatch {
        self.staging.snapshot()
    }

    /// `true` if at least one insert or delete is queued.
    pub fn has_pending(&self) -> bool {
        self.staging.has_pending()
    }

    /// Drains the staging area — see [`SegmentedDb::take_pending`].
    pub fn take_pending(&mut self) -> UpdateBatch {
        self.staging.drain()
    }

    /// Drains keeping per-batch `(ticket, batch)` boundaries.
    pub fn take_pending_entries(&mut self) -> Vec<(u64, UpdateBatch)> {
        self.staging.drain_entries()
    }

    /// Bounded drain — see [`SegmentedDb::take_pending_entries_up_to`].
    pub fn take_pending_entries_up_to(&mut self, max_ops: Option<u64>) -> Vec<(u64, UpdateBatch)> {
        self.staging.drain_entries_up_to(max_ops)
    }

    /// Drops everything queued, returning the discarded batch.
    pub fn discard_pending(&mut self) -> UpdateBatch {
        self.staging.discard()
    }

    /// One past the highest tid ever allocated (the durable watermark).
    pub fn watermark(&self) -> u64 {
        self.next_tid
    }

    /// The segment id the next committed round will receive.
    pub fn next_segment(&self) -> u32 {
        self.next_segment
    }

    /// The global live-tid view shared with delete validation and the
    /// durable format — identical to the unsharded store's view.
    pub fn live_view(&self) -> LiveTidView {
        self.staging.live_view()
    }

    /// `true` while every shard's scan order still equals ascending tid
    /// order over its subset (no mid-shard deletion or abort reordered a
    /// shard) — the condition under which each shard's positional index
    /// stays extendable.
    pub fn is_tid_ordered(&self) -> bool {
        self.shards.iter().all(|s| s.is_tid_ordered())
    }

    /// Stages an update: removes `batch.deletes` from their owning shards
    /// and routes `batch.inserts` to prospective tids/shards. Fails with
    /// [`Error::UnknownTransaction`] — leaving every shard untouched — if
    /// any deleted tid is not live or is listed twice.
    pub fn stage(&mut self, batch: UpdateBatch) -> Result<ShardedStaged> {
        // Validate across all shards first so a failure cannot leave a
        // partial removal (same contract as `SegmentedDb::stage`, and
        // like it, staging claims are untouched on failure).
        {
            let mut seen = std::collections::HashSet::new();
            for &tid in &batch.deletes {
                if !self.contains(tid) || !seen.insert(tid) {
                    return Err(Error::UnknownTransaction(tid));
                }
            }
        }
        self.staging.live_remove(batch.deletes.iter().copied());
        let n = self.shards.len();
        let mut deleted_with_tids = Vec::with_capacity(batch.deletes.len());
        let mut shard_deleted_pairs: Vec<Vec<(Tid, Transaction)>> =
            (0..n).map(|_| Vec::new()).collect();
        for &tid in &batch.deletes {
            let s = self.spec.shard_of(tid);
            let t = self.shards[s].remove_tid(tid).expect("validated above");
            shard_deleted_pairs[s].push((tid, t.clone()));
            deleted_with_tids.push((tid, t));
        }
        // Prospective insert routing: the tids a commit will assign, in
        // batch order from the global allocator (not yet advanced, so an
        // abort burns nothing).
        let base_tid = self.next_tid;
        let mut routed_inserts: Vec<Vec<(Tid, Transaction)>> = (0..n).map(|_| Vec::new()).collect();
        for (k, t) in batch.inserts.iter().enumerate() {
            let tid = Tid(base_tid + k as u64);
            routed_inserts[self.spec.shard_of(tid)].push((tid, t.clone()));
        }
        let shard_inserted = routed_inserts
            .iter()
            .map(|p| TransactionDb::from_transactions(p.iter().map(|(_, t)| t.clone())))
            .collect();
        let shard_deleted = shard_deleted_pairs
            .iter()
            .map(|p| TransactionDb::from_transactions(p.iter().map(|(_, t)| t.clone())))
            .collect();
        let deleted =
            TransactionDb::from_transactions(deleted_with_tids.iter().map(|(_, t)| t.clone()));
        let inserted = TransactionDb::from_transactions(batch.inserts);
        Ok(ShardedStaged {
            inserted,
            deleted,
            deleted_with_tids,
            routed_inserts,
            shard_inserted,
            shard_deleted_pairs,
            shard_deleted,
            base_tid,
        })
    }

    /// Commits a staged update: appends every shard's routed inserts
    /// under their prospective tids, advances the global allocator, and
    /// returns the new tids with the round's segment id.
    pub fn commit(&mut self, staged: ShardedStaged) -> (SegmentId, Vec<Tid>) {
        debug_assert_eq!(
            staged.base_tid, self.next_tid,
            "rounds must commit in stage order"
        );
        let seg = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.staging
            .release_deletes(staged.deleted_with_tids.iter().map(|&(tid, _)| tid));
        let num_inserted = staged.inserted.len() as u64;
        let mut tids: Vec<Tid> = (staged.base_tid..staged.base_tid + num_inserted)
            .map(Tid)
            .collect();
        tids.sort_unstable();
        for (shard, pairs) in self.shards.iter_mut().zip(staged.routed_inserts) {
            shard.append_pairs(pairs);
        }
        self.next_tid += num_inserted;
        self.staging.live_insert(tids.iter().copied());
        (seg, tids)
    }

    /// Aborts a staged update, restoring the deleted transactions to
    /// their shards under their original tids. Prospective insert tids
    /// were never allocated, so the next round reuses them.
    pub fn abort(&mut self, staged: ShardedStaged) {
        self.staging
            .release_deletes(staged.deleted_with_tids.iter().map(|&(tid, _)| tid));
        self.staging
            .live_insert(staged.deleted_with_tids.iter().map(|&(tid, _)| tid));
        for (shard, pairs) in self.shards.iter_mut().zip(staged.shard_deleted_pairs) {
            shard.append_pairs(pairs);
        }
    }

    /// Number of live transactions in shards before `s` — the positional
    /// offset of shard `s`'s rows in the global scan order.
    fn shard_row_offset(&self, s: usize) -> u64 {
        self.shards[..s].iter().map(|d| d.len() as u64).sum()
    }
}

impl TransactionSource for ShardedDb {
    fn num_transactions(&self) -> u64 {
        self.len() as u64
    }

    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.metrics.record_full_scan();
        for shard in &self.shards {
            for (_, t) in shard.iter() {
                self.metrics.record_transaction(t.len());
                f(t.items());
            }
        }
    }

    fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    /// Chunks never straddle a shard boundary: the plan delivers every
    /// chunk of shard 0, then every chunk of shard 1, … (the last chunk
    /// of each shard may run short, as the chunked contract allows).
    fn plan_chunks(&self, chunk_size: usize) -> u64 {
        self.shards.iter().map(|s| s.plan_chunks(chunk_size)).sum()
    }

    /// One partition per shard — a partition-aware driver gives each
    /// shard its own chunk cursor.
    fn chunk_partitions(&self, chunk_size: usize) -> Vec<u64> {
        let mut acc = 0;
        self.shards
            .iter()
            .map(|s| {
                acc += s.plan_chunks(chunk_size);
                acc
            })
            .collect()
    }

    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        scratch: &'s mut ChunkScratch,
    ) -> TxChunk<'s> {
        let mut index = index;
        for shard in &self.shards {
            let chunks = shard.plan_chunks(chunk_size);
            if index < chunks {
                let chunk = shard.chunk(chunk_size, index, scratch);
                self.metrics
                    .record_transactions(chunk.len() as u64, chunk.total_items());
                return chunk;
            }
            index -= chunks;
        }
        panic!("chunk index out of range");
    }

    /// N-way generalisation of the chain-source seam arithmetic: a chunk
    /// of shard `s` starts at the total row count of earlier shards plus
    /// the shard's own offset.
    fn chunk_tid_offset(&self, chunk_size: usize, index: u64) -> u64 {
        let mut index = index;
        for (s, shard) in self.shards.iter().enumerate() {
            let chunks = shard.plan_chunks(chunk_size);
            if index < chunks {
                return self.shard_row_offset(s) + shard.chunk_tid_offset(chunk_size, index);
            }
            index -= chunks;
        }
        panic!("chunk index out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    fn txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| tx(&[i as u32, (i % 7) as u32 + 100]))
            .collect()
    }

    #[test]
    fn striped_spec_routes_totally_and_evenly() {
        let spec = ShardSpec::striped_with(3, 4);
        spec.validate().unwrap();
        let mut per_shard = [0u64; 3];
        for tid in 0..120 {
            per_shard[spec.shard_of(Tid(tid))] += 1;
        }
        assert_eq!(per_shard, [40, 40, 40]);
        // Stripe boundaries honoured: tids 0..4 → shard 0, 4..8 → shard 1.
        assert_eq!(spec.shard_of(Tid(3)), 0);
        assert_eq!(spec.shard_of(Tid(4)), 1);
        assert_eq!(spec.shard_of(Tid(11)), 2);
        assert_eq!(spec.shard_of(Tid(12)), 0);
    }

    #[test]
    fn range_spec_validation_rejects_bad_tilings() {
        // Valid: anchored, contiguous, unbounded.
        let ok = ShardSpec::ranges([
            TidRange::new(0, 100),
            TidRange::new(100, 200),
            TidRange::new(200, u64::MAX),
        ]);
        ok.validate().unwrap();
        assert_eq!(ok.shard_of(Tid(0)), 0);
        assert_eq!(ok.shard_of(Tid(99)), 0);
        assert_eq!(ok.shard_of(Tid(100)), 1);
        assert_eq!(ok.shard_of(Tid(5_000_000)), 2);

        let overlap = ShardSpec::ranges([TidRange::new(0, 100), TidRange::new(50, u64::MAX)]);
        assert_eq!(
            overlap.validate(),
            Err(SpecError::Overlap {
                index: 1,
                start: 50,
                prev_end: 100
            })
        );

        let gap = ShardSpec::ranges([TidRange::new(0, 100), TidRange::new(150, u64::MAX)]);
        assert_eq!(
            gap.validate(),
            Err(SpecError::Gap {
                index: 1,
                start: 150,
                prev_end: 100
            })
        );

        assert_eq!(
            ShardSpec::ranges([TidRange::new(10, u64::MAX)]).validate(),
            Err(SpecError::NotAnchored { start: 10 })
        );
        assert_eq!(
            ShardSpec::ranges([TidRange::new(0, 100)]).validate(),
            Err(SpecError::BoundedTail { end: 100 })
        );
        assert_eq!(ShardSpec::ranges([]).validate(), Err(SpecError::NoShards));
        assert_eq!(
            ShardSpec::striped_with(0, 8).validate(),
            Err(SpecError::NoShards)
        );
        assert_eq!(
            ShardSpec::striped_with(2, 0).validate(),
            Err(SpecError::ZeroStripe)
        );
        assert!(ShardedDb::new(ShardSpec::striped_with(2, 0)).is_err());
    }

    #[test]
    fn append_assigns_global_tids_and_routes() {
        let mut db = ShardedDb::from_transactions(ShardSpec::striped_with(2, 2), txs(8)).unwrap();
        assert_eq!(db.len(), 8);
        // Stripe 2 over 2 shards: tids 0,1,4,5 → shard 0; 2,3,6,7 → shard 1.
        assert_eq!(db.shard_lens(), vec![4, 4]);
        assert!(db.shard(0).contains(Tid(0)));
        assert!(db.shard(1).contains(Tid(2)));
        assert_eq!(db.watermark(), 8);
        // Same tids the unsharded store would assign.
        let flat = SegmentedDb::from_transactions(txs(8));
        assert_eq!(db.live_view(), flat.live_view());
        let more = db.append_all(txs(2));
        assert_eq!(more, vec![Tid(8), Tid(9)]);
    }

    #[test]
    fn stage_commit_matches_unsharded_live_view() {
        let rows = txs(20);
        let mut sharded =
            ShardedDb::from_transactions(ShardSpec::striped_with(3, 2), rows.clone()).unwrap();
        let mut flat = SegmentedDb::from_transactions(rows);
        let batch = UpdateBatch {
            inserts: txs(5),
            deletes: vec![Tid(1), Tid(7), Tid(19)],
        };
        let ss = sharded.stage(batch.clone()).unwrap();
        let fs = flat.stage(batch).unwrap();
        // Mid-round: both stores expose DB⁻.
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(ss.num_deleted(), 3);
        // Per-shard sides tile the global sides.
        let routed_total: usize = (0..3)
            .map(|s| ss.shard_inserted(s).len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert_eq!(routed_total, 5);
        let deleted_total: usize = (0..3).map(|s| ss.shard_deleted(s).len()).sum();
        assert_eq!(deleted_total, 3);
        let (seg_s, tids_s) = sharded.commit(ss);
        let (seg_f, tids_f) = flat.commit(fs);
        assert_eq!(seg_s, seg_f);
        assert_eq!(tids_s, tids_f, "sharded commit must assign the same tids");
        assert_eq!(sharded.live_view(), flat.live_view());
        assert_eq!(sharded.len(), flat.len());
        for (tid, t) in flat.iter() {
            assert_eq!(sharded.get(tid), Some(t), "{tid:?} differs");
        }
    }

    #[test]
    fn abort_restores_rows_without_burning_tids() {
        let mut db = ShardedDb::from_transactions(ShardSpec::striped(2), txs(6)).unwrap();
        let staged = db
            .stage(UpdateBatch {
                inserts: txs(3),
                deletes: vec![Tid(0), Tid(5)],
            })
            .unwrap();
        assert_eq!(db.len(), 4);
        db.abort(staged);
        assert_eq!(db.len(), 6);
        assert!(db.contains(Tid(0)) && db.contains(Tid(5)));
        // The prospective tids were never allocated.
        let tids = db.append_all(txs(1));
        assert_eq!(tids, vec![Tid(6)]);
        // The aborted deletes are deletable again.
        db.enqueue(UpdateBatch::delete_only(vec![Tid(0)])).unwrap();
    }

    #[test]
    fn stage_unknown_or_duplicate_tid_fails_atomically() {
        let mut db = ShardedDb::from_transactions(ShardSpec::striped(4), txs(4)).unwrap();
        let err = db
            .stage(UpdateBatch::delete_only(vec![Tid(1), Tid(99)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(99)));
        assert_eq!(db.len(), 4);
        let err = db
            .stage(UpdateBatch::delete_only(vec![Tid(1), Tid(1)]))
            .unwrap_err();
        assert_eq!(err, Error::UnknownTransaction(Tid(1)));
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn scan_order_concatenates_shards_and_chunks_agree() {
        let db = ShardedDb::from_transactions(ShardSpec::striped_with(3, 2), txs(17)).unwrap();
        let mut pass = Vec::new();
        db.for_each(&mut |t| pass.push(t.to_vec()));
        assert_eq!(pass.len(), 17);
        // Chunked pass delivers the same rows in the same order, and the
        // tid-offset arithmetic stays consistent across shard seams.
        for chunk_size in [1, 2, 3, 5, 20] {
            let mut scratch = ChunkScratch::new();
            let mut chunked = Vec::new();
            for index in 0..db.plan_chunks(chunk_size) {
                let offset = db.chunk_tid_offset(chunk_size, index);
                let chunk = db.chunk(chunk_size, index, &mut scratch);
                for (i, t) in chunk.iter().enumerate() {
                    assert_eq!(chunked.len() as u64, offset + i as u64);
                    chunked.push(t.to_vec());
                }
            }
            assert_eq!(chunked, pass, "chunk_size {chunk_size}");
        }
        // Partition boundaries tile the chunk plan, one per shard.
        let parts = db.chunk_partitions(2);
        assert_eq!(parts.len(), 3);
        assert_eq!(*parts.last().unwrap(), db.plan_chunks(2));
    }

    #[test]
    fn recovery_round_trips_and_respects_any_spec() {
        let mut db = ShardedDb::from_transactions(ShardSpec::striped_with(2, 2), txs(10)).unwrap();
        let staged = db
            .stage(UpdateBatch::delete_only(vec![Tid(3), Tid(4)]))
            .unwrap();
        db.commit(staged);
        let view = db.live_view();
        let mut pairs: Vec<(Tid, Transaction)> =
            db.iter().map(|(tid, t)| (tid, t.clone())).collect();
        pairs.sort_unstable_by_key(|&(tid, _)| tid);
        // Recover under a *different* shard count: same live set, same view.
        let recovered = ShardedDb::from_recovered(
            ShardSpec::striped_with(4, 1),
            pairs,
            view.watermark(),
            view.tombstones_sorted(),
            db.next_segment(),
        )
        .unwrap();
        assert_eq!(recovered.len(), db.len());
        assert_eq!(recovered.live_view(), view);
        assert!(recovered.is_tid_ordered());
        for (tid, t) in db.iter() {
            assert_eq!(recovered.get(tid), Some(t));
        }
    }

    #[test]
    fn single_shard_behaves_like_flat() {
        let rows = txs(9);
        let mut sharded =
            ShardedDb::from_transactions(ShardSpec::striped(1), rows.clone()).unwrap();
        let mut flat = SegmentedDb::from_transactions(rows);
        let batch = UpdateBatch {
            inserts: txs(2),
            deletes: vec![Tid(2)],
        };
        let ss = sharded.stage(batch.clone()).unwrap();
        let fs = flat.stage(batch).unwrap();
        let (_, ts) = sharded.commit(ss);
        let (_, tf) = flat.commit(fs);
        assert_eq!(ts, tf);
        let collect = |src: &dyn TransactionSource| {
            let mut v = Vec::new();
            src.for_each(&mut |t| v.push(t.to_vec()));
            v
        };
        assert_eq!(collect(&sharded), collect(&flat));
    }

    #[test]
    fn rebalance_to_reports_moved_ranges() {
        // 2 → 3 striped shards, stripe 4, 16 existing tids.
        let old = ShardSpec::striped_with(2, 4);
        let new = ShardSpec::striped_with(3, 4);
        let moves = old.rebalance_to(&new, 16).unwrap();
        // Stripe owners: old 0,1,0,1 — new 0,1,2,0. Stripes 2 and 3 move.
        assert_eq!(
            moves,
            vec![
                RangeMove {
                    range: TidRange::new(8, 12),
                    from: 0,
                    to: 2
                },
                RangeMove {
                    range: TidRange::new(12, 16),
                    from: 1,
                    to: 0
                },
            ]
        );
        // Every reported move agrees with pointwise routing, and every
        // unmoved tid routes identically under both specs.
        for tid in 0..16 {
            let moved = moves.iter().find(|m| m.range.contains(Tid(tid)));
            match moved {
                Some(m) => {
                    assert_eq!(old.shard_of(Tid(tid)), m.from);
                    assert_eq!(new.shard_of(Tid(tid)), m.to);
                }
                None => assert_eq!(old.shard_of(Tid(tid)), new.shard_of(Tid(tid))),
            }
        }
    }

    #[test]
    fn rebalance_to_identical_specs_moves_nothing() {
        let spec = ShardSpec::striped_with(4, 8);
        assert_eq!(spec.rebalance_to(&spec.clone(), 1000).unwrap(), vec![]);
        // Zero watermark: nothing exists, nothing moves, even across
        // different shard counts.
        let other = ShardSpec::striped_with(2, 8);
        assert_eq!(spec.rebalance_to(&other, 0).unwrap(), vec![]);
    }

    #[test]
    fn rebalance_to_ranges_coalesces_adjacent_moves() {
        let old = ShardSpec::ranges([TidRange::new(0, 10), TidRange::new(10, u64::MAX)]);
        // New spec hands everything to shard 0 (single shard).
        let new = ShardSpec::ranges([TidRange::new(0, u64::MAX)]);
        let moves = old.rebalance_to(&new, 30).unwrap();
        assert_eq!(
            moves,
            vec![RangeMove {
                range: TidRange::new(10, 30),
                from: 1,
                to: 0
            }]
        );
    }

    #[test]
    fn rebalance_to_validates_both_specs() {
        let good = ShardSpec::striped(2);
        let bad = ShardSpec::striped_with(0, 4);
        assert_eq!(good.rebalance_to(&bad, 10), Err(SpecError::NoShards));
        assert_eq!(bad.rebalance_to(&good, 10), Err(SpecError::NoShards));
    }
}

//! Paged storage simulation.
//!
//! The paper evaluated on databases resident on an RS/6000's disks; scan
//! cost is proportional to pages read. [`PagedStore`] packs encoded
//! transactions into fixed-size pages (default 4 KiB) and charges
//! pages/bytes to its [`ScanMetrics`] on every pass, so experiments can
//! report I/O volume alongside wall-clock time. This is the documented
//! substitution for real disk I/O (DESIGN.md §2).

use crate::codec;
use crate::error::{Error, Result};
use crate::item::ItemId;
use crate::scan::ScanMetrics;
use crate::source::TransactionSource;
use crate::transaction::Transaction;

/// Default page size: 4 KiB, a common database block size.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Per-page header: u16 count of transactions in the page.
const PAGE_HEADER: usize = 2;

/// A fixed-size page of encoded transactions.
#[derive(Debug, Clone)]
struct Page {
    /// Encoded bytes (header + payload), `len() <= page_size`.
    data: Vec<u8>,
    /// Number of transactions encoded in the page.
    count: u16,
}

/// An append-only, paged transaction store.
///
/// Transactions are varint/delta encoded ([`crate::codec`]) and packed
/// first-fit into pages. Scans decode pages sequentially, charging one page
/// read plus the page's bytes per page.
#[derive(Debug)]
pub struct PagedStore {
    pages: Vec<Page>,
    /// `page_first_txn[p]` = global index of the first transaction stored
    /// in page `p`; lets chunked scans locate a transaction's page in
    /// `O(log pages)`.
    page_first_txn: Vec<u64>,
    page_size: usize,
    num_transactions: u64,
    metrics: ScanMetrics,
}

impl Default for PagedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PagedStore {
    /// Creates an empty store with the default 4 KiB page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty store with a custom page size (min 8 bytes).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(
            page_size > PAGE_HEADER + codec::MAX_VARINT_LEN,
            "page size too small"
        );
        PagedStore {
            pages: Vec::new(),
            page_first_txn: Vec::new(),
            page_size,
            num_transactions: 0,
            metrics: ScanMetrics::new(),
        }
    }

    /// Builds a store from transactions.
    pub fn from_transactions<'a, I>(iter: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        let mut store = PagedStore::new();
        for t in iter {
            store.append(t)?;
        }
        Ok(store)
    }

    /// Appends one transaction, starting a new page when the current one is
    /// full. Fails if the encoded transaction cannot fit in an empty page.
    pub fn append(&mut self, t: &Transaction) -> Result<()> {
        let need = codec::encoded_len(t.items());
        let capacity = self.page_size - PAGE_HEADER;
        if need > capacity {
            return Err(Error::TransactionTooLarge {
                encoded_len: need,
                page_capacity: capacity,
            });
        }
        let fits = self
            .pages
            .last()
            .map(|p| p.data.len() + need <= self.page_size)
            .unwrap_or(false);
        if !fits {
            let mut data = Vec::with_capacity(self.page_size);
            data.extend_from_slice(&0u16.to_le_bytes());
            self.pages.push(Page { data, count: 0 });
            self.page_first_txn.push(self.num_transactions);
        }
        let page = self.pages.last_mut().expect("page exists");
        codec::encode_transaction(&mut page.data, t.items());
        page.count += 1;
        let count_bytes = page.count.to_le_bytes();
        page.data[0] = count_bytes[0];
        page.data[1] = count_bytes[1];
        self.num_transactions += 1;
        Ok(())
    }

    /// Number of pages currently allocated.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The raw bytes of page `idx` (header + encoded transactions) — the
    /// exact on-"disk" image the durable checkpoint format embeds.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_pages()`.
    pub fn page_bytes(&self, idx: usize) -> &[u8] {
        &self.pages[idx].data
    }

    /// Rebuilds a store from raw page images (as produced by
    /// [`page_bytes`](Self::page_bytes)), validating that every page
    /// decodes. The durable checkpoint reader uses this to restore the
    /// live transactions without re-encoding them.
    pub fn from_encoded_pages<I>(page_size: usize, pages: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let mut store = PagedStore::with_page_size(page_size);
        let mut items: Vec<ItemId> = Vec::new();
        for (idx, data) in pages.into_iter().enumerate() {
            if data.len() < PAGE_HEADER || data.len() > page_size {
                return Err(Error::Corrupt {
                    reason: format!("page {idx} has invalid length {}", data.len()),
                    offset: None,
                });
            }
            let count = u16::from_le_bytes([data[0], data[1]]);
            let mut pos = PAGE_HEADER;
            for _ in 0..count {
                codec::decode_transaction(&data, &mut pos, &mut items)?;
            }
            if pos != data.len() {
                return Err(Error::Corrupt {
                    reason: format!("page {idx} has trailing bytes"),
                    offset: Some(pos),
                });
            }
            store.page_first_txn.push(store.num_transactions);
            store.num_transactions += u64::from(count);
            store.pages.push(Page { data, count });
        }
        Ok(store)
    }

    /// Total encoded bytes across all pages (excluding slack).
    pub fn encoded_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.data.len() as u64).sum()
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Decodes every transaction back out (charging a scan), primarily for
    /// verification and for materialising trimmed copies.
    pub fn to_transactions(&self) -> Result<Vec<Transaction>> {
        let mut out = Vec::with_capacity(self.num_transactions as usize);
        let mut failed = None;
        self.for_each_fallible(&mut |items| {
            out.push(Transaction::from_sorted_vec(items.to_vec()));
        })
        .inspect_err(|e| {
            failed = Some(e.clone());
        })?;
        Ok(out)
    }

    fn for_each_fallible(&self, f: &mut dyn FnMut(&[ItemId])) -> Result<()> {
        self.metrics.record_full_scan();
        let mut items: Vec<ItemId> = Vec::new();
        for page in &self.pages {
            self.metrics.record_page();
            self.metrics.record_bytes(page.data.len() as u64);
            let mut pos = PAGE_HEADER;
            for _ in 0..page.count {
                codec::decode_transaction(&page.data, &mut pos, &mut items)?;
                self.metrics.record_transaction(items.len());
                f(&items);
            }
        }
        Ok(())
    }
}

impl TransactionSource for PagedStore {
    fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// # Panics
    ///
    /// Panics if a page is corrupt. Pages are only written by
    /// [`PagedStore::append`], so corruption here indicates an internal bug;
    /// use [`PagedStore::to_transactions`] for fallible decoding.
    fn for_each(&self, f: &mut dyn FnMut(&[ItemId])) {
        self.for_each_fallible(f).expect("internal page corruption");
    }

    fn metrics(&self) -> &ScanMetrics {
        &self.metrics
    }

    /// Chunks decode into the scratch arena. Every page touched is charged
    /// (page + bytes), so a chunk boundary falling mid-page charges that
    /// page to both adjacent chunks — faithfully modelling two workers each
    /// reading the block.
    ///
    /// # Panics
    ///
    /// Panics if a page is corrupt (see [`PagedStore::for_each`]).
    fn chunk<'s>(
        &'s self,
        chunk_size: usize,
        index: u64,
        scratch: &'s mut crate::chunk::ChunkScratch,
    ) -> crate::chunk::TxChunk<'s> {
        let (start, end) = crate::source::chunk_bounds(self.num_transactions(), chunk_size, index);
        scratch.clear();
        if start == end {
            return scratch.as_chunk();
        }
        // Last page whose first transaction is ≤ start.
        let mut page_idx = self
            .page_first_txn
            .partition_point(|&first| first <= start as u64)
            .saturating_sub(1);
        let mut txn = self.page_first_txn[page_idx] as usize;
        let mut items_total = 0u64;
        while txn < end {
            let page = &self.pages[page_idx];
            self.metrics.record_page();
            self.metrics.record_bytes(page.data.len() as u64);
            let mut pos = PAGE_HEADER;
            for _ in 0..page.count {
                if txn >= end {
                    break;
                }
                codec::decode_transaction(&page.data, &mut pos, scratch.tmp_buffer())
                    .expect("internal page corruption");
                if txn >= start {
                    items_total += scratch.tmp_buffer().len() as u64;
                    scratch.push_tmp();
                }
                txn += 1;
            }
            page_idx += 1;
        }
        self.metrics
            .record_transactions((end - start) as u64, items_total);
        scratch.as_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    #[test]
    fn append_and_scan_roundtrip() {
        let txs: Vec<Transaction> = (0..100).map(|i| tx(&[i, i + 1, i + 2, 500 + i])).collect();
        let store = PagedStore::from_transactions(&txs).unwrap();
        assert_eq!(store.num_transactions(), 100);
        let back = store.to_transactions().unwrap();
        assert_eq!(back, txs);
    }

    #[test]
    fn pages_fill_and_roll_over() {
        // Tiny pages force roll-over.
        let mut store = PagedStore::with_page_size(16);
        for i in 0..10 {
            store.append(&tx(&[i, i + 100])).unwrap();
        }
        assert!(store.num_pages() > 1, "expected multiple pages");
        let back = store.to_transactions().unwrap();
        assert_eq!(back.len(), 10);
    }

    #[test]
    fn oversized_transaction_rejected() {
        let mut store = PagedStore::with_page_size(16);
        let big = tx(&(0..100).collect::<Vec<_>>());
        let err = store.append(&big).unwrap_err();
        assert!(matches!(err, Error::TransactionTooLarge { .. }));
        assert_eq!(store.num_transactions(), 0);
    }

    #[test]
    fn scan_charges_pages_and_bytes() {
        let txs: Vec<Transaction> = (0..50).map(|i| tx(&[i, i + 1])).collect();
        let store = PagedStore::from_transactions(&txs).unwrap();
        let mut n = 0u64;
        store.for_each(&mut |_| n += 1);
        assert_eq!(n, 50);
        let m = store.metrics();
        assert_eq!(m.full_scans(), 1);
        assert_eq!(m.transactions_read(), 50);
        assert_eq!(m.pages_read(), store.num_pages() as u64);
        assert_eq!(m.bytes_read(), store.encoded_bytes());
    }

    #[test]
    fn empty_store_scans_nothing() {
        let store = PagedStore::new();
        let mut n = 0;
        store.for_each(&mut |_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(store.num_pages(), 0);
        assert_eq!(store.metrics().full_scans(), 1);
    }

    #[test]
    fn empty_transaction_stored() {
        let mut store = PagedStore::new();
        store.append(&Transaction::empty()).unwrap();
        store.append(&tx(&[7])).unwrap();
        let back = store.to_transactions().unwrap();
        assert_eq!(back[0], Transaction::empty());
        assert_eq!(back[1], tx(&[7]));
    }

    #[test]
    #[should_panic(expected = "page size too small")]
    fn rejects_tiny_page_size() {
        let _ = PagedStore::with_page_size(4);
    }

    #[test]
    fn raw_pages_roundtrip_through_from_encoded_pages() {
        let txs: Vec<Transaction> = (0..80).map(|i| tx(&[i, i + 3, 900 + i])).collect();
        let store = PagedStore::from_transactions(&txs).unwrap();
        let pages: Vec<Vec<u8>> = (0..store.num_pages())
            .map(|p| store.page_bytes(p).to_vec())
            .collect();
        let rebuilt = PagedStore::from_encoded_pages(store.page_size(), pages).unwrap();
        assert_eq!(rebuilt.num_transactions(), 80);
        assert_eq!(rebuilt.to_transactions().unwrap(), txs);
        // Chunked access works on the rebuilt store too.
        let mut scratch = crate::chunk::ChunkScratch::default();
        let chunk = rebuilt.chunk(10, 2, &mut scratch);
        assert_eq!(chunk.len(), 10);
    }

    #[test]
    fn from_encoded_pages_rejects_corruption() {
        let txs: Vec<Transaction> = (0..10).map(|i| tx(&[i, i + 1])).collect();
        let store = PagedStore::from_transactions(&txs).unwrap();
        let good = store.page_bytes(0).to_vec();
        // Truncated page.
        let torn = good[..good.len() - 1].to_vec();
        assert!(PagedStore::from_encoded_pages(store.page_size(), [torn]).is_err());
        // Count header inflated beyond the payload.
        let mut inflated = good.clone();
        inflated[0] = inflated[0].wrapping_add(5);
        assert!(PagedStore::from_encoded_pages(store.page_size(), [inflated]).is_err());
        // Oversized page image.
        let mut oversized = good.clone();
        oversized.resize(store.page_size() + 1, 0);
        assert!(PagedStore::from_encoded_pages(store.page_size(), [oversized]).is_err());
    }
}

//! Chunked scan views.
//!
//! The miners' hot path is a full pass over a [`TransactionSource`]
//! counting candidates per transaction. The classic
//! [`for_each`](crate::TransactionSource::for_each) delivers one
//! transaction per callback, which pins the whole pass to one thread. The
//! chunked API instead partitions a pass into [`TxChunk`]s — stable views
//! of up to `chunk_size` consecutive transactions — that independent
//! workers can claim and process in parallel (see `fup_mining::engine`).
//!
//! A chunk is either a borrowed slice of stored transactions (in-memory
//! stores hand out views without copying) or a run of transactions decoded
//! into a caller-provided [`ChunkScratch`] arena (paged/derived stores).
//! Either way the per-transaction item slices stay valid for as long as
//! the chunk is borrowed, so counting code never re-decodes or re-locks.
//!
//! [`TransactionSource`]: crate::TransactionSource

use crate::item::ItemId;
use crate::segment::Tid;
use crate::transaction::Transaction;

/// Reusable buffers a source decodes chunk data into. One scratch per
/// scanning worker; contents are overwritten by every
/// [`chunk`](crate::TransactionSource::chunk) call that needs an arena.
#[derive(Debug, Default)]
pub struct ChunkScratch {
    /// Flat item arena: transaction `i` occupies
    /// `items[offsets[i] as usize..offsets[i + 1] as usize]`.
    items: Vec<ItemId>,
    /// `n + 1` boundaries into `items`.
    offsets: Vec<u32>,
    /// Per-transaction decode buffer.
    tmp: Vec<ItemId>,
}

impl ChunkScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the arena (buffers keep their capacity).
    pub fn clear(&mut self) {
        self.items.clear();
        self.offsets.clear();
    }

    /// Appends one transaction's items to the arena.
    pub fn push(&mut self, items: &[ItemId]) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.items.extend_from_slice(items);
        debug_assert!(
            self.items.len() <= u32::MAX as usize,
            "chunk arena overflow"
        );
        self.offsets.push(self.items.len() as u32);
    }

    /// Exposes a per-transaction decode buffer (used by paged sources);
    /// call [`ChunkScratch::push`] with its contents afterwards.
    pub fn tmp_buffer(&mut self) -> &mut Vec<ItemId> {
        &mut self.tmp
    }

    /// Pushes the contents of the internal decode buffer as one
    /// transaction.
    pub fn push_tmp(&mut self) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.items.extend_from_slice(&self.tmp);
        debug_assert!(
            self.items.len() <= u32::MAX as usize,
            "chunk arena overflow"
        );
        self.offsets.push(self.items.len() as u32);
    }

    /// Views the arena contents as a chunk.
    pub fn as_chunk(&self) -> TxChunk<'_> {
        TxChunk {
            repr: Repr::Arena {
                items: &self.items,
                offsets: &self.offsets,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Repr<'a> {
    /// Borrowed from a flat in-memory store.
    Transactions(&'a [Transaction]),
    /// Borrowed from a tid-keyed store.
    Pairs(&'a [(Tid, Transaction)]),
    /// Materialised into a scratch arena (`offsets` holds `n + 1`
    /// boundaries, or is empty for a zero-transaction chunk).
    Arena {
        items: &'a [ItemId],
        offsets: &'a [u32],
    },
}

/// A view of up to `chunk_size` consecutive transactions of one pass.
///
/// Every transaction is exposed as its sorted item slice, exactly as
/// [`for_each`](crate::TransactionSource::for_each) would deliver it. The
/// slices are stable for the lifetime of the chunk borrow.
#[derive(Debug, Clone, Copy)]
pub struct TxChunk<'a> {
    repr: Repr<'a>,
}

impl<'a> TxChunk<'a> {
    /// A chunk borrowing stored transactions directly.
    pub fn from_transactions(transactions: &'a [Transaction]) -> Self {
        TxChunk {
            repr: Repr::Transactions(transactions),
        }
    }

    /// A chunk borrowing `(tid, transaction)` pairs directly.
    pub fn from_pairs(pairs: &'a [(Tid, Transaction)]) -> Self {
        TxChunk {
            repr: Repr::Pairs(pairs),
        }
    }

    /// Number of transactions in the chunk.
    pub fn len(&self) -> usize {
        match self.repr {
            Repr::Transactions(t) => t.len(),
            Repr::Pairs(p) => p.len(),
            Repr::Arena { offsets, .. } => offsets.len().saturating_sub(1),
        }
    }

    /// `true` if the chunk holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th transaction's sorted item slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &'a [ItemId] {
        match self.repr {
            Repr::Transactions(t) => t[i].items(),
            Repr::Pairs(p) => p[i].1.items(),
            Repr::Arena { items, offsets } => &items[offsets[i] as usize..offsets[i + 1] as usize],
        }
    }

    /// Total items across the chunk.
    pub fn total_items(&self) -> u64 {
        match self.repr {
            Repr::Transactions(t) => t.iter().map(|x| x.len() as u64).sum(),
            Repr::Pairs(p) => p.iter().map(|(_, x)| x.len() as u64).sum(),
            Repr::Arena { items, .. } => items.len() as u64,
        }
    }

    /// Iterates the transactions' item slices in pass order.
    pub fn iter(&self) -> TxChunkIter<'a> {
        TxChunkIter {
            chunk: *self,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for &TxChunk<'a> {
    type Item = &'a [ItemId];
    type IntoIter = TxChunkIter<'a>;
    fn into_iter(self) -> TxChunkIter<'a> {
        self.iter()
    }
}

/// Iterator over a chunk's transactions.
#[derive(Debug)]
pub struct TxChunkIter<'a> {
    chunk: TxChunk<'a>,
    next: usize,
}

impl<'a> Iterator for TxChunkIter<'a> {
    type Item = &'a [ItemId];

    fn next(&mut self) -> Option<&'a [ItemId]> {
        if self.next >= self.chunk.len() {
            return None;
        }
        let out = self.chunk.get(self.next);
        self.next += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.chunk.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TxChunkIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    #[test]
    fn transactions_repr_round_trips() {
        let txs = vec![tx(&[1, 2]), tx(&[3]), tx(&[])];
        let chunk = TxChunk::from_transactions(&txs);
        assert_eq!(chunk.len(), 3);
        assert!(!chunk.is_empty());
        assert_eq!(chunk.get(0), txs[0].items());
        assert_eq!(chunk.get(2), &[] as &[ItemId]);
        assert_eq!(chunk.total_items(), 3);
        let collected: Vec<_> = chunk.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], txs[1].items());
    }

    #[test]
    fn pairs_repr_round_trips() {
        let pairs = vec![(Tid(0), tx(&[5, 6])), (Tid(9), tx(&[7]))];
        let chunk = TxChunk::from_pairs(&pairs);
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.get(1), pairs[1].1.items());
        assert_eq!(chunk.total_items(), 3);
    }

    #[test]
    fn arena_repr_round_trips() {
        let mut scratch = ChunkScratch::new();
        scratch.push(tx(&[1, 2, 3]).items());
        scratch.push(tx(&[]).items());
        scratch.push(tx(&[9]).items());
        let chunk = scratch.as_chunk();
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.get(0).len(), 3);
        assert_eq!(chunk.get(1).len(), 0);
        assert_eq!(chunk.get(2), tx(&[9]).items());
        assert_eq!(chunk.total_items(), 4);
    }

    #[test]
    fn scratch_clear_resets() {
        let mut scratch = ChunkScratch::new();
        scratch.push(tx(&[1]).items());
        scratch.clear();
        assert!(scratch.as_chunk().is_empty());
        assert_eq!(scratch.as_chunk().total_items(), 0);
        // Reuse after clear.
        scratch.push(tx(&[2, 3]).items());
        assert_eq!(scratch.as_chunk().len(), 1);
    }

    #[test]
    fn empty_chunk_views() {
        let chunk = TxChunk::from_transactions(&[]);
        assert!(chunk.is_empty());
        assert_eq!(chunk.iter().count(), 0);
        let scratch = ChunkScratch::new();
        assert!(scratch.as_chunk().is_empty());
    }
}

//! Mapping between application item names and compact [`ItemId`]s.

use crate::error::{Error, Result};
use crate::item::ItemId;
use std::collections::HashMap;

/// A bidirectional dictionary of item names.
///
/// Algorithms operate on dense [`ItemId`]s; applications usually have SKUs,
/// product names, page URLs, etc. The dictionary interns names on first
/// sight ([`ItemDictionary::intern`]) and resolves them back for display.
#[derive(Debug, Default, Clone)]
pub struct ItemDictionary {
    names: Vec<String>,
    by_name: HashMap<String, ItemId>,
}

impl ItemDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct items interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no item has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its id. Idempotent: the same name always
    /// maps to the same id.
    pub fn intern(&mut self, name: &str) -> Result<ItemId> {
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        let raw = u32::try_from(self.names.len()).map_err(|_| Error::DictionaryFull)?;
        if raw == u32::MAX {
            return Err(Error::DictionaryFull);
        }
        let id = ItemId(raw);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up an existing name without interning.
    pub fn get(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its name.
    pub fn name(&self, id: ItemId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Renders a sorted itemset as `{a, b, c}` using interned names,
    /// falling back to the raw id for unknown items.
    pub fn render_itemset(&self, items: &[ItemId]) -> String {
        let mut out = String::from("{");
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match self.name(*item) {
                Some(n) => out.push_str(n),
                None => out.push_str(&item.raw().to_string()),
            }
        }
        out.push('}');
        out
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ItemId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = ItemDictionary::new();
        let a = d.intern("beer").unwrap();
        let b = d.intern("diapers").unwrap();
        let a2 = d.intern("beer").unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_both_directions() {
        let mut d = ItemDictionary::new();
        let a = d.intern("milk").unwrap();
        assert_eq!(d.get("milk"), Some(a));
        assert_eq!(d.get("nope"), None);
        assert_eq!(d.name(a), Some("milk"));
        assert_eq!(d.name(ItemId(99)), None);
    }

    #[test]
    fn render_itemset_formats_names_and_unknowns() {
        let mut d = ItemDictionary::new();
        let a = d.intern("bread").unwrap();
        let b = d.intern("butter").unwrap();
        assert_eq!(d.render_itemset(&[a, b]), "{bread, butter}");
        assert_eq!(d.render_itemset(&[ItemId(42)]), "{42}");
        assert_eq!(d.render_itemset(&[]), "{}");
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = ItemDictionary::new();
        d.intern("x").unwrap();
        d.intern("y").unwrap();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(ItemId(0), "x"), (ItemId(1), "y")]);
    }

    #[test]
    fn empty_dictionary() {
        let d = ItemDictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}

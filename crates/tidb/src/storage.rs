//! Injectable durable storage.
//!
//! The durability layer (the WAL in [`crate::wal`] and the checkpoints
//! written by `fup_core::durable`) talks to its backing medium through the
//! [`DurableStorage`] trait — a deliberately narrow, flat-namespace file
//! API — so that crash behaviour is *testable*: production code runs on
//! [`DiskStorage`] (a directory of real files with real `fsync`), while
//! the fault-injection harness runs the same code on [`MemStorage`] and
//! kills it at any chosen write, tears the last record, flips bytes, or
//! fails `fsync` — then recovers from exactly the bytes a real crash
//! would have left behind.
//!
//! ## Crash semantics
//!
//! * [`append`](DurableStorage::append) may persist any *prefix* of the
//!   appended bytes when the process dies mid-write (torn tail). It never
//!   reorders or drops earlier bytes.
//! * [`write_atomic`](DurableStorage::write_atomic) is all-or-nothing: a
//!   crash leaves either the old content (or absence) or the complete new
//!   content, never a torn file. `DiskStorage` implements this with the
//!   classic write-temp + `fsync` + `rename` + directory-`fsync` dance.
//! * [`sync`](DurableStorage::sync) is the durability barrier: appended
//!   bytes survive a crash only once a later `sync` on the same file
//!   returned `Ok`.
//!
//! Once any operation on a storage handle fails, the caller must treat
//! the session as crashed; [`MemStorage`] enforces this by failing every
//! subsequent mutation after an injected fault fires.

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// A flat namespace of durable files: the medium under the WAL and
/// checkpoints. See the [module docs](self) for crash semantics.
pub trait DurableStorage: Send + Sync + std::fmt::Debug {
    /// Appends `bytes` to `file`, creating it if absent. On a crash, any
    /// prefix of `bytes` may have been persisted.
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()>;

    /// Durability barrier: everything previously appended to `file`
    /// survives a crash once this returns `Ok`.
    fn sync(&self, file: &str) -> Result<()>;

    /// Atomically replaces (or creates) `file` with `content` — a crash
    /// leaves either the old state or the complete new content.
    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()>;

    /// Reads a whole file; `Ok(None)` if it does not exist.
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>>;

    /// Lists every file name in the namespace, in unspecified order.
    fn list(&self) -> Result<Vec<String>>;

    /// Removes `file`; removing a non-existent file is not an error.
    fn remove(&self, file: &str) -> Result<()>;
}

fn io_err(op: &'static str, file: &str, e: impl std::fmt::Display) -> Error {
    Error::Io {
        op,
        file: file.to_string(),
        reason: e.to_string(),
    }
}

/// Validates that a name stays inside the flat namespace (no path
/// separators, no traversal) — the durability layer only ever generates
/// such names, so a violation is a caller bug.
fn check_name(op: &'static str, file: &str) -> Result<()> {
    let bad =
        file.is_empty() || file == "." || file == ".." || file.contains('/') || file.contains('\\');
    if bad {
        return Err(io_err(op, file, "invalid file name for flat storage"));
    }
    Ok(())
}

// ---------------------------------------------------------------- disk --

/// [`DurableStorage`] over a real directory: one file per name, appends
/// through a cached handle, `sync_data` as the barrier, and atomic
/// replace via temp-file + rename (+ directory fsync).
#[derive(Debug)]
pub struct DiskStorage {
    dir: PathBuf,
    /// Cached append handles, so a WAL append is one `write` syscall.
    handles: Mutex<HashMap<String, fs::File>>,
}

impl DiskStorage {
    /// Opens (creating if needed) `dir` as a durable namespace.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("open", &dir.to_string_lossy(), e))?;
        Ok(DiskStorage {
            dir,
            handles: Mutex::new(HashMap::new()),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Fsyncs the directory itself so renames/removals are durable.
    fn sync_dir(&self) -> Result<()> {
        let d = fs::File::open(&self.dir)
            .map_err(|e| io_err("sync", &self.dir.to_string_lossy(), e))?;
        d.sync_all()
            .map_err(|e| io_err("sync", &self.dir.to_string_lossy(), e))
    }
}

impl DurableStorage for DiskStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()> {
        check_name("append", file)?;
        let mut handles = self.handles.lock().expect("disk handles poisoned");
        if !handles.contains_key(file) {
            let h = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(file))
                .map_err(|e| io_err("append", file, e))?;
            handles.insert(file.to_string(), h);
        }
        let h = handles.get_mut(file).expect("inserted above");
        h.write_all(bytes).map_err(|e| io_err("append", file, e))
    }

    fn sync(&self, file: &str) -> Result<()> {
        check_name("sync", file)?;
        let handles = self.handles.lock().expect("disk handles poisoned");
        match handles.get(file) {
            Some(h) => h.sync_data().map_err(|e| io_err("sync", file, e)),
            // Nothing appended through us yet — nothing to make durable.
            None => Ok(()),
        }
    }

    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()> {
        check_name("write_atomic", file)?;
        let tmp_name = format!("{file}.tmp");
        let tmp = self.path(&tmp_name);
        {
            let mut h = fs::File::create(&tmp).map_err(|e| io_err("write_atomic", file, e))?;
            h.write_all(content)
                .map_err(|e| io_err("write_atomic", file, e))?;
            h.sync_data().map_err(|e| io_err("write_atomic", file, e))?;
        }
        fs::rename(&tmp, self.path(file)).map_err(|e| io_err("write_atomic", file, e))?;
        // Drop any stale append handle: the inode changed.
        self.handles
            .lock()
            .expect("disk handles poisoned")
            .remove(file);
        self.sync_dir()
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>> {
        check_name("read", file)?;
        match fs::read(self.path(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", file, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err("list", &self.dir.to_string_lossy(), e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", &self.dir.to_string_lossy(), e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    // In-flight temp files are not part of the namespace.
                    if !name.ends_with(".tmp") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        Ok(names)
    }

    fn remove(&self, file: &str) -> Result<()> {
        check_name("remove", file)?;
        self.handles
            .lock()
            .expect("disk handles poisoned")
            .remove(file);
        match fs::remove_file(self.path(file)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", file, e)),
        }
    }
}

// -------------------------------------------------- in-memory + faults --

/// A pending fault: fire after `after` more counted operations.
#[derive(Debug, Clone, Copy)]
struct FaultPlan {
    /// Counted (mutating) operations left before the fault fires.
    after: u64,
    /// When the faulted operation is an `append`, persist this many bytes
    /// of it before dying — the torn-tail knob.
    tear_bytes: usize,
}

#[derive(Debug, Default)]
struct MemInner {
    files: HashMap<String, Vec<u8>>,
    plan: Option<FaultPlan>,
    /// Set once a fault fired: the "process" is dead, every further
    /// mutation fails (recovery clears this via [`MemStorage::revive`]).
    dead: bool,
    fail_sync: bool,
    faults_fired: u64,
    /// Per-file length at the last successful `sync` (atomically written
    /// files count as synced in full) — the durable prefix a
    /// power-loss crash image keeps.
    synced_len: HashMap<String, usize>,
    sync_calls: u64,
}

/// In-memory [`DurableStorage`] with fault injection: the crash-recovery
/// harness. Configure a kill point with [`fail_after`](MemStorage::fail_after)
/// (optionally tearing the fatal append), or make `sync` fail with
/// [`set_fail_sync`](MemStorage::set_fail_sync); inspect and mutate the
/// surviving bytes with [`file`](MemStorage::file) /
/// [`truncate_file`](MemStorage::truncate_file) /
/// [`flip_byte`](MemStorage::flip_byte), and resurrect the namespace for
/// recovery with [`revive`](MemStorage::revive).
#[derive(Debug, Default)]
pub struct MemStorage {
    inner: Mutex<MemInner>,
}

impl MemStorage {
    /// An empty namespace with no faults planned.
    pub fn new() -> Self {
        Self::default()
    }

    /// A namespace pre-populated with `files` — typically a crash image
    /// captured from another `MemStorage`.
    pub fn from_files(files: HashMap<String, Vec<u8>>) -> Self {
        // An image handed to a fresh namespace is, by definition, what
        // survived: everything in it counts as durable.
        let synced_len = files.iter().map(|(k, v)| (k.clone(), v.len())).collect();
        MemStorage {
            inner: Mutex::new(MemInner {
                files,
                synced_len,
                ..Default::default()
            }),
        }
    }

    /// Plans a kill: after `after` more successful mutating operations
    /// (`append`, `write_atomic`, `remove`, and `sync`), the next one
    /// fails. If the fatal operation is an `append`, `tear_bytes` of its
    /// payload are persisted first (a torn tail). After the fault fires,
    /// every further mutation fails until [`revive`](Self::revive).
    pub fn fail_after(&self, after: u64, tear_bytes: usize) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        inner.plan = Some(FaultPlan { after, tear_bytes });
    }

    /// Makes every `sync` fail (without killing the storage) until turned
    /// off — models an fsync error the kernel reports but the file data
    /// having been written.
    pub fn set_fail_sync(&self, fail: bool) {
        self.inner.lock().expect("mem storage poisoned").fail_sync = fail;
    }

    /// Clears the dead flag and any pending fault plan: the "restarted
    /// process" sees exactly the bytes the crash left behind.
    pub fn revive(&self) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        inner.dead = false;
        inner.plan = None;
        inner.fail_sync = false;
    }

    /// Number of injected faults that have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.inner
            .lock()
            .expect("mem storage poisoned")
            .faults_fired
    }

    /// A copy of one file's bytes, if present.
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .get(name)
            .cloned()
    }

    /// A copy of the whole namespace (a crash image). Models a crash
    /// where the page cache survived (or every append was written
    /// through): un-synced appended bytes are still present. For the
    /// power-loss image that keeps only fsynced bytes, use
    /// [`synced_files`](Self::synced_files).
    pub fn files(&self) -> HashMap<String, Vec<u8>> {
        self.inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .clone()
    }

    /// A power-loss crash image: every file truncated to its length at
    /// the last successful `sync` (atomically-written files count in
    /// full; never-synced append-only files come back empty). Group
    /// commit's relaxed guarantee is exactly that the bytes between this
    /// image and [`files`](Self::files) may be lost.
    pub fn synced_files(&self) -> HashMap<String, Vec<u8>> {
        let inner = self.inner.lock().expect("mem storage poisoned");
        inner
            .files
            .iter()
            .map(|(name, bytes)| {
                let keep = inner.synced_len.get(name).copied().unwrap_or(0);
                (name.clone(), bytes[..keep.min(bytes.len())].to_vec())
            })
            .collect()
    }

    /// Number of successful `sync` calls so far — the group-commit tests
    /// assert fsync cadence with this.
    pub fn sync_calls(&self) -> u64 {
        self.inner.lock().expect("mem storage poisoned").sync_calls
    }

    /// Truncates `name` to `len` bytes (no-op if shorter) — simulates a
    /// torn tail after the fact.
    pub fn truncate_file(&self, name: &str, len: usize) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if let Some(bytes) = inner.files.get_mut(name) {
            bytes.truncate(len);
        }
    }

    /// Flips every bit of byte `offset` in `name` — simulates media
    /// corruption.
    pub fn flip_byte(&self, name: &str, offset: usize) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if let Some(b) = inner.files.get_mut(name).and_then(|f| f.get_mut(offset)) {
            *b = !*b;
        }
    }

    /// Counts one mutating operation against the fault plan. Returns
    /// `Err` (and marks the storage dead) when the fault fires; the
    /// caller decides what partial effect (torn append) to apply first.
    fn count_op(inner: &mut MemInner, op: &'static str, file: &str) -> Result<Option<usize>> {
        if inner.dead {
            return Err(io_err(op, file, "storage killed by injected fault"));
        }
        if let Some(plan) = &mut inner.plan {
            if plan.after == 0 {
                let tear = plan.tear_bytes;
                inner.plan = None;
                inner.dead = true;
                inner.faults_fired += 1;
                return Ok(Some(tear));
            }
            plan.after -= 1;
        }
        Ok(None)
    }
}

impl DurableStorage for MemStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()> {
        check_name("append", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        match Self::count_op(&mut inner, "append", file)? {
            Some(tear) => {
                let keep = tear.min(bytes.len());
                inner
                    .files
                    .entry(file.to_string())
                    .or_default()
                    .extend_from_slice(&bytes[..keep]);
                Err(io_err(
                    "append",
                    file,
                    "killed mid-append by injected fault",
                ))
            }
            None => {
                inner
                    .files
                    .entry(file.to_string())
                    .or_default()
                    .extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self, file: &str) -> Result<()> {
        check_name("sync", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if inner.fail_sync {
            return Err(io_err("sync", file, "fsync failure injected"));
        }
        if Self::count_op(&mut inner, "sync", file)?.is_some() {
            return Err(io_err("sync", file, "killed at fsync by injected fault"));
        }
        let len = inner.files.get(file).map_or(0, Vec::len);
        inner.synced_len.insert(file.to_string(), len);
        inner.sync_calls += 1;
        Ok(())
    }

    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()> {
        check_name("write_atomic", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if Self::count_op(&mut inner, "write_atomic", file)?.is_some() {
            // All-or-nothing: a killed atomic write leaves the old state.
            return Err(io_err("write_atomic", file, "killed by injected fault"));
        }
        inner.files.insert(file.to_string(), content.to_vec());
        inner.synced_len.insert(file.to_string(), content.len());
        Ok(())
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>> {
        check_name("read", file)?;
        Ok(self
            .inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .get(file)
            .cloned())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .keys()
            .cloned()
            .collect())
    }

    fn remove(&self, file: &str) -> Result<()> {
        check_name("remove", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if Self::count_op(&mut inner, "remove", file)?.is_some() {
            // Crash before the unlink: the file survives.
            return Err(io_err("remove", file, "killed by injected fault"));
        }
        inner.files.remove(file);
        inner.synced_len.remove(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_appends_reads_and_lists() {
        let s = MemStorage::new();
        s.append("a", b"he").unwrap();
        s.append("a", b"llo").unwrap();
        s.sync("a").unwrap();
        s.write_atomic("b", b"world").unwrap();
        assert_eq!(s.read("a").unwrap().unwrap(), b"hello");
        assert_eq!(s.read("b").unwrap().unwrap(), b"world");
        assert_eq!(s.read("missing").unwrap(), None);
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        s.remove("a").unwrap();
        assert_eq!(s.read("a").unwrap(), None);
        s.remove("a").unwrap(); // idempotent
    }

    #[test]
    fn mem_fault_kills_and_tears() {
        let s = MemStorage::new();
        s.append("wal", b"aaaa").unwrap();
        // Fault after 1 more op, tearing 2 bytes of the fatal append.
        s.fail_after(1, 2);
        s.append("wal", b"bbbb").unwrap();
        let err = s.append("wal", b"cccc").unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
        // The torn prefix survived; everything after the kill fails.
        assert_eq!(s.file("wal").unwrap(), b"aaaabbbbcc");
        assert!(s.append("wal", b"d").is_err());
        assert!(s.sync("wal").is_err());
        assert!(s.write_atomic("x", b"y").is_err());
        assert_eq!(s.faults_fired(), 1);
        // Reads still work (recovery inspects the crash image)...
        assert_eq!(s.read("wal").unwrap().unwrap(), b"aaaabbbbcc");
        // ...and revive restores a working namespace with the same bytes.
        s.revive();
        s.append("wal", b"d").unwrap();
        assert_eq!(s.file("wal").unwrap(), b"aaaabbbbccd");
    }

    #[test]
    fn mem_atomic_write_is_all_or_nothing_under_fault() {
        let s = MemStorage::new();
        s.write_atomic("ckpt", b"old").unwrap();
        s.fail_after(0, 0);
        assert!(s.write_atomic("ckpt", b"new-content").is_err());
        assert_eq!(s.file("ckpt").unwrap(), b"old");
    }

    #[test]
    fn mem_fail_sync_leaves_data_but_reports_error() {
        let s = MemStorage::new();
        s.set_fail_sync(true);
        s.append("wal", b"abc").unwrap();
        assert!(s.sync("wal").is_err());
        assert_eq!(s.file("wal").unwrap(), b"abc");
        s.set_fail_sync(false);
        s.sync("wal").unwrap();
    }

    #[test]
    fn mem_corruption_helpers() {
        let s = MemStorage::new();
        s.append("f", b"\x00\x01\x02\x03").unwrap();
        s.flip_byte("f", 1);
        assert_eq!(s.file("f").unwrap(), vec![0x00, 0xfe, 0x02, 0x03]);
        s.truncate_file("f", 2);
        assert_eq!(s.file("f").unwrap(), vec![0x00, 0xfe]);
        // Out-of-range offsets are ignored.
        s.flip_byte("f", 99);
        s.truncate_file("f", 99);
        assert_eq!(s.file("f").unwrap().len(), 2);
    }

    #[test]
    fn synced_files_keep_only_the_fsynced_prefix() {
        let s = MemStorage::new();
        s.append("wal", b"aaaa").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b"bbbb").unwrap(); // buffered, never synced
        s.write_atomic("ckpt", b"image").unwrap(); // atomically durable
        s.append("fresh", b"cccc").unwrap(); // never synced at all
        assert_eq!(s.sync_calls(), 1);

        let cache_alive = s.files();
        assert_eq!(cache_alive["wal"], b"aaaabbbb");

        let power_loss = s.synced_files();
        assert_eq!(power_loss["wal"], b"aaaa");
        assert_eq!(power_loss["ckpt"], b"image");
        assert_eq!(power_loss["fresh"], b"");

        // A later sync makes the buffered tail durable.
        s.sync("wal").unwrap();
        assert_eq!(s.synced_files()["wal"], b"aaaabbbb");

        // An image handed to a new namespace is durable in full.
        let restored = MemStorage::from_files(power_loss);
        assert_eq!(restored.synced_files()["wal"], b"aaaa");
    }

    #[test]
    fn names_with_separators_are_rejected() {
        let s = MemStorage::new();
        assert!(s.append("../evil", b"x").is_err());
        assert!(s.read("a/b").is_err());
        assert!(s.remove("..").is_err());
    }

    #[test]
    fn disk_storage_round_trips_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!(
            "fup-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let s = DiskStorage::open(&dir).unwrap();
        s.append("wal-0", b"abc").unwrap();
        s.append("wal-0", b"def").unwrap();
        s.sync("wal-0").unwrap();
        s.write_atomic("ckpt-0", b"manifest").unwrap();
        assert_eq!(s.read("wal-0").unwrap().unwrap(), b"abcdef");
        assert_eq!(s.read("ckpt-0").unwrap().unwrap(), b"manifest");
        assert_eq!(s.read("nope").unwrap(), None);
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["ckpt-0", "wal-0"]);
        // Atomic replace, then append continues on the new inode.
        s.write_atomic("wal-0", b"reset").unwrap();
        s.append("wal-0", b"!").unwrap();
        assert_eq!(s.read("wal-0").unwrap().unwrap(), b"reset!");
        s.remove("wal-0").unwrap();
        assert_eq!(s.read("wal-0").unwrap(), None);
        s.remove("wal-0").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Injectable durable storage.
//!
//! The durability layer (the WAL in [`crate::wal`] and the checkpoints
//! written by `fup_core::durable`) talks to its backing medium through the
//! [`DurableStorage`] trait — a deliberately narrow, flat-namespace file
//! API — so that crash behaviour is *testable*: production code runs on
//! [`DiskStorage`] (a directory of real files with real `fsync`), while
//! the fault-injection harness runs the same code on [`MemStorage`] and
//! kills it at any chosen write, tears the last record, flips bytes, or
//! fails `fsync` — then recovers from exactly the bytes a real crash
//! would have left behind.
//!
//! ## Crash semantics
//!
//! * [`append`](DurableStorage::append) may persist any *prefix* of the
//!   appended bytes when the process dies mid-write (torn tail). It never
//!   reorders or drops earlier bytes.
//! * [`write_atomic`](DurableStorage::write_atomic) is all-or-nothing: a
//!   crash leaves either the old content (or absence) or the complete new
//!   content, never a torn file. `DiskStorage` implements this with the
//!   classic write-temp + `fsync` + `rename` + directory-`fsync` dance.
//! * [`sync`](DurableStorage::sync) is the durability barrier: appended
//!   bytes survive a crash only once a later `sync` on the same file
//!   returned `Ok`.
//!
//! ## Fault taxonomy
//!
//! Every failure carries a [`FaultKind`]: **permanent** faults mean the
//! caller must treat the session as crashed — [`MemStorage`] enforces
//! this by failing every subsequent mutation after an injected kill
//! fires — while **transient** faults (an interrupted syscall, a
//! timeout, `ENOSPC` that an operator can clear) may be retried with
//! backoff. [`DiskStorage`] classifies real OS errors;
//! [`FlakyStorage`] wraps any storage and injects scripted *transient*
//! faults (fail the next N ops of a class, then heal) — the harness for
//! the retry/degrade/self-heal machinery in `fup_core`, complementing
//! `MemStorage`'s terminal kills.

use crate::error::{Error, FaultKind, Result};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// A flat namespace of durable files: the medium under the WAL and
/// checkpoints. See the [module docs](self) for crash semantics.
pub trait DurableStorage: Send + Sync + std::fmt::Debug {
    /// Appends `bytes` to `file`, creating it if absent. On a crash, any
    /// prefix of `bytes` may have been persisted.
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()>;

    /// Durability barrier: everything previously appended to `file`
    /// survives a crash once this returns `Ok`.
    fn sync(&self, file: &str) -> Result<()>;

    /// Atomically replaces (or creates) `file` with `content` — a crash
    /// leaves either the old state or the complete new content.
    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()>;

    /// Reads a whole file; `Ok(None)` if it does not exist.
    fn read(&self, file: &str) -> Result<Option<Vec<u8>>>;

    /// Lists every file name in the namespace, in unspecified order.
    fn list(&self) -> Result<Vec<String>>;

    /// Removes `file`; removing a non-existent file is not an error.
    fn remove(&self, file: &str) -> Result<()>;
}

fn io_err(op: &'static str, file: &str, kind: FaultKind, e: impl std::fmt::Display) -> Error {
    Error::Io {
        op,
        file: file.to_string(),
        kind,
        reason: e.to_string(),
    }
}

/// Classifies an OS error: interruptions, timeouts, contention, and a
/// full disk may clear on their own; everything else (not-found,
/// permission, invalid data, …) is permanent.
fn classify_os(e: &std::io::Error) -> FaultKind {
    use std::io::ErrorKind;
    // ENOSPC (28 on Linux) is the canonical "clears when the operator
    // frees space" fault; match the raw errno so the classification does
    // not depend on `ErrorKind::StorageFull` stabilization.
    if e.raw_os_error() == Some(28) {
        return FaultKind::Transient;
    }
    match e.kind() {
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            FaultKind::Transient
        }
        _ => FaultKind::Permanent,
    }
}

/// Builds an [`Error::Io`] from a real OS error, classified.
fn os_err(op: &'static str, file: &str, e: std::io::Error) -> Error {
    let kind = classify_os(&e);
    io_err(op, file, kind, e)
}

/// Validates that a name stays inside the flat namespace (no path
/// separators, no traversal) — the durability layer only ever generates
/// such names, so a violation is a caller bug.
fn check_name(op: &'static str, file: &str) -> Result<()> {
    let bad =
        file.is_empty() || file == "." || file == ".." || file.contains('/') || file.contains('\\');
    if bad {
        return Err(io_err(
            op,
            file,
            FaultKind::Permanent,
            "invalid file name for flat storage",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------- disk --

/// [`DurableStorage`] over a real directory: one file per name, appends
/// through a cached handle, `sync_data` as the barrier, and atomic
/// replace via temp-file + rename (+ directory fsync).
#[derive(Debug)]
pub struct DiskStorage {
    dir: PathBuf,
    /// Cached append handles, so a WAL append is one `write` syscall.
    handles: Mutex<HashMap<String, fs::File>>,
}

impl DiskStorage {
    /// Opens (creating if needed) `dir` as a durable namespace.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| os_err("open", &dir.to_string_lossy(), e))?;
        Ok(DiskStorage {
            dir,
            handles: Mutex::new(HashMap::new()),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Fsyncs the directory itself so renames/removals are durable.
    fn sync_dir(&self) -> Result<()> {
        let d = fs::File::open(&self.dir)
            .map_err(|e| os_err("sync", &self.dir.to_string_lossy(), e))?;
        d.sync_all()
            .map_err(|e| os_err("sync", &self.dir.to_string_lossy(), e))
    }
}

impl DurableStorage for DiskStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()> {
        check_name("append", file)?;
        let mut handles = self.handles.lock().expect("disk handles poisoned");
        if !handles.contains_key(file) {
            let h = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(file))
                .map_err(|e| os_err("append", file, e))?;
            handles.insert(file.to_string(), h);
        }
        let h = handles.get_mut(file).expect("inserted above");
        h.write_all(bytes).map_err(|e| os_err("append", file, e))
    }

    fn sync(&self, file: &str) -> Result<()> {
        check_name("sync", file)?;
        let handles = self.handles.lock().expect("disk handles poisoned");
        match handles.get(file) {
            Some(h) => h.sync_data().map_err(|e| os_err("sync", file, e)),
            // Nothing appended through us yet — nothing to make durable.
            None => Ok(()),
        }
    }

    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()> {
        check_name("write_atomic", file)?;
        let tmp_name = format!("{file}.tmp");
        let tmp = self.path(&tmp_name);
        {
            let mut h = fs::File::create(&tmp).map_err(|e| os_err("write_atomic", file, e))?;
            h.write_all(content)
                .map_err(|e| os_err("write_atomic", file, e))?;
            h.sync_data().map_err(|e| os_err("write_atomic", file, e))?;
        }
        fs::rename(&tmp, self.path(file)).map_err(|e| os_err("write_atomic", file, e))?;
        // Drop any stale append handle: the inode changed.
        self.handles
            .lock()
            .expect("disk handles poisoned")
            .remove(file);
        self.sync_dir()
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>> {
        check_name("read", file)?;
        match fs::read(self.path(file)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(os_err("read", file, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let entries =
            fs::read_dir(&self.dir).map_err(|e| os_err("list", &self.dir.to_string_lossy(), e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| os_err("list", &self.dir.to_string_lossy(), e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    // In-flight temp files are not part of the namespace.
                    if !name.ends_with(".tmp") {
                        names.push(name.to_string());
                    }
                }
            }
        }
        Ok(names)
    }

    fn remove(&self, file: &str) -> Result<()> {
        check_name("remove", file)?;
        self.handles
            .lock()
            .expect("disk handles poisoned")
            .remove(file);
        match fs::remove_file(self.path(file)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(os_err("remove", file, e)),
        }
    }
}

// -------------------------------------------------- in-memory + faults --

/// A pending fault: fire after `after` more counted operations.
#[derive(Debug, Clone, Copy)]
struct FaultPlan {
    /// Counted (mutating) operations left before the fault fires.
    after: u64,
    /// When the faulted operation is an `append`, persist this many bytes
    /// of it before dying — the torn-tail knob.
    tear_bytes: usize,
}

#[derive(Debug, Default)]
struct MemInner {
    files: HashMap<String, Vec<u8>>,
    plan: Option<FaultPlan>,
    /// Set once a fault fired: the "process" is dead, every further
    /// mutation fails (recovery clears this via [`MemStorage::revive`]).
    dead: bool,
    fail_sync: bool,
    faults_fired: u64,
    /// Per-file length at the last successful `sync` (atomically written
    /// files count as synced in full) — the durable prefix a
    /// power-loss crash image keeps.
    synced_len: HashMap<String, usize>,
    sync_calls: u64,
}

/// In-memory [`DurableStorage`] with fault injection: the crash-recovery
/// harness. Configure a kill point with [`fail_after`](MemStorage::fail_after)
/// (optionally tearing the fatal append), or make `sync` fail with
/// [`set_fail_sync`](MemStorage::set_fail_sync); inspect and mutate the
/// surviving bytes with [`file`](MemStorage::file) /
/// [`truncate_file`](MemStorage::truncate_file) /
/// [`flip_byte`](MemStorage::flip_byte), and resurrect the namespace for
/// recovery with [`revive`](MemStorage::revive).
#[derive(Debug, Default)]
pub struct MemStorage {
    inner: Mutex<MemInner>,
}

impl MemStorage {
    /// An empty namespace with no faults planned.
    pub fn new() -> Self {
        Self::default()
    }

    /// A namespace pre-populated with `files` — typically a crash image
    /// captured from another `MemStorage`.
    pub fn from_files(files: HashMap<String, Vec<u8>>) -> Self {
        // An image handed to a fresh namespace is, by definition, what
        // survived: everything in it counts as durable.
        let synced_len = files.iter().map(|(k, v)| (k.clone(), v.len())).collect();
        MemStorage {
            inner: Mutex::new(MemInner {
                files,
                synced_len,
                ..Default::default()
            }),
        }
    }

    /// Plans a kill: after `after` more successful mutating operations
    /// (`append`, `write_atomic`, `remove`, and `sync`), the next one
    /// fails. If the fatal operation is an `append`, `tear_bytes` of its
    /// payload are persisted first (a torn tail). After the fault fires,
    /// every further mutation fails until [`revive`](Self::revive).
    pub fn fail_after(&self, after: u64, tear_bytes: usize) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        inner.plan = Some(FaultPlan { after, tear_bytes });
    }

    /// Makes every `sync` fail (without killing the storage) until turned
    /// off — models an fsync error the kernel reports but the file data
    /// having been written.
    pub fn set_fail_sync(&self, fail: bool) {
        self.inner.lock().expect("mem storage poisoned").fail_sync = fail;
    }

    /// Clears the dead flag and any pending fault plan: the "restarted
    /// process" sees exactly the bytes the crash left behind.
    pub fn revive(&self) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        inner.dead = false;
        inner.plan = None;
        inner.fail_sync = false;
    }

    /// Number of injected faults that have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.inner
            .lock()
            .expect("mem storage poisoned")
            .faults_fired
    }

    /// A copy of one file's bytes, if present.
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .get(name)
            .cloned()
    }

    /// A copy of the whole namespace (a crash image). Models a crash
    /// where the page cache survived (or every append was written
    /// through): un-synced appended bytes are still present. For the
    /// power-loss image that keeps only fsynced bytes, use
    /// [`synced_files`](Self::synced_files).
    pub fn files(&self) -> HashMap<String, Vec<u8>> {
        self.inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .clone()
    }

    /// A power-loss crash image: every file truncated to its length at
    /// the last successful `sync` (atomically-written files count in
    /// full; never-synced append-only files come back empty). Group
    /// commit's relaxed guarantee is exactly that the bytes between this
    /// image and [`files`](Self::files) may be lost.
    pub fn synced_files(&self) -> HashMap<String, Vec<u8>> {
        let inner = self.inner.lock().expect("mem storage poisoned");
        inner
            .files
            .iter()
            .map(|(name, bytes)| {
                let keep = inner.synced_len.get(name).copied().unwrap_or(0);
                (name.clone(), bytes[..keep.min(bytes.len())].to_vec())
            })
            .collect()
    }

    /// Number of successful `sync` calls so far — the group-commit tests
    /// assert fsync cadence with this.
    pub fn sync_calls(&self) -> u64 {
        self.inner.lock().expect("mem storage poisoned").sync_calls
    }

    /// Truncates `name` to `len` bytes (no-op if shorter) — simulates a
    /// torn tail after the fact.
    pub fn truncate_file(&self, name: &str, len: usize) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if let Some(bytes) = inner.files.get_mut(name) {
            bytes.truncate(len);
        }
    }

    /// Flips every bit of byte `offset` in `name` — simulates media
    /// corruption.
    pub fn flip_byte(&self, name: &str, offset: usize) {
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if let Some(b) = inner.files.get_mut(name).and_then(|f| f.get_mut(offset)) {
            *b = !*b;
        }
    }

    /// Counts one mutating operation against the fault plan. Returns
    /// `Err` (and marks the storage dead) when the fault fires; the
    /// caller decides what partial effect (torn append) to apply first.
    fn count_op(inner: &mut MemInner, op: &'static str, file: &str) -> Result<Option<usize>> {
        if inner.dead {
            return Err(io_err(
                op,
                file,
                FaultKind::Permanent,
                "storage killed by injected fault",
            ));
        }
        if let Some(plan) = &mut inner.plan {
            if plan.after == 0 {
                let tear = plan.tear_bytes;
                inner.plan = None;
                inner.dead = true;
                inner.faults_fired += 1;
                return Ok(Some(tear));
            }
            plan.after -= 1;
        }
        Ok(None)
    }
}

impl DurableStorage for MemStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()> {
        check_name("append", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        match Self::count_op(&mut inner, "append", file)? {
            Some(tear) => {
                let keep = tear.min(bytes.len());
                inner
                    .files
                    .entry(file.to_string())
                    .or_default()
                    .extend_from_slice(&bytes[..keep]);
                Err(io_err(
                    "append",
                    file,
                    FaultKind::Permanent,
                    "killed mid-append by injected fault",
                ))
            }
            None => {
                inner
                    .files
                    .entry(file.to_string())
                    .or_default()
                    .extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self, file: &str) -> Result<()> {
        check_name("sync", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if inner.fail_sync {
            return Err(io_err(
                "sync",
                file,
                FaultKind::Permanent,
                "fsync failure injected",
            ));
        }
        if Self::count_op(&mut inner, "sync", file)?.is_some() {
            return Err(io_err(
                "sync",
                file,
                FaultKind::Permanent,
                "killed at fsync by injected fault",
            ));
        }
        let len = inner.files.get(file).map_or(0, Vec::len);
        inner.synced_len.insert(file.to_string(), len);
        inner.sync_calls += 1;
        Ok(())
    }

    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()> {
        check_name("write_atomic", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if Self::count_op(&mut inner, "write_atomic", file)?.is_some() {
            // All-or-nothing: a killed atomic write leaves the old state.
            return Err(io_err(
                "write_atomic",
                file,
                FaultKind::Permanent,
                "killed by injected fault",
            ));
        }
        inner.files.insert(file.to_string(), content.to_vec());
        inner.synced_len.insert(file.to_string(), content.len());
        Ok(())
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>> {
        check_name("read", file)?;
        Ok(self
            .inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .get(file)
            .cloned())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .lock()
            .expect("mem storage poisoned")
            .files
            .keys()
            .cloned()
            .collect())
    }

    fn remove(&self, file: &str) -> Result<()> {
        check_name("remove", file)?;
        let mut inner = self.inner.lock().expect("mem storage poisoned");
        if Self::count_op(&mut inner, "remove", file)?.is_some() {
            // Crash before the unlink: the file survives.
            return Err(io_err(
                "remove",
                file,
                FaultKind::Permanent,
                "killed by injected fault",
            ));
        }
        inner.files.remove(file);
        inner.synced_len.remove(file);
        Ok(())
    }
}

// ------------------------------------------------- transient flakiness --

/// The operation classes a [`FlakyStorage`] fault schedule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// [`DurableStorage::append`].
    Append,
    /// [`DurableStorage::sync`].
    Sync,
    /// [`DurableStorage::write_atomic`].
    WriteAtomic,
    /// [`DurableStorage::read`].
    Read,
    /// [`DurableStorage::list`].
    List,
    /// [`DurableStorage::remove`].
    Remove,
}

impl OpClass {
    /// Every op class, in declaration order — the chaos sweep iterates
    /// this.
    pub const ALL: [OpClass; 6] = [
        OpClass::Append,
        OpClass::Sync,
        OpClass::WriteAtomic,
        OpClass::Read,
        OpClass::List,
        OpClass::Remove,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::Append => 0,
            OpClass::Sync => 1,
            OpClass::WriteAtomic => 2,
            OpClass::Read => 3,
            OpClass::List => 4,
            OpClass::Remove => 5,
        }
    }

    fn name(self) -> &'static str {
        match self {
            OpClass::Append => "append",
            OpClass::Sync => "sync",
            OpClass::WriteAtomic => "write_atomic",
            OpClass::Read => "read",
            OpClass::List => "list",
            OpClass::Remove => "remove",
        }
    }
}

/// One class's scripted fail-N-then-heal schedule: let `skip` more ops
/// succeed, fail the next `fail` transiently, then heal for good.
#[derive(Debug, Clone, Copy, Default)]
struct ClassScript {
    skip: u64,
    fail: u64,
}

#[derive(Debug, Default)]
struct FlakyState {
    scripts: [ClassScript; 6],
    /// Seeded background fault rate in basis points (of 10 000), applied
    /// to every op on top of the scripts.
    rate_bp: u32,
    seed: u64,
    /// Global op counter — the hash input for the background rate.
    ops: u64,
    faults_injected: u64,
}

/// SplitMix64: a tiny, high-quality mixing function — the deterministic
/// "coin" behind the seeded background fault rate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`DurableStorage`] wrapper that injects *transient* faults on a
/// deterministic script — the harness for the retry / degraded-mode /
/// self-heal machinery in `fup_core`, complementing [`MemStorage`]'s
/// terminal kills.
///
/// Two knobs, composable:
///
/// * **Scripts** ([`fail_next`](Self::fail_next) /
///   [`fail_after`](Self::fail_after)): per [`OpClass`], let some ops
///   succeed, fail the next N transiently, then heal for good — the
///   "storage blip at exactly this point" schedule the chaos sweep
///   enumerates.
/// * **Background rate** ([`with_fault_rate`](Self::with_fault_rate)):
///   every op fails transiently with probability `rate_bp / 10 000`,
///   decided by hashing a seed with the global op counter — fully
///   deterministic for a given seed and op sequence.
///
/// Injected faults fire *before* the inner storage is touched, so a
/// failed attempt has **no partial effect** — retrying the identical
/// operation is always sound against this wrapper. (Torn partial writes
/// are `MemStorage`'s department.)
#[derive(Debug)]
pub struct FlakyStorage {
    inner: Arc<dyn DurableStorage>,
    state: Mutex<FlakyState>,
}

impl FlakyStorage {
    /// Wraps `inner` with no faults scheduled.
    pub fn new(inner: Arc<dyn DurableStorage>) -> Self {
        FlakyStorage {
            inner,
            state: Mutex::new(FlakyState::default()),
        }
    }

    /// Wraps `inner` with a seeded background fault rate: each op fails
    /// transiently with probability `rate_bp / 10_000` (so `100` ≈ 1%),
    /// deterministically from `seed`.
    pub fn with_fault_rate(inner: Arc<dyn DurableStorage>, seed: u64, rate_bp: u32) -> Self {
        let s = Self::new(inner);
        {
            let mut state = s.lock_state();
            state.seed = seed;
            state.rate_bp = rate_bp.min(10_000);
        }
        s
    }

    /// The wrapped storage.
    pub fn inner(&self) -> &Arc<dyn DurableStorage> {
        &self.inner
    }

    /// Scripts `class`: the next `fail` ops fail transiently, then the
    /// class heals. Replaces any previous script for the class.
    pub fn fail_next(&self, class: OpClass, fail: u64) {
        self.fail_after(class, 0, fail);
    }

    /// Scripts `class`: let `skip` more ops succeed, then fail the next
    /// `fail` transiently, then heal. Replaces any previous script for
    /// the class.
    pub fn fail_after(&self, class: OpClass, skip: u64, fail: u64) {
        self.lock_state().scripts[class.index()] = ClassScript { skip, fail };
    }

    /// Number of transient faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.lock_state().faults_injected
    }

    /// `true` while any class still has scripted failures pending (its
    /// blip has not healed yet).
    pub fn script_pending(&self) -> bool {
        self.lock_state().scripts.iter().any(|s| s.fail > 0)
    }

    // The state lock guards only fault bookkeeping; a panicking holder
    // cannot leave it inconsistent in a way that matters, so recover the
    // guard instead of propagating the poison.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, FlakyState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decides whether this op faults; returns the injected error if so.
    fn gate(&self, class: OpClass, file: &str) -> Result<()> {
        let mut state = self.lock_state();
        let op_index = state.ops;
        state.ops += 1;
        let script = &mut state.scripts[class.index()];
        if script.skip > 0 {
            script.skip -= 1;
        } else if script.fail > 0 {
            script.fail -= 1;
            state.faults_injected += 1;
            return Err(io_err(
                class.name(),
                file,
                FaultKind::Transient,
                "scripted transient fault injected",
            ));
        }
        if state.rate_bp > 0
            && splitmix64(state.seed ^ op_index) % 10_000 < u64::from(state.rate_bp)
        {
            state.faults_injected += 1;
            return Err(io_err(
                class.name(),
                file,
                FaultKind::Transient,
                "background transient fault injected",
            ));
        }
        Ok(())
    }
}

impl DurableStorage for FlakyStorage {
    fn append(&self, file: &str, bytes: &[u8]) -> Result<()> {
        self.gate(OpClass::Append, file)?;
        self.inner.append(file, bytes)
    }

    fn sync(&self, file: &str) -> Result<()> {
        self.gate(OpClass::Sync, file)?;
        self.inner.sync(file)
    }

    fn write_atomic(&self, file: &str, content: &[u8]) -> Result<()> {
        self.gate(OpClass::WriteAtomic, file)?;
        self.inner.write_atomic(file, content)
    }

    fn read(&self, file: &str) -> Result<Option<Vec<u8>>> {
        self.gate(OpClass::Read, file)?;
        self.inner.read(file)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.gate(OpClass::List, "")?;
        self.inner.list()
    }

    fn remove(&self, file: &str) -> Result<()> {
        self.gate(OpClass::Remove, file)?;
        self.inner.remove(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_appends_reads_and_lists() {
        let s = MemStorage::new();
        s.append("a", b"he").unwrap();
        s.append("a", b"llo").unwrap();
        s.sync("a").unwrap();
        s.write_atomic("b", b"world").unwrap();
        assert_eq!(s.read("a").unwrap().unwrap(), b"hello");
        assert_eq!(s.read("b").unwrap().unwrap(), b"world");
        assert_eq!(s.read("missing").unwrap(), None);
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        s.remove("a").unwrap();
        assert_eq!(s.read("a").unwrap(), None);
        s.remove("a").unwrap(); // idempotent
    }

    #[test]
    fn mem_fault_kills_and_tears() {
        let s = MemStorage::new();
        s.append("wal", b"aaaa").unwrap();
        // Fault after 1 more op, tearing 2 bytes of the fatal append.
        s.fail_after(1, 2);
        s.append("wal", b"bbbb").unwrap();
        let err = s.append("wal", b"cccc").unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
        // The torn prefix survived; everything after the kill fails.
        assert_eq!(s.file("wal").unwrap(), b"aaaabbbbcc");
        assert!(s.append("wal", b"d").is_err());
        assert!(s.sync("wal").is_err());
        assert!(s.write_atomic("x", b"y").is_err());
        assert_eq!(s.faults_fired(), 1);
        // Reads still work (recovery inspects the crash image)...
        assert_eq!(s.read("wal").unwrap().unwrap(), b"aaaabbbbcc");
        // ...and revive restores a working namespace with the same bytes.
        s.revive();
        s.append("wal", b"d").unwrap();
        assert_eq!(s.file("wal").unwrap(), b"aaaabbbbccd");
    }

    #[test]
    fn mem_atomic_write_is_all_or_nothing_under_fault() {
        let s = MemStorage::new();
        s.write_atomic("ckpt", b"old").unwrap();
        s.fail_after(0, 0);
        assert!(s.write_atomic("ckpt", b"new-content").is_err());
        assert_eq!(s.file("ckpt").unwrap(), b"old");
    }

    #[test]
    fn mem_fail_sync_leaves_data_but_reports_error() {
        let s = MemStorage::new();
        s.set_fail_sync(true);
        s.append("wal", b"abc").unwrap();
        assert!(s.sync("wal").is_err());
        assert_eq!(s.file("wal").unwrap(), b"abc");
        s.set_fail_sync(false);
        s.sync("wal").unwrap();
    }

    #[test]
    fn mem_corruption_helpers() {
        let s = MemStorage::new();
        s.append("f", b"\x00\x01\x02\x03").unwrap();
        s.flip_byte("f", 1);
        assert_eq!(s.file("f").unwrap(), vec![0x00, 0xfe, 0x02, 0x03]);
        s.truncate_file("f", 2);
        assert_eq!(s.file("f").unwrap(), vec![0x00, 0xfe]);
        // Out-of-range offsets are ignored.
        s.flip_byte("f", 99);
        s.truncate_file("f", 99);
        assert_eq!(s.file("f").unwrap().len(), 2);
    }

    #[test]
    fn synced_files_keep_only_the_fsynced_prefix() {
        let s = MemStorage::new();
        s.append("wal", b"aaaa").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b"bbbb").unwrap(); // buffered, never synced
        s.write_atomic("ckpt", b"image").unwrap(); // atomically durable
        s.append("fresh", b"cccc").unwrap(); // never synced at all
        assert_eq!(s.sync_calls(), 1);

        let cache_alive = s.files();
        assert_eq!(cache_alive["wal"], b"aaaabbbb");

        let power_loss = s.synced_files();
        assert_eq!(power_loss["wal"], b"aaaa");
        assert_eq!(power_loss["ckpt"], b"image");
        assert_eq!(power_loss["fresh"], b"");

        // A later sync makes the buffered tail durable.
        s.sync("wal").unwrap();
        assert_eq!(s.synced_files()["wal"], b"aaaabbbb");

        // An image handed to a new namespace is durable in full.
        let restored = MemStorage::from_files(power_loss);
        assert_eq!(restored.synced_files()["wal"], b"aaaa");
    }

    #[test]
    fn flaky_scripts_fail_n_then_heal_per_class() {
        let mem = Arc::new(MemStorage::new());
        let s = FlakyStorage::new(mem);
        s.fail_next(OpClass::Append, 2);
        s.fail_after(OpClass::Sync, 1, 1);

        // Appends: two scripted transient failures, then healed for good.
        let e = s.append("wal", b"a").unwrap_err();
        assert!(e.is_transient());
        assert!(s.script_pending());
        assert!(s.append("wal", b"a").is_err());
        s.append("wal", b"a").unwrap();
        s.append("wal", b"b").unwrap();

        // Sync: one op skipped, the next fails, then healed.
        s.sync("wal").unwrap();
        assert!(s.sync("wal").unwrap_err().is_transient());
        s.sync("wal").unwrap();

        assert!(!s.script_pending());
        assert_eq!(s.faults_injected(), 3);
        // The failed attempts left no partial effect.
        assert_eq!(s.read("wal").unwrap().unwrap(), b"ab");
    }

    #[test]
    fn flaky_background_rate_is_deterministic_and_transient() {
        let run = |seed| {
            let s = FlakyStorage::with_fault_rate(Arc::new(MemStorage::new()), seed, 2_000);
            let mut outcomes = Vec::new();
            for i in 0..200u8 {
                outcomes.push(s.append("wal", &[i]).is_ok());
            }
            (outcomes, s.faults_injected())
        };
        let (a, faults_a) = run(7);
        let (b, faults_b) = run(7);
        let (c, _) = run(8);
        assert_eq!(a, b, "same seed, same op sequence, same faults");
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "20% rate over 200 ops must fire");
        assert!(faults_a < 200, "and must not fire every time");
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn flaky_passthrough_delegates_everything() {
        let mem = Arc::new(MemStorage::new());
        let s = FlakyStorage::new(Arc::clone(&mem) as Arc<dyn DurableStorage>);
        s.append("wal", b"abc").unwrap();
        s.sync("wal").unwrap();
        s.write_atomic("ckpt", b"img").unwrap();
        assert_eq!(s.read("wal").unwrap().unwrap(), b"abc");
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["ckpt", "wal"]);
        s.remove("ckpt").unwrap();
        assert_eq!(s.read("ckpt").unwrap(), None);
        assert_eq!(s.faults_injected(), 0);
        // The inner storage saw the real bytes.
        assert_eq!(mem.file("wal").unwrap(), b"abc");
    }

    #[test]
    fn names_with_separators_are_rejected() {
        let s = MemStorage::new();
        assert!(s.append("../evil", b"x").is_err());
        assert!(s.read("a/b").is_err());
        assert!(s.remove("..").is_err());
    }

    #[test]
    fn disk_storage_round_trips_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!(
            "fup-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let s = DiskStorage::open(&dir).unwrap();
        s.append("wal-0", b"abc").unwrap();
        s.append("wal-0", b"def").unwrap();
        s.sync("wal-0").unwrap();
        s.write_atomic("ckpt-0", b"manifest").unwrap();
        assert_eq!(s.read("wal-0").unwrap().unwrap(), b"abcdef");
        assert_eq!(s.read("ckpt-0").unwrap().unwrap(), b"manifest");
        assert_eq!(s.read("nope").unwrap(), None);
        let mut names = s.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["ckpt-0", "wal-0"]);
        // Atomic replace, then append continues on the new inode.
        s.write_atomic("wal-0", b"reset").unwrap();
        s.append("wal-0", b"!").unwrap();
        assert_eq!(s.read("wal-0").unwrap().unwrap(), b"reset!");
        s.remove("wal-0").unwrap();
        assert_eq!(s.read("wal-0").unwrap(), None);
        s.remove("wal-0").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}

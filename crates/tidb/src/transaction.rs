//! Transactions: sorted, duplicate-free sets of items.

use crate::item::ItemId;
use std::fmt;
use std::ops::Deref;

/// A transaction `T ⊆ I`: a sorted, duplicate-free set of items.
///
/// The sorted representation is load-bearing for every algorithm in this
/// workspace: `apriori-gen` joins itemsets on their (k−1)-prefix, the hash
/// tree's `Subset(C, T)` walks items in increasing order, and containment
/// checks ([`Transaction::contains_itemset`]) are linear merges.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Transaction {
    items: Box<[ItemId]>,
}

impl Transaction {
    /// Creates an empty transaction.
    pub fn empty() -> Self {
        Transaction {
            items: Box::new([]),
        }
    }

    /// Builds a transaction from arbitrary items; sorts and deduplicates.
    pub fn from_items<I, T>(items: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<ItemId>,
    {
        let mut v: Vec<ItemId> = items.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        Transaction {
            items: v.into_boxed_slice(),
        }
    }

    /// Builds a transaction from a vector that is already sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_vec(v: Vec<ItemId>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Transaction {
            items: v.into_boxed_slice(),
        }
    }

    /// Number of items in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the transaction holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// `true` if the transaction contains the single item.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `true` if the transaction contains every item of `itemset`
    /// (which must be sorted ascending). This is the paper's
    /// "`T` contains `X` iff `X ⊆ T`".
    pub fn contains_itemset(&self, itemset: &[ItemId]) -> bool {
        contains_sorted(&self.items, itemset)
    }

    /// Returns a new transaction with every item in `remove` (sorted
    /// ascending) dropped. Used by the `Reduce-db`/`Reduce-DB` trimming and
    /// the P-set optimisation of FUP §3.4.
    pub fn without_items(&self, remove: &[ItemId]) -> Transaction {
        if remove.is_empty() {
            return self.clone();
        }
        let kept: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|i| remove.binary_search(i).is_err())
            .collect();
        Transaction {
            items: kept.into_boxed_slice(),
        }
    }

    /// Returns a new transaction keeping only the items for which `keep`
    /// returns `true`.
    pub fn retain(&self, mut keep: impl FnMut(ItemId) -> bool) -> Transaction {
        let kept: Vec<ItemId> = self.items.iter().copied().filter(|&i| keep(i)).collect();
        Transaction {
            items: kept.into_boxed_slice(),
        }
    }
}

/// `true` if `needle` (sorted) is a subset of `haystack` (sorted).
///
/// Linear merge; `O(|haystack| + |needle|)`.
pub fn contains_sorted(haystack: &[ItemId], needle: &[ItemId]) -> bool {
    if needle.len() > haystack.len() {
        return false;
    }
    let mut hi = 0;
    'outer: for &n in needle {
        while hi < haystack.len() {
            let h = haystack[hi];
            hi += 1;
            if h == n {
                continue 'outer;
            }
            if h > n {
                return false;
            }
        }
        return false;
    }
    true
}

impl Deref for Transaction {
    type Target = [ItemId];
    #[inline]
    fn deref(&self) -> &[ItemId] {
        &self.items
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T{:?}",
            self.items.iter().map(|i| i.0).collect::<Vec<_>>()
        )
    }
}

impl FromIterator<ItemId> for Transaction {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Transaction::from_items(iter)
    }
}

impl FromIterator<u32> for Transaction {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Transaction::from_items(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(items: &[u32]) -> Transaction {
        Transaction::from_items(items.iter().copied())
    }

    #[test]
    fn from_items_sorts_and_dedups() {
        let tx = t(&[5, 1, 3, 1, 5]);
        assert_eq!(tx.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert_eq!(tx.len(), 3);
        assert!(!tx.is_empty());
    }

    #[test]
    fn empty_transaction() {
        let tx = Transaction::empty();
        assert!(tx.is_empty());
        assert_eq!(tx.len(), 0);
        assert!(tx.contains_itemset(&[]));
        assert!(!tx.contains_itemset(&[ItemId(1)]));
    }

    #[test]
    fn contains_single_item() {
        let tx = t(&[2, 4, 6]);
        assert!(tx.contains(ItemId(4)));
        assert!(!tx.contains(ItemId(5)));
    }

    #[test]
    fn contains_itemset_subset_semantics() {
        let tx = t(&[1, 2, 3, 5, 8]);
        assert!(tx.contains_itemset(&[ItemId(1)]));
        assert!(tx.contains_itemset(&[ItemId(2), ItemId(5)]));
        assert!(tx.contains_itemset(&[ItemId(1), ItemId(2), ItemId(3), ItemId(5), ItemId(8)]));
        assert!(!tx.contains_itemset(&[ItemId(2), ItemId(4)]));
        assert!(!tx.contains_itemset(&[ItemId(9)]));
        // Needle longer than haystack.
        let small = t(&[1]);
        assert!(!small.contains_itemset(&[ItemId(1), ItemId(2)]));
    }

    #[test]
    fn without_items_removes_sorted_set() {
        let tx = t(&[1, 2, 3, 4, 5]);
        let reduced = tx.without_items(&[ItemId(2), ItemId(4)]);
        assert_eq!(reduced.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        // Empty removal set clones.
        let same = tx.without_items(&[]);
        assert_eq!(same, tx);
    }

    #[test]
    fn retain_filters() {
        let tx = t(&[1, 2, 3, 4]);
        let even = tx.retain(|i| i.raw() % 2 == 0);
        assert_eq!(even.items(), &[ItemId(2), ItemId(4)]);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let tx = t(&[1, 2, 3]);
        assert_eq!(tx.first(), Some(&ItemId(1)));
        assert_eq!(tx[2], ItemId(3));
    }

    #[test]
    fn from_sorted_vec_accepts_valid_input() {
        let tx = Transaction::from_sorted_vec(vec![ItemId(1), ItemId(9)]);
        assert_eq!(tx.len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    #[cfg(debug_assertions)]
    fn from_sorted_vec_rejects_unsorted_in_debug() {
        let _ = Transaction::from_sorted_vec(vec![ItemId(2), ItemId(1)]);
    }

    #[test]
    fn contains_sorted_edge_cases() {
        assert!(contains_sorted(&[], &[]));
        assert!(contains_sorted(&[ItemId(1)], &[]));
        assert!(!contains_sorted(&[], &[ItemId(1)]));
    }
}

//! Property tests for the substrate: codec roundtrips, paging fidelity,
//! segmented-store invariants, and text I/O.

use fup_tidb::page::PagedStore;
use fup_tidb::{codec, io, SegmentedDb, Transaction, TransactionSource, UpdateBatch};
use proptest::prelude::*;

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..5_000_000, 0..60).prop_map(Transaction::from_items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_any_transaction(t in arb_transaction()) {
        let buf = codec::encode_to_vec(&t);
        prop_assert_eq!(buf.len(), codec::encoded_len(t.items()));
        let mut pos = 0;
        let mut out = Vec::new();
        codec::decode_transaction(&buf, &mut pos, &mut out).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(out.as_slice(), t.items());
    }

    #[test]
    fn codec_rejects_any_truncation(t in arb_transaction()) {
        prop_assume!(!t.is_empty());
        let buf = codec::encode_to_vec(&t);
        let mut out = Vec::new();
        for cut in 0..buf.len() {
            let mut pos = 0;
            prop_assert!(
                codec::decode_transaction(&buf[..cut], &mut pos, &mut out).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn paged_store_roundtrips(
        txs in proptest::collection::vec(arb_transaction(), 0..80),
        page_size in 64usize..1024,
    ) {
        let mut store = PagedStore::with_page_size(page_size);
        let mut stored = Vec::new();
        for t in &txs {
            // Oversized transactions are rejected, not corrupted.
            if store.append(t).is_ok() {
                stored.push(t.clone());
            }
        }
        prop_assert_eq!(store.num_transactions(), stored.len() as u64);
        let back = store.to_transactions().unwrap();
        prop_assert_eq!(back, stored);
    }

    #[test]
    fn segmented_store_stage_commit_abort(
        initial in proptest::collection::vec(arb_transaction(), 1..30),
        inserts in proptest::collection::vec(arb_transaction(), 0..10),
        delete_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
        abort in any::<bool>(),
    ) {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(initial.clone());
        let mut deletes: Vec<_> = delete_picks
            .iter()
            .map(|ix| tids[ix.index(tids.len())])
            .collect();
        deletes.sort();
        deletes.dedup();
        let n_del = deletes.len();
        let n_ins = inserts.len();

        let staged = db
            .stage(UpdateBatch { inserts, deletes: deletes.clone() })
            .unwrap();
        // While staged, live = initial − deleted.
        prop_assert_eq!(db.len(), initial.len() - n_del);
        for tid in &deletes {
            prop_assert!(!db.contains(*tid));
        }
        if abort {
            db.abort(staged);
            prop_assert_eq!(db.len(), initial.len());
            for tid in &deletes {
                prop_assert!(db.contains(*tid));
            }
        } else {
            let (_seg, new_tids) = db.commit(staged);
            prop_assert_eq!(new_tids.len(), n_ins);
            prop_assert_eq!(db.len(), initial.len() - n_del + n_ins);
            for tid in new_tids {
                prop_assert!(db.contains(tid));
            }
        }
        // Scan delivers exactly the live set.
        let mut scanned = 0u64;
        db.for_each(&mut |_| scanned += 1);
        prop_assert_eq!(scanned, db.len() as u64);
    }

    #[test]
    fn numeric_io_roundtrips(
        txs in proptest::collection::vec(
            proptest::collection::vec(0u32..100_000, 1..20).prop_map(Transaction::from_items),
            0..40,
        ),
    ) {
        let mut buf = Vec::new();
        io::write_numeric(&mut buf, &txs).unwrap();
        let back = io::read_numeric(&buf[..]).unwrap();
        prop_assert_eq!(back, txs);
    }

    #[test]
    fn chunked_scan_matches_for_each(
        txs in proptest::collection::vec(
            proptest::collection::vec(0u32..100_000, 0..20).prop_map(Transaction::from_items),
            0..60,
        ),
        chunk_size in 1usize..16,
    ) {
        use fup_tidb::chunk::TxChunk;
        use fup_tidb::source::ChainSource;
        use fup_tidb::TransactionDb;

        let collect_serial = |s: &dyn TransactionSource| {
            let mut out: Vec<Vec<_>> = Vec::new();
            s.for_each(&mut |t| out.push(t.to_vec()));
            out
        };
        let collect_chunked = |s: &dyn TransactionSource| {
            let mut out: Vec<Vec<_>> = Vec::new();
            let mut max_len = 0usize;
            s.for_each_chunk(chunk_size, &mut |c: &TxChunk<'_>| {
                max_len = max_len.max(c.len());
                for t in c.iter() {
                    out.push(t.to_vec());
                }
            });
            prop_assert!(max_len <= chunk_size, "oversized chunk");
            Ok(out)
        };

        // TransactionDb: fresh instances so metrics are comparable.
        let a = TransactionDb::from_transactions(txs.clone());
        let b = TransactionDb::from_transactions(txs.clone());
        let serial = collect_serial(&a);
        prop_assert_eq!(&collect_chunked(&b)?, &serial);
        prop_assert_eq!(a.metrics().snapshot(), b.metrics().snapshot());

        // SegmentedDb.
        let a = SegmentedDb::from_transactions(txs.clone());
        let b = SegmentedDb::from_transactions(txs.clone());
        prop_assert_eq!(collect_chunked(&b)?, collect_serial(&a));
        prop_assert_eq!(a.metrics().snapshot(), b.metrics().snapshot());

        // PagedStore (oversized transactions rejected identically on both).
        let mut a = PagedStore::with_page_size(128);
        let mut b = PagedStore::with_page_size(128);
        for t in &txs {
            let ra = a.append(t).is_ok();
            prop_assert_eq!(ra, b.append(t).is_ok());
        }
        let serial = collect_serial(&a);
        prop_assert_eq!(&collect_chunked(&b)?, &serial);
        // Transaction/item totals match; pages may legitimately differ
        // (chunk boundaries re-read straddled pages).
        prop_assert_eq!(
            a.metrics().snapshot().transactions_read,
            b.metrics().snapshot().transactions_read
        );
        prop_assert_eq!(
            a.metrics().snapshot().items_read,
            b.metrics().snapshot().items_read
        );

        // ChainSource over a split of the same transactions.
        let mid = txs.len() / 2;
        let front = TransactionDb::from_transactions(txs[..mid].to_vec());
        let back = TransactionDb::from_transactions(txs[mid..].to_vec());
        let chain = ChainSource::new(&front, &back);
        let chunked = collect_chunked(&chain)?;
        let front2 = TransactionDb::from_transactions(txs[..mid].to_vec());
        let back2 = TransactionDb::from_transactions(txs[mid..].to_vec());
        let chain2 = ChainSource::new(&front2, &back2);
        prop_assert_eq!(chunked, collect_serial(&chain2));
        prop_assert_eq!(front.metrics().snapshot(), front2.metrics().snapshot());
        prop_assert_eq!(back.metrics().snapshot(), back2.metrics().snapshot());
    }

    #[test]
    fn scan_metrics_count_exactly(
        txs in proptest::collection::vec(arb_transaction(), 0..30),
        passes in 1usize..4,
    ) {
        let db = fup_tidb::TransactionDb::from_transactions(txs.clone());
        for _ in 0..passes {
            db.for_each(&mut |_| {});
        }
        let m = db.metrics();
        prop_assert_eq!(m.full_scans(), passes as u64);
        prop_assert_eq!(m.transactions_read(), (passes * txs.len()) as u64);
        let items: u64 = txs.iter().map(|t| t.len() as u64).sum();
        prop_assert_eq!(m.items_read(), passes as u64 * items);
    }
}

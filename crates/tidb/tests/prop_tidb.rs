//! Property tests for the substrate: codec roundtrips, paging fidelity,
//! segmented-store invariants, and text I/O.

use fup_tidb::page::PagedStore;
use fup_tidb::{codec, io, SegmentedDb, Transaction, TransactionSource, UpdateBatch};
use proptest::prelude::*;

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..5_000_000, 0..60).prop_map(Transaction::from_items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_any_transaction(t in arb_transaction()) {
        let buf = codec::encode_to_vec(&t);
        prop_assert_eq!(buf.len(), codec::encoded_len(t.items()));
        let mut pos = 0;
        let mut out = Vec::new();
        codec::decode_transaction(&buf, &mut pos, &mut out).unwrap();
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(out.as_slice(), t.items());
    }

    #[test]
    fn codec_rejects_any_truncation(t in arb_transaction()) {
        prop_assume!(!t.is_empty());
        let buf = codec::encode_to_vec(&t);
        let mut out = Vec::new();
        for cut in 0..buf.len() {
            let mut pos = 0;
            prop_assert!(
                codec::decode_transaction(&buf[..cut], &mut pos, &mut out).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn paged_store_roundtrips(
        txs in proptest::collection::vec(arb_transaction(), 0..80),
        page_size in 64usize..1024,
    ) {
        let mut store = PagedStore::with_page_size(page_size);
        let mut stored = Vec::new();
        for t in &txs {
            // Oversized transactions are rejected, not corrupted.
            if store.append(t).is_ok() {
                stored.push(t.clone());
            }
        }
        prop_assert_eq!(store.num_transactions(), stored.len() as u64);
        let back = store.to_transactions().unwrap();
        prop_assert_eq!(back, stored);
    }

    #[test]
    fn segmented_store_stage_commit_abort(
        initial in proptest::collection::vec(arb_transaction(), 1..30),
        inserts in proptest::collection::vec(arb_transaction(), 0..10),
        delete_picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
        abort in any::<bool>(),
    ) {
        let mut db = SegmentedDb::new();
        let tids = db.append_all(initial.clone());
        let mut deletes: Vec<_> = delete_picks
            .iter()
            .map(|ix| tids[ix.index(tids.len())])
            .collect();
        deletes.sort();
        deletes.dedup();
        let n_del = deletes.len();
        let n_ins = inserts.len();

        let staged = db
            .stage(UpdateBatch { inserts, deletes: deletes.clone() })
            .unwrap();
        // While staged, live = initial − deleted.
        prop_assert_eq!(db.len(), initial.len() - n_del);
        for tid in &deletes {
            prop_assert!(!db.contains(*tid));
        }
        if abort {
            db.abort(staged);
            prop_assert_eq!(db.len(), initial.len());
            for tid in &deletes {
                prop_assert!(db.contains(*tid));
            }
        } else {
            let (_seg, new_tids) = db.commit(staged);
            prop_assert_eq!(new_tids.len(), n_ins);
            prop_assert_eq!(db.len(), initial.len() - n_del + n_ins);
            for tid in new_tids {
                prop_assert!(db.contains(tid));
            }
        }
        // Scan delivers exactly the live set.
        let mut scanned = 0u64;
        db.for_each(&mut |_| scanned += 1);
        prop_assert_eq!(scanned, db.len() as u64);
    }

    #[test]
    fn numeric_io_roundtrips(
        txs in proptest::collection::vec(
            proptest::collection::vec(0u32..100_000, 1..20).prop_map(Transaction::from_items),
            0..40,
        ),
    ) {
        let mut buf = Vec::new();
        io::write_numeric(&mut buf, &txs).unwrap();
        let back = io::read_numeric(&buf[..]).unwrap();
        prop_assert_eq!(back, txs);
    }

    #[test]
    fn scan_metrics_count_exactly(
        txs in proptest::collection::vec(arb_transaction(), 0..30),
        passes in 1usize..4,
    ) {
        let db = fup_tidb::TransactionDb::from_transactions(txs.clone());
        for _ in 0..passes {
            db.for_each(&mut |_| {});
        }
        let m = db.metrics();
        prop_assert_eq!(m.full_scans(), passes as u64);
        prop_assert_eq!(m.transactions_read(), (passes * txs.len()) as u64);
        let items: u64 = txs.iter().map(|t| t.len() as u64).sum();
        prop_assert_eq!(m.items_read(), passes as u64 * items);
    }
}

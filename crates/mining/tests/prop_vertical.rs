//! Property tests for the vertical tid-list backend: for random databases
//! and candidate pools, the vertical index produces exactly the hash
//! tree's (and naive containment's) support counts — across thread counts
//! {1, 2, 8}, both list representations (all-sparse and all-dense forced
//! by density cutoff), and arbitrary split boundaries — and every miner
//! produces bit-identical large itemsets under every [`CountingBackend`].

use fup_mining::apriori::AprioriConfig;
use fup_mining::dhp::DhpConfig;
use fup_mining::engine::EngineConfig;
use fup_mining::vertical::{CountingBackend, VerticalIndex, DENSE_FACTOR};
use fup_mining::{Apriori, Dhp, Itemset, ItemsetTable, MinSupport};
use fup_tidb::transaction::contains_sorted;
use fup_tidb::{Transaction, TransactionDb};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const DENSITY_CUTOFFS: [u32; 3] = [0, DENSE_FACTOR, u32::MAX];

fn arb_transaction(max_item: u32, max_len: usize) -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0..max_item, 0..max_len).prop_map(Transaction::from_items)
}

fn arb_itemset(max_item: u32, k: usize) -> impl Strategy<Value = Itemset> {
    proptest::collection::hash_set(0..max_item, k).prop_map(Itemset::from_items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vertical_counts_equal_naive_across_threads_and_densities(
        candidates in proptest::collection::hash_set(arb_itemset(30, 3), 1..40),
        transactions in proptest::collection::vec(arb_transaction(30, 10), 0..150),
    ) {
        let candidates: Vec<Itemset> = candidates.into_iter().collect();
        let table = ItemsetTable::from_itemsets(&candidates);
        let naive: Vec<u64> = table
            .rows()
            .map(|row| {
                transactions
                    .iter()
                    .filter(|t| contains_sorted(t.items(), row))
                    .count() as u64
            })
            .collect();
        let db = TransactionDb::from_transactions(transactions.clone());
        for &dense_factor in &DENSITY_CUTOFFS {
            for &threads in &THREAD_COUNTS {
                let cfg = EngineConfig::with_threads(threads);
                let idx = VerticalIndex::build_with_density(&db, None, &cfg, dense_factor);
                let counts = idx.count_rows(&table, &cfg);
                prop_assert_eq!(
                    &counts,
                    &naive,
                    "threads {} dense_factor {}",
                    threads,
                    dense_factor
                );
            }
        }
    }

    #[test]
    fn split_counts_partition_the_support(
        candidates in proptest::collection::hash_set(arb_itemset(25, 2), 1..30),
        transactions in proptest::collection::vec(arb_transaction(25, 8), 1..120),
        boundary_sel in 0u64..1000,
    ) {
        let candidates: Vec<Itemset> = candidates.into_iter().collect();
        let table = ItemsetTable::from_itemsets(&candidates);
        let n = transactions.len() as u64;
        let boundary = boundary_sel % (n + 1);
        // Ground truth by position: tids below the boundary are exactly
        // the first `boundary` transactions of the pass.
        let head = TransactionDb::from_transactions(
            transactions[..boundary as usize].to_vec(),
        );
        let db = TransactionDb::from_transactions(transactions.clone());
        let cfg = EngineConfig::serial();
        for &dense_factor in &DENSITY_CUTOFFS {
            let idx = VerticalIndex::build_with_density(&db, None, &cfg, dense_factor);
            let head_idx =
                VerticalIndex::build_with_density(&head, None, &cfg, dense_factor);
            let split = idx.count_rows_split(&table, boundary, &cfg);
            let total = idx.count_rows(&table, &cfg);
            let below = head_idx.count_rows(&table, &cfg);
            for (i, &(b, a)) in split.iter().enumerate() {
                prop_assert_eq!(b + a, total[i], "row {} dense_factor {}", i, dense_factor);
                prop_assert_eq!(b, below[i], "row {} dense_factor {}", i, dense_factor);
            }
        }
    }

    #[test]
    fn miners_identical_under_every_backend(
        transactions in proptest::collection::vec(arb_transaction(20, 8), 1..100),
        minsup_pct in 5u64..60,
    ) {
        let db = TransactionDb::from_transactions(transactions);
        let minsup = MinSupport::percent(minsup_pct);
        let reference = Apriori::with_config(AprioriConfig {
            engine: EngineConfig::serial(),
            ..AprioriConfig::default()
        })
        .run(&db, minsup)
        .large;
        for backend in [
            CountingBackend::HashTree,
            CountingBackend::Vertical,
            CountingBackend::Auto,
        ] {
            for &threads in &THREAD_COUNTS {
                let engine = EngineConfig::with_threads(threads).with_backend(backend);
                let apriori = Apriori::with_config(AprioriConfig {
                    engine: engine.clone(),
                    ..AprioriConfig::default()
                })
                .run(&db, minsup)
                .large;
                prop_assert!(
                    apriori.same_itemsets(&reference),
                    "apriori {:?} threads {}: {:?}",
                    backend,
                    threads,
                    apriori.diff(&reference)
                );
                let dhp = Dhp::with_config(DhpConfig {
                    engine,
                    ..DhpConfig::default()
                })
                .run(&db, minsup)
                .large;
                prop_assert!(
                    dhp.same_itemsets(&reference),
                    "dhp {:?} threads {}: {:?}",
                    backend,
                    threads,
                    dhp.diff(&reference)
                );
            }
        }
    }
}

/// The facade re-exports stay wired.
#[test]
fn backend_types_are_reexported() {
    let _ = fup_mining::CountingBackend::default();
    assert_eq!(
        fup_mining::CountingBackend::default(),
        CountingBackend::Auto
    );
}

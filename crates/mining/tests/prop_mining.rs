//! Property tests for the mining foundation: every fast path agrees with
//! its obviously-correct reference implementation on random inputs.

use fup_mining::apriori::mine_naive;
use fup_mining::gen::{
    apriori_gen, apriori_gen_naive, apriori_gen_reference, apriori_gen_with, clustered_l2,
    GenConfig,
};
use fup_mining::rules::{generate_rules, generate_rules_naive, MinConfidence};
use fup_mining::{Apriori, Dhp, HashTree, Itemset, MinSupport};
use fup_tidb::transaction::contains_sorted;
use fup_tidb::{ItemId, Transaction, TransactionDb};
use proptest::prelude::*;

fn arb_transaction(max_item: u32, max_len: usize) -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0..max_item, 1..max_len).prop_map(Transaction::from_items)
}

fn arb_db() -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_transaction(14, 7), 1..40)
}

fn arb_itemset(max_item: u32, k: usize) -> impl Strategy<Value = Itemset> {
    proptest::collection::hash_set(0..max_item, k).prop_map(Itemset::from_items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hashtree_matches_naive_containment(
        candidates in proptest::collection::hash_set(arb_itemset(40, 3), 1..60),
        transactions in proptest::collection::vec(arb_transaction(40, 10), 0..40),
    ) {
        let candidates: Vec<Itemset> = candidates.into_iter().collect();
        let mut tree = HashTree::build(candidates.clone());
        for t in &transactions {
            tree.add_transaction(t.items());
        }
        for (c, &count) in candidates.iter().zip(tree.counts()) {
            let truth = transactions
                .iter()
                .filter(|t| contains_sorted(t.items(), c.items()))
                .count() as u64;
            prop_assert_eq!(count, truth, "candidate {:?}", c);
        }
    }

    #[test]
    fn apriori_gen_matches_naive(
        level in proptest::collection::hash_set(arb_itemset(10, 2), 0..25),
    ) {
        let level: Vec<Itemset> = level.into_iter().collect();
        prop_assert_eq!(apriori_gen(&level), apriori_gen_naive(&level));
    }

    #[test]
    fn apriori_gen_candidates_have_large_subsets(
        level in proptest::collection::hash_set(arb_itemset(12, 3), 0..25),
    ) {
        let level: Vec<Itemset> = level.into_iter().collect();
        let members: std::collections::HashSet<&Itemset> = level.iter().collect();
        for c in apriori_gen(&level) {
            prop_assert_eq!(c.k(), 4);
            for sub in c.proper_subsets() {
                prop_assert!(members.contains(&sub), "{:?} missing subset {:?}", c, sub);
            }
        }
    }

    #[test]
    fn apriori_gen_parallel_matches_naive(
        k in 1usize..=6,
        raw in proptest::collection::vec(proptest::collection::hash_set(0u32..24, 6), 0..40),
    ) {
        // Random uniform-size L_k (k up to 6): every thread count must
        // reproduce the naive join+prune exactly, order included. Each
        // 6-item set is sorted before truncating to k so the input is a
        // pure function of the generated value (HashSet iteration order
        // is not reproducible across proptest replays).
        let level: Vec<Itemset> = raw
            .iter()
            .map(|set| {
                let mut items: Vec<u32> = set.iter().copied().collect();
                items.sort_unstable();
                Itemset::from_items(items.into_iter().take(k))
            })
            .collect();
        let naive = apriori_gen_naive(&level);
        for threads in [1usize, 2, 8] {
            let fast = apriori_gen_with(&level, &GenConfig::with_threads(threads));
            prop_assert_eq!(&fast, &naive, "threads {}", threads);
        }
    }

    #[test]
    fn apriori_and_dhp_match_naive(
        rows in arb_db(),
        pct in 1u64..=100,
    ) {
        let db = TransactionDb::from_transactions(rows);
        let minsup = MinSupport::percent(pct);
        let truth = mine_naive(&db, minsup);
        let apriori = Apriori::new().run(&db, minsup).large;
        prop_assert!(apriori.same_itemsets(&truth), "apriori: {:?}", apriori.diff(&truth));
        let dhp = Dhp::new().run(&db, minsup).large;
        prop_assert!(dhp.same_itemsets(&truth), "dhp: {:?}", dhp.diff(&truth));
    }

    #[test]
    fn rules_match_naive_and_respect_confidence(
        rows in arb_db(),
        sup_pct in 5u64..=60,
        conf_pct in 10u64..=100,
    ) {
        let db = TransactionDb::from_transactions(rows);
        let large = Apriori::new().run(&db, MinSupport::percent(sup_pct)).large;
        let minconf = MinConfidence::percent(conf_pct);
        let fast = generate_rules(&large, minconf);
        let naive = generate_rules_naive(&large, minconf);
        prop_assert_eq!(fast.rules(), naive.rules());
        for r in fast.rules() {
            // Confidence threshold honoured exactly.
            prop_assert!(minconf.is_met(r.union_count, r.antecedent_count));
            // Antecedent and consequent are disjoint and non-empty.
            prop_assert!(!r.antecedent.is_empty());
            prop_assert!(!r.consequent.is_empty());
            for item in r.consequent.items() {
                prop_assert!(!r.antecedent.contains(*item));
            }
            // Support counts come from the large-itemset table.
            let union = r.antecedent.union(&r.consequent);
            prop_assert_eq!(large.support(&union), Some(r.union_count));
            prop_assert_eq!(large.support(&r.antecedent), Some(r.antecedent_count));
        }
    }

    #[test]
    fn subset_closure_holds_for_mined_itemsets(
        rows in arb_db(),
        pct in 5u64..=80,
    ) {
        // Every subset of a large itemset is large with ≥ its support —
        // the foundation of Lemma 3.
        let db = TransactionDb::from_transactions(rows);
        let large = Apriori::new().run(&db, MinSupport::percent(pct)).large;
        for (x, sup) in large.iter() {
            if x.k() < 2 {
                continue;
            }
            for sub in x.proper_subsets() {
                let sub_sup = large.support(&sub);
                prop_assert!(sub_sup.is_some(), "{:?} lacks subset {:?}", x, sub);
                prop_assert!(sub_sup.unwrap() >= sup);
            }
        }
    }

    #[test]
    fn minsup_monotonicity(
        rows in arb_db(),
        lo in 1u64..=50,
        delta in 1u64..=50,
    ) {
        // Raising the threshold can only shrink the result set.
        let db = TransactionDb::from_transactions(rows);
        let low = Apriori::new().run(&db, MinSupport::percent(lo)).large;
        let high = Apriori::new().run(&db, MinSupport::percent(lo + delta)).large;
        for (x, sup) in high.iter() {
            prop_assert_eq!(low.support(x), Some(sup));
        }
        prop_assert!(high.len() <= low.len());
    }
}

/// On a ~10 000-set structured L₂ the flat join+prune is byte-identical
/// (order included) to the pre-flat reference implementation at every
/// thread count — the PR's compatibility acceptance check.
#[test]
fn apriori_gen_ten_thousand_sets_identical_across_threads() {
    let l2 = clustered_l2(70, 18, 13);
    assert!(l2.len() >= 9_000, "|L2| = {}", l2.len());
    let reference = apriori_gen_reference(&l2);
    assert!(!reference.is_empty());
    for threads in [1usize, 2, 8] {
        let fast = apriori_gen_with(&l2, &GenConfig::with_threads(threads));
        assert_eq!(fast, reference, "threads {threads}");
    }
}

/// `contains_sorted` agrees with a set-based reference.
#[test]
fn contains_sorted_reference() {
    use std::collections::BTreeSet;
    let mut rng = 1u64;
    let mut next = || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng >> 33) as u32
    };
    for _ in 0..500 {
        let hay: BTreeSet<u32> = (0..(next() % 12)).map(|_| next() % 20).collect();
        let needle: BTreeSet<u32> = (0..(next() % 6)).map(|_| next() % 20).collect();
        let hay_v: Vec<ItemId> = hay.iter().map(|&i| ItemId(i)).collect();
        let needle_v: Vec<ItemId> = needle.iter().map(|&i| ItemId(i)).collect();
        assert_eq!(
            contains_sorted(&hay_v, &needle_v),
            needle.is_subset(&hay),
            "hay {hay:?} needle {needle:?}"
        );
    }
}

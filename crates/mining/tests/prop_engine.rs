//! Property tests for the parallel counting engine: for random candidate
//! sets and databases, the engine's counts equal (a) naive containment
//! counts and (b) the serial path's counts, across thread counts
//! {1, 2, 8} and chunk sizes {1, 7, 1024}.

use fup_mining::engine::{self, EngineConfig};
use fup_mining::{EngineConfig as ReexportedEngineConfig, Itemset};
use fup_tidb::transaction::contains_sorted;
use fup_tidb::{Transaction, TransactionDb, TransactionSource};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const CHUNK_SIZES: [usize; 3] = [1, 7, 1024];

fn arb_transaction(max_item: u32, max_len: usize) -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0..max_item, 0..max_len).prop_map(Transaction::from_items)
}

fn arb_itemset(max_item: u32, k: usize) -> impl Strategy<Value = Itemset> {
    proptest::collection::hash_set(0..max_item, k).prop_map(Itemset::from_items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_counts_equal_naive_and_serial(
        candidates in proptest::collection::hash_set(arb_itemset(40, 3), 1..40),
        transactions in proptest::collection::vec(arb_transaction(40, 12), 0..120),
    ) {
        let candidates: Vec<Itemset> = candidates.into_iter().collect();
        let naive: Vec<u64> = candidates
            .iter()
            .map(|c| {
                transactions
                    .iter()
                    .filter(|t| contains_sorted(t.items(), c.items()))
                    .count() as u64
            })
            .collect();

        // The serial reference path (threads = 1 short-circuits to the
        // classic for_each loop).
        let serial_db = TransactionDb::from_transactions(transactions.clone());
        let serial = engine::count_candidates_with(
            &serial_db,
            candidates.clone(),
            &EngineConfig::serial(),
        );
        for ((cand, count), truth) in serial.iter().zip(&naive) {
            prop_assert_eq!(count, truth, "serial disagrees with naive on {:?}", cand);
        }

        for &threads in &THREAD_COUNTS {
            for &chunk_size in &CHUNK_SIZES {
                let cfg = EngineConfig {
                    threads,
                    chunk_size,
                    ..EngineConfig::default()
                };
                let db = TransactionDb::from_transactions(transactions.clone());
                let counted =
                    engine::count_candidates_with(&db, candidates.clone(), &cfg);
                prop_assert_eq!(
                    &counted,
                    &serial,
                    "threads {} chunk_size {}",
                    threads,
                    chunk_size
                );
                // Scan accounting: one full pass, every transaction and
                // item charged exactly once, matching the serial path.
                prop_assert_eq!(
                    db.metrics().snapshot(),
                    serial_db.metrics().snapshot(),
                    "metrics diverged at threads {} chunk_size {}",
                    threads,
                    chunk_size
                );
            }
        }
    }

    #[test]
    fn soa_hashtree_counts_equal_direct_containment(
        candidates in proptest::collection::hash_set(arb_itemset(30, 2), 1..50),
        transactions in proptest::collection::vec(arb_transaction(30, 9), 0..80),
    ) {
        // The SoA leaf arena must count bit-identically to direct
        // containment over the owned itemsets, across every chunk size
        // (chunking changes which worker walks which leaf ranges).
        let candidates: Vec<Itemset> = candidates.into_iter().collect();
        let truth: Vec<u64> = candidates
            .iter()
            .map(|c| {
                transactions
                    .iter()
                    .filter(|t| contains_sorted(t.items(), c.items()))
                    .count() as u64
            })
            .collect();
        for &chunk_size in &CHUNK_SIZES {
            let cfg = EngineConfig {
                threads: 2,
                chunk_size,
                ..EngineConfig::default()
            };
            let db = TransactionDb::from_transactions(transactions.clone());
            let counted = engine::count_candidates_with(&db, candidates.clone(), &cfg);
            let counts: Vec<u64> = counted.into_iter().map(|(_, c)| c).collect();
            prop_assert_eq!(&counts, &truth, "chunk_size {}", chunk_size);
        }
    }

    #[test]
    fn engine_item_counts_equal_serial(
        transactions in proptest::collection::vec(arb_transaction(60, 10), 0..150),
    ) {
        let db = TransactionDb::from_transactions(transactions.clone());
        let serial = engine::count_items_with(&db, &EngineConfig::serial());
        for &threads in &THREAD_COUNTS {
            for &chunk_size in &CHUNK_SIZES {
                let cfg = EngineConfig {
                    threads,
                    chunk_size,
                    ..EngineConfig::default()
                };
                let parallel = engine::count_items_with(&db, &cfg);
                prop_assert_eq!(parallel.capacity(), serial.capacity());
                for (item, count) in serial.iter_nonzero() {
                    prop_assert_eq!(
                        parallel.get(item),
                        count,
                        "item {:?} at threads {} chunk_size {}",
                        item,
                        threads,
                        chunk_size
                    );
                }
            }
        }
    }
}

/// The facade re-export stays wired.
#[test]
fn engine_config_is_reexported() {
    let cfg = ReexportedEngineConfig::with_threads(2);
    assert_eq!(cfg.resolved_threads(), 2);
    assert!(EngineConfig::default().resolved_threads() >= 1);
}

//! Candidate generation: the `apriori-gen` function of Agrawal & Srikant,
//! used verbatim by Apriori, DHP, and FUP ("the set of candidate sets, C₂,
//! is generated … by applying the apriori-gen function on L'₁", §3.2).
//!
//! ## The flat, prefix-indexed representation
//!
//! `L_k` is loaded into an [`ItemsetTable`]: one contiguous k-strided
//! `Vec<ItemId>` of rows in lexicographic order, plus an index over the
//! maximal runs of rows sharing their first `k−1` items. On that layout:
//!
//! * **Join** — only pairs inside one run can join, so the join is a
//!   run-local double loop over contiguous memory. The merged candidate is
//!   `row_i` plus the last item of `row_j` — no allocation until a
//!   candidate survives the prune.
//! * **Prune** — a candidate is kept only if every k-subset is in `L_k`.
//!   The two subsets dropping one of the last two items *are* the join
//!   parents and are skipped. Each remaining subset drops one prefix item
//!   and so shares a fixed (k−1)-prefix with `z` (the joined item)
//!   appended; its run is located once per left row with a binary search
//!   over the flat table's run index and then verified by a linear merge
//!   as `z` increases — no hashing, no owned-itemset allocation, and
//!   amortised O(1) membership work per joined pair.
//!
//! Input that is already strictly increasing (every miner feeds the
//! previous pass's sorted output back in) is detected with one linear scan
//! and copied into the table without re-sorting.
//!
//! ## Parallelism
//!
//! [`apriori_gen_with`] chops the join into batches of left-row segments
//! carrying a fixed pair budget — a single giant run (all of `L₁` shares
//! the empty prefix, so `C₂` generation is *one* run) is split across
//! batches, and many tiny runs coalesce into one — then lets
//! `std::thread::scope` workers claim batch indices off an atomic cursor,
//! the same pattern as the counting engine (`fup_mining::engine`). Each
//! worker collects its candidates per batch and the batches are
//! concatenated in index order, so the output is *identical* (order
//! included) for every thread count; [`GenConfig::serial`] (`threads = 1`)
//! does not spin up workers at all. Levels whose total join work is small
//! stay on the serial path regardless, so thread spawn overhead never
//! penalises the tiny levels that dominate late passes.

use crate::itemset::{Itemset, ItemsetTable};
use fup_tidb::ItemId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Approximate join pairs per work batch claimed by one worker. Small
/// enough to load-balance skewed prefix distributions (a single giant
/// run — e.g. the whole of `L₁`, which is one run — is split into
/// left-row segments), large enough to amortise the claim and the
/// per-batch output vector.
const PAIRS_PER_BATCH: u64 = 8192;

/// Minimum join-pair count before the parallel path engages; below this
/// the level is generated serially even when more threads are configured.
const PARALLEL_MIN_PAIRS: u64 = 4096;

/// Configuration of candidate generation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenConfig {
    /// Worker threads for the join+prune. `0` (the default) resolves to
    /// [`std::thread::available_parallelism`]; `1` runs the serial loop.
    /// Every thread count produces byte-identical output.
    pub threads: usize,
}

impl GenConfig {
    /// The serial join+prune (`threads = 1`).
    pub fn serial() -> Self {
        GenConfig { threads: 1 }
    }

    /// A configuration with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        GenConfig { threads }
    }

    /// The effective worker count (`0` resolved to the machine's
    /// available parallelism).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Generates size-(k+1) candidates from the size-k large itemsets `prev`,
/// serially — the classic `apriori-gen` signature.
///
/// `prev` may be in any order; the output is sorted and duplicate-free.
pub fn apriori_gen(prev: &[Itemset]) -> Vec<Itemset> {
    apriori_gen_with(prev, &GenConfig::serial())
}

/// Generates size-(k+1) candidates from the size-k large itemsets `prev`,
/// with the join+prune parallelised per `config`.
///
/// `prev` may be in any order; the output is sorted and duplicate-free,
/// and identical (order included) for every thread count.
pub fn apriori_gen_with(prev: &[Itemset], config: &GenConfig) -> Vec<Itemset> {
    if prev.is_empty() {
        return Vec::new();
    }
    apriori_gen_table(&ItemsetTable::from_itemsets(prev), config)
}

/// Like [`apriori_gen_with`], but returning the flat table form — the
/// entry point for callers holding owned itemsets that want to stay flat
/// downstream.
pub fn apriori_gen_with_flat(prev: &[Itemset], config: &GenConfig) -> ItemsetTable {
    if prev.is_empty() {
        return ItemsetTable::empty();
    }
    apriori_gen_flat(&ItemsetTable::from_itemsets(prev), config)
}

/// Generates size-(k+1) candidates from an already-built flat level table
/// as owned [`Itemset`]s — a thin wrapper over [`apriori_gen_flat`] kept
/// for callers that need boxed candidates (FUP's mixed `W ∪ C` pools).
pub fn apriori_gen_table(table: &ItemsetTable, config: &GenConfig) -> Vec<Itemset> {
    apriori_gen_flat(table, config).to_itemsets()
}

/// Generates size-(k+1) candidates from the size-k level `table`,
/// emitting them straight into a flat [`ItemsetTable`] — no per-candidate
/// allocation anywhere in the join, the prune, or the output. This is the
/// core every other `apriori-gen` entry point wraps, and the form the
/// miners' level loop consumes (both counting backends build from the
/// table without re-boxing).
pub fn apriori_gen_flat(table: &ItemsetTable, config: &GenConfig) -> ItemsetTable {
    if table.is_empty() {
        return ItemsetTable::empty();
    }
    let runs = table.num_runs();
    let out_k = table.k() + 1;
    let threads = config.resolved_threads();
    if threads <= 1 || join_pairs(table) < PARALLEL_MIN_PAIRS {
        let mut out = Vec::new();
        let mut scratch = GenScratch::default();
        for r in 0..runs {
            let (start, end) = table.run_bounds(r);
            generate_range(
                table,
                r,
                start,
                end.saturating_sub(1),
                &mut scratch,
                &mut out,
            );
        }
        return ItemsetTable::from_flat_rows(out_k, out);
    }

    // Parallel path: the join is chopped into batches of left-row
    // segments holding ~PAIRS_PER_BATCH join pairs each — large runs
    // (e.g. all of L₁, which shares the empty prefix) are split across
    // batches, many tiny runs coalesce into one. Workers claim batch
    // indices off an atomic cursor; per-batch outputs concatenate in
    // batch order, so the result equals the serial output exactly.
    let batches = plan_batches(table);
    let workers = threads.min(batches.len());
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, Vec<ItemId>)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let batches = &batches;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, Vec<ItemId>)> = Vec::new();
                let mut scratch = GenScratch::default();
                loop {
                    let batch = cursor.fetch_add(1, Ordering::Relaxed);
                    if batch >= batches.len() {
                        break;
                    }
                    let mut out = Vec::new();
                    for seg in &batches[batch] {
                        generate_range(
                            table,
                            seg.run as usize,
                            seg.lo as usize,
                            seg.hi as usize,
                            &mut scratch,
                            &mut out,
                        );
                    }
                    if !out.is_empty() {
                        done.push((batch, out));
                    }
                }
                done
            }));
        }
        for handle in handles {
            per_worker.push(handle.join().expect("gen worker panicked"));
        }
    });
    let mut done: Vec<(usize, Vec<ItemId>)> = per_worker.into_iter().flatten().collect();
    done.sort_unstable_by_key(|(batch, _)| *batch);
    let mut out = Vec::with_capacity(done.iter().map(|(_, b)| b.len()).sum());
    for (_, batch) in done {
        out.extend(batch);
    }
    ItemsetTable::from_flat_rows(out_k, out)
}

/// Total number of join pairs across all runs — the work estimate gating
/// the parallel path.
fn join_pairs(table: &ItemsetTable) -> u64 {
    let mut total = 0u64;
    for r in 0..table.num_runs() {
        let (start, end) = table.run_bounds(r);
        let n = (end - start) as u64;
        total += n * (n - 1) / 2;
    }
    total
}

/// A left-row segment of one run: rows `lo..hi` join against everything
/// after them inside the run.
struct Segment {
    run: u32,
    lo: u32,
    hi: u32,
}

/// Chops the whole join into batches of segments carrying roughly
/// [`PAIRS_PER_BATCH`] join pairs each, in (run, left-row) order.
fn plan_batches(table: &ItemsetTable) -> Vec<Vec<Segment>> {
    let mut batches = Vec::new();
    let mut batch: Vec<Segment> = Vec::new();
    let mut acc = 0u64;
    for r in 0..table.num_runs() {
        let (start, end) = table.run_bounds(r);
        let mut lo = start;
        // Left rows reach only end-1 (the last row has no join partner).
        while lo + 1 < end {
            let mut hi = lo;
            while hi + 1 < end && acc < PAIRS_PER_BATCH {
                acc += (end - 1 - hi) as u64;
                hi += 1;
            }
            batch.push(Segment {
                run: r as u32,
                lo: lo as u32,
                hi: hi as u32,
            });
            if acc >= PAIRS_PER_BATCH {
                batches.push(std::mem::take(&mut batch));
                acc = 0;
            }
            lo = hi;
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    batches
}

/// Reusable per-worker state for [`generate_range`]: the prefix scratch
/// buffer and the merge cursors, allocated once per worker.
#[derive(Default)]
struct GenScratch {
    prefix: Vec<ItemId>,
    cursors: Vec<(usize, usize)>,
}

/// Joins and prunes the pairs of one prefix run whose *left* row lies in
/// `i_lo..i_hi` (capped at `end−1`: the run's last row has no join
/// partner), pushing survivors in pair order (which is lexicographic
/// candidate order). The serial path covers each run in one call; the
/// parallel path hands out left-row segments so a single giant run still
/// spreads across workers.
///
/// Prune check for a candidate `a ∪ {z}`: every k-subset must be a row of
/// `table`. The two subsets dropping `z` or `a`'s last item are the join
/// parents and known present; each remaining subset drops one prefix item
/// `m` and so has the fixed (k−1)-prefix `a∖{m}` with `z` appended. Since
/// `z` increases monotonically over the join partners of `a`, each
/// prefix's run is located **once** per left row (a binary search over
/// the run index) and then verified by a linear merge as `z` advances —
/// amortised O(1) per pair instead of a full binary search. A prefix with
/// no run at all prunes every candidate of `a` without touching the inner
/// loop.
fn generate_range(
    table: &ItemsetTable,
    run: usize,
    i_lo: usize,
    i_hi: usize,
    scratch: &mut GenScratch,
    out: &mut Vec<ItemId>,
) {
    let k = table.k();
    let (_, end) = table.run_bounds(run);
    debug_assert!(i_hi < end || i_lo >= i_hi, "left rows must stop at end-1");
    'left: for i in i_lo..i_hi {
        let a = table.row(i);
        // One run lookup per dropped prefix position; (cursor, end) pairs
        // then advance monotonically with z.
        scratch.cursors.clear();
        for m in 0..k.saturating_sub(1) {
            scratch.prefix.clear();
            scratch.prefix.extend_from_slice(&a[..m]);
            scratch.prefix.extend_from_slice(&a[m + 1..]);
            let (lo, hi) = table.prefix_run(&scratch.prefix);
            if lo == hi {
                continue 'left;
            }
            scratch.cursors.push((lo, hi));
        }
        for j in (i + 1)..end {
            let z = table.row(j)[k - 1];
            let mut ok = true;
            for c in scratch.cursors.iter_mut() {
                while c.0 < c.1 && table.row(c.0)[k - 1] < z {
                    c.0 += 1;
                }
                if c.0 == c.1 || table.row(c.0)[k - 1] != z {
                    ok = false;
                    break;
                }
            }
            if ok {
                // Survivor: append the flat (k+1)-row — the join parent's
                // items plus the joined item, already in sorted order.
                out.extend_from_slice(a);
                out.push(z);
            }
        }
    }
}

/// The pre-flat `apriori-gen`: sorts owned references, prunes through a
/// `HashSet` of itemsets, and allocates per joined pair. Kept as the
/// byte-identical reference the equivalence tests and `bench_gen` compare
/// the flat implementation against.
pub fn apriori_gen_reference(prev: &[Itemset]) -> Vec<Itemset> {
    if prev.is_empty() {
        return Vec::new();
    }
    let k = prev[0].k();
    debug_assert!(
        prev.iter().all(|x| x.k() == k),
        "mixed sizes in apriori_gen"
    );

    let mut sorted: Vec<&Itemset> = prev.iter().collect();
    sorted.sort();
    sorted.dedup();
    let members: HashSet<&Itemset> = sorted.iter().copied().collect();

    let mut out = Vec::new();
    // Scan runs of itemsets sharing the (k−1)-prefix; all pairs inside a
    // run join.
    let mut run_start = 0;
    while run_start < sorted.len() {
        let prefix = &sorted[run_start].items()[..k - 1];
        let mut run_end = run_start + 1;
        while run_end < sorted.len() && &sorted[run_end].items()[..k - 1] == prefix {
            run_end += 1;
        }
        for i in run_start..run_end {
            for j in (i + 1)..run_end {
                let last = *sorted[j].items().last().expect("non-empty itemset");
                let candidate = sorted[i].extended_with(last);
                if candidate.proper_subsets().all(|sub| members.contains(&sub)) {
                    out.push(candidate);
                }
            }
        }
        run_start = run_end;
    }
    out
}

/// Deterministic clustered synthetic `L₂` shared by the equivalence
/// tests and `bench_gen`: items `0..clusters*size` partitioned into
/// clusters, all within-cluster pairs except a hashed `1/drop_mod`
/// sliver — the join stays run-dense while the prune has real work to
/// reject (every dropped pair kills the joined triples above it).
pub fn clustered_l2(clusters: u32, size: u32, drop_mod: u32) -> Vec<Itemset> {
    let drop_mod = drop_mod.max(2);
    let mut l2 = Vec::new();
    for c in 0..clusters {
        let base = c * size;
        for a in 0..size {
            for b in (a + 1)..size {
                if (a * 31 + b * 17 + c) % drop_mod != 0 {
                    l2.push(Itemset::from_items([base + a, base + b]));
                }
            }
        }
    }
    l2
}

/// Reference implementation used by tests and property checks: all
/// (k+1)-item unions of members whose every k-subset is a member.
pub fn apriori_gen_naive(prev: &[Itemset]) -> Vec<Itemset> {
    if prev.is_empty() {
        return Vec::new();
    }
    let members: HashSet<&Itemset> = prev.iter().collect();
    let mut out: HashSet<Itemset> = HashSet::new();
    for a in prev {
        for b in prev {
            let u = a.union(b);
            if u.k() == a.k() + 1 && u.proper_subsets().all(|s| members.contains(&s)) {
                out.insert(u);
            }
        }
    }
    let mut v: Vec<Itemset> = out.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn paper_example_2_candidate_generation() {
        // Example 2: apriori-gen on L'₁ = {I1, I2, I4} yields
        // C₂ = {I1I2, I1I4, I2I4}.
        let l1 = vec![s(&[1]), s(&[2]), s(&[4])];
        let c2 = apriori_gen(&l1);
        assert_eq!(c2, vec![s(&[1, 2]), s(&[1, 4]), s(&[2, 4])]);
    }

    #[test]
    fn join_requires_shared_prefix() {
        // {1,2} and {1,3} join to {1,2,3}; pruned unless {2,3} is large.
        let l2 = vec![s(&[1, 2]), s(&[1, 3])];
        assert!(apriori_gen(&l2).is_empty());
        let l2 = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3])];
        assert_eq!(apriori_gen(&l2), vec![s(&[1, 2, 3])]);
    }

    #[test]
    fn classic_as94_example() {
        // From the Apriori paper: L₃ = {124, 125... } variant:
        // L3 = {{1,2,3},{1,2,4},{1,3,4},{1,3,5},{2,3,4}}
        // join → {1,2,3,4} (from 123+124), {1,3,4,5} (from 134+135)
        // prune → {1,3,4,5} dropped because {1,4,5} ∉ L3.
        let l3 = vec![
            s(&[1, 2, 3]),
            s(&[1, 2, 4]),
            s(&[1, 3, 4]),
            s(&[1, 3, 5]),
            s(&[2, 3, 4]),
        ];
        assert_eq!(apriori_gen(&l3), vec![s(&[1, 2, 3, 4])]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(apriori_gen(&[]).is_empty());
        assert!(apriori_gen(&[s(&[1, 2])]).is_empty());
    }

    #[test]
    fn unsorted_input_handled() {
        let l1 = vec![s(&[4]), s(&[1]), s(&[2])];
        let c2 = apriori_gen(&l1);
        assert_eq!(c2, vec![s(&[1, 2]), s(&[1, 4]), s(&[2, 4])]);
    }

    #[test]
    fn duplicate_input_itemsets_ignored() {
        let l1 = vec![s(&[1]), s(&[1]), s(&[2])];
        assert_eq!(apriori_gen(&l1), vec![s(&[1, 2])]);
    }

    #[test]
    fn matches_naive_on_dense_level() {
        // All 2-subsets of {0..5} are large → C3 = all 3-subsets.
        let mut l2 = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                l2.push(s(&[a, b]));
            }
        }
        let fast = apriori_gen(&l2);
        let naive = apriori_gen_naive(&l2);
        assert_eq!(fast, naive);
        assert_eq!(fast.len(), 20); // C(6,3)
    }

    #[test]
    fn matches_naive_on_sparse_level() {
        let l2 = vec![
            s(&[1, 2]),
            s(&[2, 3]),
            s(&[1, 3]),
            s(&[3, 4]),
            s(&[2, 4]),
            s(&[5, 6]),
        ];
        assert_eq!(apriori_gen(&l2), apriori_gen_naive(&l2));
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let mut l1: Vec<Itemset> = (0..10u32).map(|i| s(&[i])).collect();
        l1.reverse();
        let c2 = apriori_gen(&l1);
        assert_eq!(c2.len(), 45);
        for w in c2.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn matches_reference_implementation() {
        // The flat implementation must be byte-identical (order included)
        // to the pre-flat HashSet implementation on every input.
        let mut l3 = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..6 {
                for c in (b + 1)..7 {
                    if (a + b + c) % 3 != 0 {
                        l3.push(s(&[a, b, c]));
                    }
                }
            }
        }
        assert_eq!(apriori_gen(&l3), apriori_gen_reference(&l3));
    }

    #[test]
    fn parallel_output_identical_to_serial() {
        let l2 = clustered_l2(40, 12, 13);
        let serial = apriori_gen_with(&l2, &GenConfig::serial());
        assert!(!serial.is_empty());
        // Enough pairs to clear the serial cutoff and engage workers.
        assert!(join_pairs(&ItemsetTable::from_itemsets(&l2)) >= PARALLEL_MIN_PAIRS);
        for threads in [2, 3, 8] {
            let parallel = apriori_gen_with(&l2, &GenConfig::with_threads(threads));
            assert_eq!(parallel, serial, "threads {threads}");
        }
        assert_eq!(serial, apriori_gen_reference(&l2));
    }

    #[test]
    fn single_run_level_parallelizes_identically() {
        // All of L₁ is one run (the empty prefix), so C₂ generation must
        // be split by left-row segments — and still match serial exactly.
        let l1: Vec<Itemset> = (0..200u32).map(|i| s(&[i])).collect();
        let serial = apriori_gen_with(&l1, &GenConfig::serial());
        assert_eq!(serial.len(), 199 * 200 / 2);
        for threads in [2, 8] {
            let parallel = apriori_gen_with(&l1, &GenConfig::with_threads(threads));
            assert_eq!(parallel, serial, "threads {threads}");
        }
        // Same for a k=2 level dominated by one long run.
        let mut l2: Vec<Itemset> = (1..200u32).map(|i| s(&[0, i])).collect();
        l2.push(s(&[1, 2]));
        let serial = apriori_gen_with(&l2, &GenConfig::serial());
        for threads in [2, 8] {
            let parallel = apriori_gen_with(&l2, &GenConfig::with_threads(threads));
            assert_eq!(parallel, serial, "threads {threads}");
        }
    }

    #[test]
    fn small_levels_stay_serial_and_correct() {
        // Below the work cutoff the parallel config must fall back to the
        // serial loop (and of course still be correct).
        let l2 = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3])];
        let out = apriori_gen_with(&l2, &GenConfig::with_threads(8));
        assert_eq!(out, vec![s(&[1, 2, 3])]);
    }

    #[test]
    fn table_entry_point_matches_slice_entry_point() {
        let l2 = clustered_l2(3, 8, 13);
        let table = ItemsetTable::from_itemsets(&l2);
        assert_eq!(
            apriori_gen_table(&table, &GenConfig::serial()),
            apriori_gen(&l2)
        );
    }

    #[test]
    fn flat_output_matches_boxed_output() {
        // The flat table form must hold exactly the boxed candidates, row
        // for row, at every thread count (including the split giant run).
        for l in [
            clustered_l2(12, 10, 7),
            (0..80u32).map(|i| s(&[i])).collect(),
        ] {
            let boxed = apriori_gen_with(&l, &GenConfig::serial());
            for threads in [1, 2, 8] {
                let flat = apriori_gen_with_flat(&l, &GenConfig::with_threads(threads));
                assert_eq!(flat.to_itemsets(), boxed, "threads {threads}");
            }
        }
    }

    #[test]
    fn zero_threads_resolves_and_matches() {
        let l2 = clustered_l2(10, 10, 13);
        assert!(GenConfig::default().resolved_threads() >= 1);
        assert_eq!(
            apriori_gen_with(&l2, &GenConfig::default()),
            apriori_gen_with(&l2, &GenConfig::serial())
        );
    }
}

//! Candidate generation: the `apriori-gen` function of Agrawal & Srikant,
//! used verbatim by Apriori, DHP, and FUP ("the set of candidate sets, C₂,
//! is generated … by applying the apriori-gen function on L'₁", §3.2).

use crate::itemset::Itemset;
use std::collections::HashSet;

/// Generates size-(k+1) candidates from the size-k large itemsets `prev`.
///
/// Two phases, per the original definition:
///
/// 1. **Join** — pairs of itemsets in `prev` sharing their first `k−1`
///    items are merged (`{a..y} ⋈ {a..z} → {a..y,z}` for `y < z`).
/// 2. **Prune** — a joined candidate is kept only if *every* k-subset is in
///    `prev` (any large itemset has only large subsets).
///
/// `prev` may be in any order; the output is sorted and duplicate-free.
pub fn apriori_gen(prev: &[Itemset]) -> Vec<Itemset> {
    if prev.is_empty() {
        return Vec::new();
    }
    let k = prev[0].k();
    debug_assert!(
        prev.iter().all(|x| x.k() == k),
        "mixed sizes in apriori_gen"
    );

    let mut sorted: Vec<&Itemset> = prev.iter().collect();
    sorted.sort();
    sorted.dedup();
    let members: HashSet<&Itemset> = sorted.iter().copied().collect();

    let mut out = Vec::new();
    // Scan runs of itemsets sharing the (k−1)-prefix; all pairs inside a
    // run join.
    let mut run_start = 0;
    while run_start < sorted.len() {
        let prefix = &sorted[run_start].items()[..k - 1];
        let mut run_end = run_start + 1;
        while run_end < sorted.len() && &sorted[run_end].items()[..k - 1] == prefix {
            run_end += 1;
        }
        for i in run_start..run_end {
            for j in (i + 1)..run_end {
                let last = *sorted[j].items().last().expect("non-empty itemset");
                let candidate = sorted[i].extended_with(last);
                if subsets_all_large(&candidate, &members) {
                    out.push(candidate);
                }
            }
        }
        run_start = run_end;
    }
    out
}

/// Prune check: every k-subset of the (k+1)-candidate must be large.
///
/// The two subsets formed by dropping one of the last two items are the
/// join parents and always large; they are re-checked here for simplicity
/// (cost is negligible next to the hash lookups for the other subsets).
fn subsets_all_large(candidate: &Itemset, members: &HashSet<&Itemset>) -> bool {
    candidate.proper_subsets().all(|sub| members.contains(&sub))
}

/// Reference implementation used by tests and property checks: all
/// (k+1)-item unions of members whose every k-subset is a member.
pub fn apriori_gen_naive(prev: &[Itemset]) -> Vec<Itemset> {
    if prev.is_empty() {
        return Vec::new();
    }
    let members: HashSet<&Itemset> = prev.iter().collect();
    let mut out: HashSet<Itemset> = HashSet::new();
    for a in prev {
        for b in prev {
            let u = a.union(b);
            if u.k() == a.k() + 1 && u.proper_subsets().all(|s| members.contains(&s)) {
                out.insert(u);
            }
        }
    }
    let mut v: Vec<Itemset> = out.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn paper_example_2_candidate_generation() {
        // Example 2: apriori-gen on L'₁ = {I1, I2, I4} yields
        // C₂ = {I1I2, I1I4, I2I4}.
        let l1 = vec![s(&[1]), s(&[2]), s(&[4])];
        let c2 = apriori_gen(&l1);
        assert_eq!(c2, vec![s(&[1, 2]), s(&[1, 4]), s(&[2, 4])]);
    }

    #[test]
    fn join_requires_shared_prefix() {
        // {1,2} and {1,3} join to {1,2,3}; pruned unless {2,3} is large.
        let l2 = vec![s(&[1, 2]), s(&[1, 3])];
        assert!(apriori_gen(&l2).is_empty());
        let l2 = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3])];
        assert_eq!(apriori_gen(&l2), vec![s(&[1, 2, 3])]);
    }

    #[test]
    fn classic_as94_example() {
        // From the Apriori paper: L₃ = {124, 125... } variant:
        // L3 = {{1,2,3},{1,2,4},{1,3,4},{1,3,5},{2,3,4}}
        // join → {1,2,3,4} (from 123+124), {1,3,4,5} (from 134+135)
        // prune → {1,3,4,5} dropped because {1,4,5} ∉ L3.
        let l3 = vec![
            s(&[1, 2, 3]),
            s(&[1, 2, 4]),
            s(&[1, 3, 4]),
            s(&[1, 3, 5]),
            s(&[2, 3, 4]),
        ];
        assert_eq!(apriori_gen(&l3), vec![s(&[1, 2, 3, 4])]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(apriori_gen(&[]).is_empty());
        assert!(apriori_gen(&[s(&[1, 2])]).is_empty());
    }

    #[test]
    fn unsorted_input_handled() {
        let l1 = vec![s(&[4]), s(&[1]), s(&[2])];
        let c2 = apriori_gen(&l1);
        assert_eq!(c2, vec![s(&[1, 2]), s(&[1, 4]), s(&[2, 4])]);
    }

    #[test]
    fn duplicate_input_itemsets_ignored() {
        let l1 = vec![s(&[1]), s(&[1]), s(&[2])];
        assert_eq!(apriori_gen(&l1), vec![s(&[1, 2])]);
    }

    #[test]
    fn matches_naive_on_dense_level() {
        // All 2-subsets of {0..5} are large → C3 = all 3-subsets.
        let mut l2 = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                l2.push(s(&[a, b]));
            }
        }
        let fast = apriori_gen(&l2);
        let naive = apriori_gen_naive(&l2);
        assert_eq!(fast, naive);
        assert_eq!(fast.len(), 20); // C(6,3)
    }

    #[test]
    fn matches_naive_on_sparse_level() {
        let l2 = vec![
            s(&[1, 2]),
            s(&[2, 3]),
            s(&[1, 3]),
            s(&[3, 4]),
            s(&[2, 4]),
            s(&[5, 6]),
        ];
        assert_eq!(apriori_gen(&l2), apriori_gen_naive(&l2));
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let mut l1: Vec<Itemset> = (0..10u32).map(|i| s(&[i])).collect();
        l1.reverse();
        let c2 = apriori_gen(&l1);
        assert_eq!(c2.len(), 45);
        for w in c2.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

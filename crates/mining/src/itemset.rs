//! Immutable sorted itemsets.

use fup_tidb::ItemId;
use std::fmt;
use std::ops::Deref;

/// An itemset `X ⊆ I`: an immutable, sorted, duplicate-free set of items.
///
/// The sorted order underpins `apriori-gen` (itemsets sharing a (k−1)-item
/// prefix are joined), hash-tree descent, and linear-merge containment.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Itemset {
    items: Box<[ItemId]>,
}

impl Itemset {
    /// Builds an itemset from arbitrary items; sorts and deduplicates.
    pub fn from_items<I, T>(items: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<ItemId>,
    {
        let mut v: Vec<ItemId> = items.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Builds a 1-itemset.
    pub fn single(item: ItemId) -> Self {
        Itemset {
            items: Box::new([item]),
        }
    }

    /// Builds an itemset from a vector that is already sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_vec(v: Vec<ItemId>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// The size `k` of this k-itemset.
    #[inline]
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// `true` if `self ⊆ other` (both sorted; linear merge).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        fup_tidb::transaction::contains_sorted(other.items(), self.items())
    }

    /// `true` if this itemset contains `item`.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// The (k−1)-subset obtained by dropping the item at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn without_index(&self, i: usize) -> Itemset {
        let mut v = Vec::with_capacity(self.items.len() - 1);
        v.extend_from_slice(&self.items[..i]);
        v.extend_from_slice(&self.items[i + 1..]);
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Iterates all (k−1)-subsets.
    pub fn proper_subsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |i| self.without_index(i))
    }

    /// The set difference `self \ other` (both sorted).
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let kept: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|i| !other.contains(*i))
            .collect();
        Itemset {
            items: kept.into_boxed_slice(),
        }
    }

    /// The union `self ∪ other` (both sorted; linear merge).
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut v = Vec::with_capacity(self.items.len() + other.items.len());
        let (a, b) = (self.items(), other.items());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    v.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&a[i..]);
        v.extend_from_slice(&b[j..]);
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Extends a k-itemset with an item strictly greater than its last item,
    /// producing a (k+1)-itemset. Used by the `apriori-gen` join.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `item` is not strictly greater than the
    /// current maximum.
    pub fn extended_with(&self, item: ItemId) -> Itemset {
        debug_assert!(
            self.items.last().is_none_or(|&last| last < item),
            "extension item must exceed current maximum"
        );
        let mut v = Vec::with_capacity(self.items.len() + 1);
        v.extend_from_slice(&self.items);
        v.push(item);
        Itemset {
            items: v.into_boxed_slice(),
        }
    }
}

impl Deref for Itemset {
    type Target = [ItemId];
    #[inline]
    fn deref(&self) -> &[ItemId] {
        &self.items
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}}",
            self.items
                .iter()
                .map(|i| i.raw().to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let x = s(&[3, 1, 2, 3]);
        assert_eq!(x.items(), &[ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(x.k(), 3);
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(Itemset::single(ItemId(5)).k(), 1);
        assert!(s(&[]).is_empty());
    }

    #[test]
    fn subset_relation() {
        assert!(s(&[1, 3]).is_subset_of(&s(&[1, 2, 3])));
        assert!(!s(&[1, 4]).is_subset_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_subset_of(&s(&[1])));
        assert!(!s(&[1, 2, 3]).is_subset_of(&s(&[1, 2])));
    }

    #[test]
    fn without_index_drops_one_item() {
        let x = s(&[1, 2, 3]);
        assert_eq!(x.without_index(0), s(&[2, 3]));
        assert_eq!(x.without_index(1), s(&[1, 3]));
        assert_eq!(x.without_index(2), s(&[1, 2]));
    }

    #[test]
    fn proper_subsets_enumerates_all() {
        let x = s(&[1, 2, 3]);
        let subs: Vec<Itemset> = x.proper_subsets().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&s(&[1, 2])));
        assert!(subs.contains(&s(&[1, 3])));
        assert!(subs.contains(&s(&[2, 3])));
    }

    #[test]
    fn union_merges() {
        assert_eq!(s(&[1, 3]).union(&s(&[2, 3, 4])), s(&[1, 2, 3, 4]));
        assert_eq!(s(&[]).union(&s(&[1])), s(&[1]));
        assert_eq!(s(&[1]).union(&s(&[])), s(&[1]));
    }

    #[test]
    fn difference_removes() {
        assert_eq!(s(&[1, 2, 3]).difference(&s(&[2])), s(&[1, 3]));
        assert_eq!(s(&[1, 2]).difference(&s(&[3])), s(&[1, 2]));
        assert_eq!(s(&[1]).difference(&s(&[1])), s(&[]));
    }

    #[test]
    fn extended_with_appends() {
        assert_eq!(s(&[1, 2]).extended_with(ItemId(5)), s(&[1, 2, 5]));
        assert_eq!(s(&[]).extended_with(ItemId(1)), s(&[1]));
    }

    #[test]
    #[should_panic(expected = "exceed current maximum")]
    #[cfg(debug_assertions)]
    fn extended_with_rejects_non_increasing() {
        let _ = s(&[1, 5]).extended_with(ItemId(3));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![s(&[2]), s(&[1, 2]), s(&[1])];
        v.sort();
        assert_eq!(v, vec![s(&[1]), s(&[1, 2]), s(&[2])]);
    }

    #[test]
    fn contains_item() {
        let x = s(&[1, 5, 9]);
        assert!(x.contains(ItemId(5)));
        assert!(!x.contains(ItemId(6)));
    }
}

//! Immutable sorted itemsets, and the flat [`ItemsetTable`] arena that
//! stores a whole level `L_k` contiguously for cache-friendly candidate
//! generation.

use fup_tidb::ItemId;
use std::fmt;
use std::ops::Deref;

/// An itemset `X ⊆ I`: an immutable, sorted, duplicate-free set of items.
///
/// The sorted order underpins `apriori-gen` (itemsets sharing a (k−1)-item
/// prefix are joined), hash-tree descent, and linear-merge containment.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Itemset {
    items: Box<[ItemId]>,
}

impl Itemset {
    /// Builds an itemset from arbitrary items; sorts and deduplicates.
    pub fn from_items<I, T>(items: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<ItemId>,
    {
        let mut v: Vec<ItemId> = items.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Builds a 1-itemset.
    pub fn single(item: ItemId) -> Self {
        Itemset {
            items: Box::new([item]),
        }
    }

    /// Builds an itemset from a vector that is already sorted and
    /// duplicate-free.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_vec(v: Vec<ItemId>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// The size `k` of this k-itemset.
    #[inline]
    pub fn k(&self) -> usize {
        self.items.len()
    }

    /// `true` for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// `true` if `self ⊆ other` (both sorted; linear merge).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        fup_tidb::transaction::contains_sorted(other.items(), self.items())
    }

    /// `true` if this itemset contains `item`.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// The (k−1)-subset obtained by dropping the item at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn without_index(&self, i: usize) -> Itemset {
        let mut v = Vec::with_capacity(self.items.len() - 1);
        v.extend_from_slice(&self.items[..i]);
        v.extend_from_slice(&self.items[i + 1..]);
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Iterates all (k−1)-subsets.
    pub fn proper_subsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |i| self.without_index(i))
    }

    /// The set difference `self \ other` (both sorted).
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let kept: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|i| !other.contains(*i))
            .collect();
        Itemset {
            items: kept.into_boxed_slice(),
        }
    }

    /// The union `self ∪ other` (both sorted; linear merge).
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut v = Vec::with_capacity(self.items.len() + other.items.len());
        let (a, b) = (self.items(), other.items());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    v.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    v.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    v.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        v.extend_from_slice(&a[i..]);
        v.extend_from_slice(&b[j..]);
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Extends a k-itemset with an item strictly greater than its last item,
    /// producing a (k+1)-itemset. Used by the `apriori-gen` join.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `item` is not strictly greater than the
    /// current maximum.
    pub fn extended_with(&self, item: ItemId) -> Itemset {
        debug_assert!(
            self.items.last().is_none_or(|&last| last < item),
            "extension item must exceed current maximum"
        );
        let mut v = Vec::with_capacity(self.items.len() + 1);
        v.extend_from_slice(&self.items);
        v.push(item);
        Itemset {
            items: v.into_boxed_slice(),
        }
    }
}

/// A level of same-size itemsets stored flat: one contiguous k-strided
/// `Vec<ItemId>` of rows in lexicographic order, plus a run index over
/// shared (k−1)-prefixes.
///
/// This is the structure-of-arrays representation of an `L_k`: row `i`
/// occupies `items[i*k .. (i+1)*k]`, rows are strictly increasing (sorted,
/// duplicate-free), and `run_starts` marks every maximal run of rows that
/// share their first `k−1` items. The `apriori-gen` join enumerates pairs
/// inside one run without touching any other memory, membership tests are
/// a binary search over the flat rows (no hashing, no owned-itemset
/// allocation), and the whole level lives in one allocation instead of one
/// `Box` per itemset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemsetTable {
    /// Row width; 0 only for the empty table.
    k: usize,
    /// Row-major item data, `k * len()` entries.
    items: Vec<ItemId>,
    /// Row index of each (k−1)-prefix run start, terminated by `len()`.
    run_starts: Vec<u32>,
}

impl ItemsetTable {
    /// Builds a table from itemsets of one size `k ≥ 1`, sorting and
    /// deduplicating only when needed: input that is already strictly
    /// increasing (the usual case — every miner feeds the previous pass's
    /// sorted output straight back in) is detected with one linear scan
    /// and copied without the sort.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the itemsets have mixed sizes.
    pub fn from_itemsets(sets: &[Itemset]) -> Self {
        let Some(first) = sets.first() else {
            return ItemsetTable::empty();
        };
        let k = first.k();
        debug_assert!(
            sets.iter().all(|x| x.k() == k),
            "mixed sizes in ItemsetTable"
        );
        if sets.windows(2).all(|w| w[0].items() < w[1].items()) {
            return Self::from_sorted_itemsets(sets);
        }
        let mut refs: Vec<&Itemset> = sets.iter().collect();
        refs.sort();
        refs.dedup();
        let mut items = Vec::with_capacity(refs.len() * k);
        for s in &refs {
            items.extend_from_slice(s.items());
        }
        Self::from_flat(k, items)
    }

    /// Builds a table from itemsets that are already strictly increasing
    /// (sorted, duplicate-free) — the fast path, skipping the sort.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the sorted-unique invariant does not hold
    /// or the itemsets have mixed sizes.
    pub fn from_sorted_itemsets(sets: &[Itemset]) -> Self {
        let Some(first) = sets.first() else {
            return ItemsetTable::empty();
        };
        let k = first.k();
        debug_assert!(
            sets.iter().all(|x| x.k() == k),
            "mixed sizes in ItemsetTable"
        );
        debug_assert!(
            sets.windows(2).all(|w| w[0].items() < w[1].items()),
            "itemsets must be strictly increasing"
        );
        let mut items = Vec::with_capacity(sets.len() * k);
        for s in sets {
            items.extend_from_slice(s.items());
        }
        Self::from_flat(k, items)
    }

    /// An empty table (no rows, width 0).
    pub fn empty() -> Self {
        ItemsetTable {
            k: 0,
            items: Vec::new(),
            run_starts: vec![0],
        }
    }

    /// Builds a table directly from row-major item data whose rows are
    /// already strictly increasing (lexicographically sorted and
    /// duplicate-free) — the allocation-free counterpart of
    /// [`ItemsetTable::from_sorted_itemsets`] used by the flat candidate
    /// pipeline (`apriori_gen` output, miner level filtering).
    ///
    /// An empty `items` yields the empty table regardless of `k`.
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` is not a multiple of `k`, or in debug
    /// builds if the rows are not strictly increasing (within each row
    /// and from row to row).
    pub fn from_flat_rows(k: usize, items: Vec<ItemId>) -> Self {
        if items.is_empty() {
            return ItemsetTable::empty();
        }
        assert!(k >= 1, "rows must have width at least 1");
        assert_eq!(items.len() % k, 0, "row data must be k-strided");
        debug_assert!(
            items
                .chunks_exact(k)
                .all(|r| r.windows(2).all(|w| w[0] < w[1])),
            "row items must be strictly increasing"
        );
        debug_assert!(
            items
                .chunks_exact(k)
                .zip(items.chunks_exact(k).skip(1))
                .all(|(a, b)| a < b),
            "rows must be strictly increasing"
        );
        Self::from_flat(k, items)
    }

    /// Keeps only the rows for which `keep` returns `true`, compacting
    /// the item data in place and rebuilding the run index. Row order is
    /// preserved — the table stays sorted.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(&[ItemId]) -> bool) {
        let k = self.k;
        if k == 0 {
            return;
        }
        let n = self.len();
        let mut write = 0usize;
        for row in 0..n {
            let start = row * k;
            if keep(&self.items[start..start + k]) {
                if write != start {
                    self.items.copy_within(start..start + k, write);
                }
                write += k;
            }
        }
        self.items.truncate(write);
        if self.items.is_empty() {
            *self = ItemsetTable::empty();
            return;
        }
        *self = Self::from_flat(k, std::mem::take(&mut self.items));
    }

    /// Row `i` materialised as an owned [`Itemset`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row_itemset(&self, i: usize) -> Itemset {
        Itemset::from_sorted_vec(self.row(i).to_vec())
    }

    /// Builds the run index over sorted row-major data.
    fn from_flat(k: usize, items: Vec<ItemId>) -> Self {
        debug_assert!(k >= 1);
        debug_assert_eq!(items.len() % k, 0);
        let n = items.len() / k;
        let mut run_starts = Vec::new();
        let mut row = 0;
        while row < n {
            run_starts.push(row as u32);
            let prefix = &items[row * k..(row + 1) * k - 1];
            let mut end = row + 1;
            while end < n && &items[end * k..(end + 1) * k - 1] == prefix {
                end += 1;
            }
            row = end;
        }
        run_starts.push(n as u32);
        ItemsetTable {
            k,
            items,
            run_starts,
        }
    }

    /// The row width `k` (0 only when the table is empty).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len().checked_div(self.k).unwrap_or(0)
    }

    /// `true` when the table holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Row `i` as an item slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[ItemId] {
        &self.items[i * self.k..(i + 1) * self.k]
    }

    /// The whole row-major item arena (`k * len()` entries).
    #[inline]
    pub fn flat_items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of (k−1)-prefix runs.
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.run_starts.len() - 1
    }

    /// Half-open row range `[start, end)` of run `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_runs()`.
    #[inline]
    pub fn run_bounds(&self, r: usize) -> (usize, usize) {
        (self.run_starts[r] as usize, self.run_starts[r + 1] as usize)
    }

    /// `true` if `needle` (sorted, length `k`) is a row of this table —
    /// a binary search over the flat rows.
    pub fn contains(&self, needle: &[ItemId]) -> bool {
        debug_assert_eq!(needle.len(), self.k);
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.row(mid).cmp(needle) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The half-open row range of the run whose shared (k−1)-prefix is
    /// exactly `prefix`, or the empty range `(0, 0)` when no row has it —
    /// a binary search over the run index (runs have distinct, ascending
    /// prefixes).
    pub fn prefix_run(&self, prefix: &[ItemId]) -> (usize, usize) {
        debug_assert_eq!(prefix.len() + 1, self.k.max(1));
        let (mut lo, mut hi) = (0usize, self.num_runs());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let first = self.run_starts[mid] as usize;
            match self.row(first)[..self.k - 1].cmp(prefix) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return self.run_bounds(mid),
            }
        }
        (0, 0)
    }

    /// Iterates the rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[ItemId]> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Materialises every row as an owned [`Itemset`], in table order.
    pub fn to_itemsets(&self) -> Vec<Itemset> {
        self.rows()
            .map(|r| Itemset::from_sorted_vec(r.to_vec()))
            .collect()
    }

    /// Consumes the table, yielding `(k, row-major item data)` — the raw
    /// material [`HashTree::build_from_table`](crate::HashTree) packs
    /// without re-boxing any candidate.
    pub fn into_flat(self) -> (usize, Vec<ItemId>) {
        (self.k, self.items)
    }
}

impl Deref for Itemset {
    type Target = [ItemId];
    #[inline]
    fn deref(&self) -> &[ItemId] {
        &self.items
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}}",
            self.items
                .iter()
                .map(|i| i.raw().to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Itemset::from_items(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let x = s(&[3, 1, 2, 3]);
        assert_eq!(x.items(), &[ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(x.k(), 3);
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(Itemset::single(ItemId(5)).k(), 1);
        assert!(s(&[]).is_empty());
    }

    #[test]
    fn subset_relation() {
        assert!(s(&[1, 3]).is_subset_of(&s(&[1, 2, 3])));
        assert!(!s(&[1, 4]).is_subset_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_subset_of(&s(&[1])));
        assert!(!s(&[1, 2, 3]).is_subset_of(&s(&[1, 2])));
    }

    #[test]
    fn without_index_drops_one_item() {
        let x = s(&[1, 2, 3]);
        assert_eq!(x.without_index(0), s(&[2, 3]));
        assert_eq!(x.without_index(1), s(&[1, 3]));
        assert_eq!(x.without_index(2), s(&[1, 2]));
    }

    #[test]
    fn proper_subsets_enumerates_all() {
        let x = s(&[1, 2, 3]);
        let subs: Vec<Itemset> = x.proper_subsets().collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&s(&[1, 2])));
        assert!(subs.contains(&s(&[1, 3])));
        assert!(subs.contains(&s(&[2, 3])));
    }

    #[test]
    fn union_merges() {
        assert_eq!(s(&[1, 3]).union(&s(&[2, 3, 4])), s(&[1, 2, 3, 4]));
        assert_eq!(s(&[]).union(&s(&[1])), s(&[1]));
        assert_eq!(s(&[1]).union(&s(&[])), s(&[1]));
    }

    #[test]
    fn difference_removes() {
        assert_eq!(s(&[1, 2, 3]).difference(&s(&[2])), s(&[1, 3]));
        assert_eq!(s(&[1, 2]).difference(&s(&[3])), s(&[1, 2]));
        assert_eq!(s(&[1]).difference(&s(&[1])), s(&[]));
    }

    #[test]
    fn extended_with_appends() {
        assert_eq!(s(&[1, 2]).extended_with(ItemId(5)), s(&[1, 2, 5]));
        assert_eq!(s(&[]).extended_with(ItemId(1)), s(&[1]));
    }

    #[test]
    #[should_panic(expected = "exceed current maximum")]
    #[cfg(debug_assertions)]
    fn extended_with_rejects_non_increasing() {
        let _ = s(&[1, 5]).extended_with(ItemId(3));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![s(&[2]), s(&[1, 2]), s(&[1])];
        v.sort();
        assert_eq!(v, vec![s(&[1]), s(&[1, 2]), s(&[2])]);
    }

    #[test]
    fn contains_item() {
        let x = s(&[1, 5, 9]);
        assert!(x.contains(ItemId(5)));
        assert!(!x.contains(ItemId(6)));
    }

    #[test]
    fn table_from_sorted_and_unsorted_agree() {
        let sorted = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3]), s(&[2, 5])];
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        shuffled.push(s(&[1, 3])); // duplicate
        let a = ItemsetTable::from_itemsets(&sorted);
        let b = ItemsetTable::from_itemsets(&shuffled);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.k(), 2);
        assert_eq!(a.to_itemsets(), sorted);
    }

    #[test]
    fn table_run_index_groups_shared_prefixes() {
        let sets = vec![
            s(&[1, 2, 4]),
            s(&[1, 2, 7]),
            s(&[1, 3, 4]),
            s(&[2, 3, 4]),
            s(&[2, 3, 9]),
        ];
        let t = ItemsetTable::from_itemsets(&sets);
        assert_eq!(t.num_runs(), 3);
        assert_eq!(t.run_bounds(0), (0, 2)); // prefix {1,2}
        assert_eq!(t.run_bounds(1), (2, 3)); // prefix {1,3}
        assert_eq!(t.run_bounds(2), (3, 5)); // prefix {2,3}
    }

    #[test]
    fn table_k1_is_one_run() {
        let sets: Vec<Itemset> = (0..5u32).map(|i| s(&[i])).collect();
        let t = ItemsetTable::from_itemsets(&sets);
        assert_eq!(t.num_runs(), 1);
        assert_eq!(t.run_bounds(0), (0, 5));
    }

    #[test]
    fn table_contains_is_exact() {
        let sets = vec![s(&[1, 2]), s(&[1, 9]), s(&[4, 5]), s(&[7, 8])];
        let t = ItemsetTable::from_itemsets(&sets);
        for x in &sets {
            assert!(t.contains(x.items()), "{x:?}");
        }
        assert!(!t.contains(&[ItemId(1), ItemId(3)]));
        assert!(!t.contains(&[ItemId(0), ItemId(1)]));
        assert!(!t.contains(&[ItemId(7), ItemId(9)]));
    }

    #[test]
    fn table_empty() {
        let t = ItemsetTable::from_itemsets(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.num_runs(), 0);
        assert!(t.to_itemsets().is_empty());
    }

    #[test]
    fn from_flat_rows_matches_itemset_construction() {
        let sets = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3]), s(&[2, 5])];
        let flat: Vec<ItemId> = sets.iter().flat_map(|x| x.items().to_vec()).collect();
        assert_eq!(
            ItemsetTable::from_flat_rows(2, flat),
            ItemsetTable::from_sorted_itemsets(&sets)
        );
        assert!(ItemsetTable::from_flat_rows(3, Vec::new()).is_empty());
    }

    #[test]
    fn retain_rows_compacts_and_reindexes() {
        let sets = vec![
            s(&[1, 2, 4]),
            s(&[1, 2, 7]),
            s(&[1, 3, 4]),
            s(&[2, 3, 4]),
            s(&[2, 3, 9]),
        ];
        let mut t = ItemsetTable::from_itemsets(&sets);
        t.retain_rows(|row| row[2] == ItemId(4));
        let kept = vec![s(&[1, 2, 4]), s(&[1, 3, 4]), s(&[2, 3, 4])];
        assert_eq!(t, ItemsetTable::from_sorted_itemsets(&kept));
        assert_eq!(t.num_runs(), 3);
        // Dropping everything yields the canonical empty table.
        t.retain_rows(|_| false);
        assert!(t.is_empty());
        assert_eq!(t, ItemsetTable::empty());
    }

    #[test]
    fn row_itemset_and_into_flat_round_trip() {
        let sets = vec![s(&[3, 5]), s(&[4, 9])];
        let t = ItemsetTable::from_itemsets(&sets);
        assert_eq!(t.row_itemset(1), s(&[4, 9]));
        let (k, items) = t.clone().into_flat();
        assert_eq!(k, 2);
        assert_eq!(ItemsetTable::from_flat_rows(k, items), t);
    }
}

//! Exact minimum-support thresholds.
//!
//! The paper compares support *counts* against `s × (D + d)` where `s` is a
//! percentage (e.g. 0.75 %). Doing this in floating point invites
//! off-by-one disagreements between algorithms near the threshold — fatal
//! for the equivalence property `FUP(DB, db) == Apriori(DB ∪ db)`.
//! [`MinSupport`] therefore stores `s` as an exact rational and compares
//! with integer cross-multiplication.

use std::fmt;

/// An exact minimum-support threshold `s = num / den`.
///
/// An itemset `X` is *large* in a database of `n` transactions iff
/// `X.support ≥ s × n`, evaluated exactly as
/// `X.support × den ≥ n × num` in 128-bit arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MinSupport {
    num: u64,
    den: u64,
}

impl MinSupport {
    /// Creates a threshold from a rational `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the fraction exceeds 1.
    pub fn ratio(num: u64, den: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        assert!(num <= den, "support fraction must be ≤ 1");
        MinSupport { num, den }
    }

    /// Creates a threshold from a percentage, e.g. `percent(3)` for the
    /// paper's `s = 3 %`.
    pub fn percent(p: u64) -> Self {
        Self::ratio(p, 100)
    }

    /// Creates a threshold from basis points (1/100 of a percent), the
    /// finest granularity the paper uses (`0.75 % = 75 bp`).
    pub fn basis_points(bp: u64) -> Self {
        Self::ratio(bp, 10_000)
    }

    /// The numerator of the exact fraction.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// The denominator of the exact fraction.
    pub fn den(&self) -> u64 {
        self.den
    }

    /// `true` iff an itemset with support count `count` is large in a
    /// database of `n` transactions: `count ≥ s × n`.
    #[inline]
    pub fn is_large(&self, count: u64, n: u64) -> bool {
        u128::from(count) * u128::from(self.den) >= u128::from(n) * u128::from(self.num)
    }

    /// The smallest support count that is large in a database of `n`
    /// transactions: `⌈s × n⌉` (with the `≥` convention of the paper, an
    /// exact multiple also qualifies).
    pub fn required_count(&self, n: u64) -> u64 {
        let prod = u128::from(n) * u128::from(self.num);
        let den = u128::from(self.den);
        prod.div_ceil(den) as u64
    }

    /// The threshold as a float, for reporting only.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Display for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}%", self.as_f64() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_thresholds() {
        // Example 1: D = 1000, d = 100, s = 3 %.
        let s = MinSupport::percent(3);
        // I1.support_UD = 36 > 1100 × 3 % = 33 → large.
        assert!(s.is_large(36, 1100));
        // I2.support_UD = 32 < 33 → loser.
        assert!(!s.is_large(32, 1100));
        // Lemma-2 pruning threshold in db: s × d = 3.
        assert_eq!(s.required_count(100), 3);
        assert!(!s.is_large(2, 100)); // I4.support_d = 2 → pruned
        assert!(s.is_large(6, 100)); // I3.support_d = 6 → kept
    }

    #[test]
    fn boundary_is_inclusive() {
        let s = MinSupport::percent(3);
        // Exactly s × n qualifies (the paper's `≥`).
        assert!(s.is_large(33, 1100));
        assert!(!s.is_large(32, 1100));
        assert_eq!(s.required_count(1100), 33);
    }

    #[test]
    fn ceil_behaviour_for_non_integral_products() {
        let s = MinSupport::basis_points(75); // 0.75 %
                                              // 0.75 % of 101_000 = 757.5 → required 758.
        assert_eq!(s.required_count(101_000), 758);
        assert!(s.is_large(758, 101_000));
        assert!(!s.is_large(757, 101_000));
    }

    #[test]
    fn zero_support_threshold() {
        let s = MinSupport::ratio(0, 1);
        assert!(s.is_large(0, 1_000_000));
        assert_eq!(s.required_count(123), 0);
    }

    #[test]
    fn full_support_threshold() {
        let s = MinSupport::ratio(1, 1);
        assert!(s.is_large(10, 10));
        assert!(!s.is_large(9, 10));
    }

    #[test]
    fn no_overflow_at_scale() {
        // A billion transactions at 6 % must not overflow.
        let s = MinSupport::percent(6);
        let n = 1_000_000_000u64;
        assert_eq!(s.required_count(n), 60_000_000);
        assert!(s.is_large(60_000_000, n));
        assert!(!s.is_large(59_999_999, n));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        let _ = MinSupport::ratio(1, 0);
    }

    #[test]
    #[should_panic(expected = "≤ 1")]
    fn fraction_above_one_rejected() {
        let _ = MinSupport::ratio(2, 1);
    }

    #[test]
    fn display_formats_percent() {
        assert_eq!(MinSupport::percent(3).to_string(), "3.0000%");
        assert_eq!(MinSupport::basis_points(75).to_string(), "0.7500%");
    }

    #[test]
    fn accessors() {
        let s = MinSupport::ratio(3, 200);
        assert_eq!(s.num(), 3);
        assert_eq!(s.den(), 200);
        assert!((s.as_f64() - 0.015).abs() < 1e-12);
    }
}

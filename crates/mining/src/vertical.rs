//! Vertical (tid-list) support counting — the deep-pass alternative to
//! the candidate hash tree.
//!
//! The hash tree answers `Subset(C, T)` by re-scanning every transaction
//! against the candidate pool, so a pass costs `O(|DB| × work(T))` no
//! matter how few candidates remain. A [`VerticalIndex`] inverts the
//! layout: **one** scan materialises, per frequent item, the sorted list
//! of transaction ids (tids) containing it, and from then on the support
//! of any candidate `{i₁ < … < i_k}` is the size of the intersection
//! `tids(i₁) ∩ … ∩ tids(i_k)` — no further scans, and the cost *shrinks*
//! with support, exactly where the hash tree is weakest.
//!
//! ## Layout
//!
//! Tid-lists live in two contiguous arenas, one entry per item:
//!
//! * **sparse** — a sorted `u32` tid run in the shared `sparse` arena,
//!   chosen for items below the density cutoff;
//! * **dense** — a fixed-width `u64` bitset (one bit per transaction) in
//!   the shared `dense` arena, chosen once a list holds more than one tid
//!   per [`DENSE_FACTOR`] transactions, where the bitset is both smaller
//!   and intersects by word-parallel `AND`+popcount.
//!
//! The build runs on the chunked scan machinery of `fup_tidb`: workers
//! claim chunks off an atomic cursor (the `fup_mining::engine` pattern)
//! and recover every transaction's global tid from
//! [`chunk_tid_offset`](fup_tidb::TransactionSource::chunk_tid_offset),
//! so no coordination is needed. [`VerticalIndex::extend`] appends a
//! second source at a tid offset — FUP/FUP2 build the old-DB lists once
//! and the increment's delta scan only extends them, after which
//! [`VerticalIndex::count_rows_split`] yields a candidate's old-DB and
//! increment supports from a *single* intersection.
//!
//! ## Counting
//!
//! Candidates arrive as an [`ItemsetTable`], whose run index groups rows
//! sharing their (k−1)-prefix. Each run intersects the prefix lists
//! **once** into a scratch list, then every row of the run only
//! intersects that cached prefix list with its extension item's list —
//! the run-local reuse that makes deep passes cheap. Runs are batched by
//! row budget and claimed by `std::thread::scope` workers off an atomic
//! cursor; batch outputs concatenate in batch order, so counts are
//! identical at every thread count.
//!
//! ## Backend selection
//!
//! [`CountingBackend`] picks the counting strategy per pass:
//! [`CountingBackend::Auto`] (the default) stays on the hash tree for
//! small passes and switches to the vertical index once the candidate
//! pool, database size, and average transaction residue cross the
//! measured thresholds ([`AUTO_MIN_CANDIDATES`],
//! [`AUTO_MIN_TRANSACTIONS`], [`AUTO_MIN_RESIDUE`] — calibrated with
//! `bench_vertical` on the T10.I4 workload). Once a miner run engages
//! the vertical backend it stays engaged: the index is already paid for,
//! and intersections only get cheaper as the pool shrinks. Both backends
//! produce bit-identical support counts; only scan accounting differs
//! (the index charges one scan per source, then none).

use crate::engine::{self, EngineConfig};
use crate::itemset::ItemsetTable;
use fup_tidb::{ItemId, TransactionSource};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Density cutoff between list representations: an item's tid-list turns
/// into a dense bitset once `count * DENSE_FACTOR >= num_transactions`
/// (one tid per 32 transactions — the point where the bitset's `n/8`
/// bytes undercut the sorted run's `4·count`).
pub const DENSE_FACTOR: u32 = 32;

/// `Auto` never leaves the hash tree below this source size: the index
/// build is a full scan, and small sources re-scan faster than they
/// index.
pub const AUTO_MIN_TRANSACTIONS: u64 = 4_096;

/// `Auto` never leaves the hash tree below this candidate-pool size: a
/// handful of candidates cost one cheap tree pass, not an index.
pub const AUTO_MIN_CANDIDATES: usize = 256;

/// `Auto` requires at least this many *frequent* items per transaction
/// on average (the transaction residue): below it, hash-tree passes
/// barely descend and the index has nothing to amortise against.
pub const AUTO_MIN_RESIDUE: f64 = 2.0;

/// Rows per counting batch claimed by one worker. Oversized runs are
/// split into segments (each re-intersects the shared prefix once), so a
/// single giant run — `C₂` counting, where runs are per-first-item — still
/// spreads across workers.
const ROWS_PER_BATCH: usize = 1_024;

/// Minimum table size before the parallel counting path engages.
const PARALLEL_MIN_ROWS: usize = 4_096;

/// Sparse∩sparse intersections switch from the linear merge to galloping
/// (binary-searching the longer list) past this length ratio.
const GALLOP_RATIO: usize = 32;

/// Which support-counting strategy a miner's passes use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CountingBackend {
    /// Always the candidate hash tree — the classic scan-per-pass path,
    /// and the paper-faithful one (its scan counts are what the FUP
    /// paper's cost model charges).
    HashTree,
    /// Always the vertical tid-list index (from the first pass with
    /// candidates): one scan per source, then pure intersections.
    Vertical,
    /// Per-pass choice on measured thresholds; see the module docs.
    #[default]
    Auto,
}

/// One pass's shape, as far as backend selection cares.
#[derive(Debug, Clone, Copy)]
pub struct PassProfile {
    /// Candidate size `k` of the pass.
    pub k: usize,
    /// Number of candidates to count (for FUP, `|W ∪ C|`).
    pub candidates: usize,
    /// Transactions the pass would otherwise scan.
    pub transactions: u64,
    /// Average *frequent* items per transaction (the residue a scan
    /// actually walks).
    pub residue: f64,
}

/// A backend decision for one concrete pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Count this pass through the hash tree.
    HashTree,
    /// Count this pass through the vertical index.
    Vertical,
}

impl CountingBackend {
    /// Resolves the backend for one pass. `Auto` flips to the vertical
    /// index only when the pass is big enough on every axis (candidates,
    /// transactions, residue); forced variants ignore the profile.
    pub fn resolve(&self, profile: &PassProfile) -> ResolvedBackend {
        match self {
            CountingBackend::HashTree => ResolvedBackend::HashTree,
            CountingBackend::Vertical => ResolvedBackend::Vertical,
            CountingBackend::Auto => {
                if profile.k >= 2
                    && profile.transactions >= AUTO_MIN_TRANSACTIONS
                    && profile.candidates >= AUTO_MIN_CANDIDATES
                    && profile.residue >= AUTO_MIN_RESIDUE
                {
                    ResolvedBackend::Vertical
                } else {
                    ResolvedBackend::HashTree
                }
            }
        }
    }
}

/// Builds the item-presence bitmap [`VerticalIndex::build`] filters by:
/// one bit per item id, set for every item yielded.
pub fn item_bitmap(items: impl IntoIterator<Item = ItemId>) -> Vec<u64> {
    let mut bits = Vec::new();
    for item in items {
        let i = item.index();
        let word = i >> 6;
        if word >= bits.len() {
            bits.resize(word + 1, 0);
        }
        bits[word] |= 1u64 << (i & 63);
    }
    bits
}

#[inline]
fn bitmap_test(bits: &[u64], item: ItemId) -> bool {
    let i = item.index();
    bits.get(i >> 6)
        .is_some_and(|&word| word & (1u64 << (i & 63)) != 0)
}

/// One item's tid-list: a range into the sparse or dense arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TidListRef {
    /// No transaction contains the item (or it was filtered out).
    Empty,
    /// `len` sorted tids at `sparse[start..start+len]`.
    Sparse { start: usize, len: usize },
    /// `words_per_dense` bitset words at `dense[start..]`; `count` set
    /// bits.
    Dense { start: usize, count: u64 },
}

/// The per-item tid-list index over one (or, after
/// [`extend`](VerticalIndex::extend), several concatenated) transaction
/// sources. See the module docs for layout and counting.
#[derive(Debug, Clone)]
pub struct VerticalIndex {
    /// Transactions covered; tids are `0..num_transactions`, in pass
    /// order.
    num_transactions: u64,
    /// Bitset words per dense list: `ceil(num_transactions / 64)`.
    words_per_dense: usize,
    /// Density cutoff in force (see [`DENSE_FACTOR`]).
    dense_factor: u32,
    /// Optional item filter the index was built with (and applies again
    /// on extend): bit per item id.
    keep: Option<Vec<u64>>,
    /// Per-item list descriptors, indexed by item id.
    entries: Vec<TidListRef>,
    /// Shared sorted-run arena.
    sparse: Vec<u32>,
    /// Shared bitset arena.
    dense: Vec<u64>,
}

/// Per-worker accumulator of the build scan: per-item tid lists plus the
/// cursor state recovering global tids from chunk offsets.
struct GatherAcc {
    cur_chunk: u64,
    base: u64,
    pos: u64,
    lists: Vec<Vec<u32>>,
}

impl VerticalIndex {
    /// Builds the index over one full pass of `source`, with the default
    /// [`DENSE_FACTOR`] density cutoff.
    ///
    /// `keep` optionally restricts indexing to the items whose bit is set
    /// (see [`item_bitmap`]) — miners pass their `L₁` so filler items
    /// cost nothing; `None` indexes every item. The pass is parallelised
    /// per `config` (chunked workers, atomic cursor) and charged to the
    /// source's `ScanMetrics` exactly once, like any counting pass.
    ///
    /// # Panics
    ///
    /// Panics if the source holds `u32::MAX` transactions or more (tids
    /// are `u32`).
    pub fn build<S>(source: &S, keep: Option<&[u64]>, config: &EngineConfig) -> Self
    where
        S: TransactionSource + ?Sized,
    {
        Self::build_with_density(source, keep, config, DENSE_FACTOR)
    }

    /// [`VerticalIndex::build`] with an explicit density cutoff:
    /// `dense_factor = 0` keeps every list sparse, `u32::MAX` forces
    /// every non-empty list dense. Property tests drive both extremes;
    /// counting is representation-independent.
    pub fn build_with_density<S>(
        source: &S,
        keep: Option<&[u64]>,
        config: &EngineConfig,
        dense_factor: u32,
    ) -> Self
    where
        S: TransactionSource + ?Sized,
    {
        let n = source.num_transactions();
        assert!(n < u32::MAX as u64, "tid space exceeds u32");
        let lists = gather_tid_lists(source, keep, 0, config);
        Self::from_lists(n, lists, keep.map(<[u64]>::to_vec), dense_factor)
    }

    /// Appends one full pass of `source` at tid offset
    /// `num_transactions()` — the index then covers the concatenation, as
    /// if built over a [`ChainSource`](fup_tidb::source::ChainSource).
    /// Only the delta is scanned; existing lists are re-packed in memory
    /// (re-deciding each item's representation for the new density).
    ///
    /// # Panics
    ///
    /// Panics if the combined tid space reaches `u32::MAX`.
    pub fn extend<S>(&mut self, source: &S, config: &EngineConfig)
    where
        S: TransactionSource + ?Sized,
    {
        let delta = source.num_transactions();
        if delta == 0 {
            return;
        }
        let offset = self.num_transactions;
        let new_n = offset + delta;
        assert!(new_n < u32::MAX as u64, "tid space exceeds u32");
        let delta_lists = gather_tid_lists(source, self.keep.as_deref(), offset, config);
        let items = self.entries.len().max(delta_lists.len());
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(items);
        for item in 0..items {
            let old_len = self.list_len(item);
            let delta_list = delta_lists.get(item).map(Vec::as_slice).unwrap_or(&[]);
            let mut list = Vec::with_capacity(old_len + delta_list.len());
            self.for_each_tid(item, |tid| list.push(tid));
            list.extend_from_slice(delta_list);
            lists.push(list);
        }
        *self = Self::from_lists(new_n, lists, self.keep.take(), self.dense_factor);
    }

    /// Packs raw per-item lists (sorted, distinct tids) into the arenas,
    /// deciding each item's representation by density.
    fn from_lists(
        num_transactions: u64,
        lists: Vec<Vec<u32>>,
        keep: Option<Vec<u64>>,
        dense_factor: u32,
    ) -> Self {
        let words_per_dense = num_transactions.div_ceil(64) as usize;
        let mut entries = Vec::with_capacity(lists.len());
        let mut sparse = Vec::new();
        let mut dense = Vec::new();
        for list in &lists {
            if list.is_empty() {
                entries.push(TidListRef::Empty);
                continue;
            }
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "tids must be sorted");
            let is_dense = (list.len() as u64).saturating_mul(u64::from(dense_factor))
                >= num_transactions
                && dense_factor > 0;
            if is_dense {
                let start = dense.len();
                dense.resize(start + words_per_dense, 0u64);
                for &tid in list {
                    dense[start + (tid >> 6) as usize] |= 1u64 << (tid & 63);
                }
                entries.push(TidListRef::Dense {
                    start,
                    count: list.len() as u64,
                });
            } else {
                let start = sparse.len();
                sparse.extend_from_slice(list);
                entries.push(TidListRef::Sparse {
                    start,
                    len: list.len(),
                });
            }
        }
        VerticalIndex {
            num_transactions,
            words_per_dense,
            dense_factor,
            keep,
            entries,
            sparse,
            dense,
        }
    }

    /// Transactions covered (tids run `0..num_transactions()`).
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// Serialises the index into `buf` (appending), in the checkpoint
    /// format used by `fup_core`'s durable sessions: header varints, the
    /// optional keep filter, per-item entry descriptors, then both arenas
    /// verbatim. [`decode`](VerticalIndex::decode) reverses it.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        use fup_tidb::codec::{write_varint, write_varint64};
        write_varint64(buf, self.num_transactions);
        write_varint(buf, self.dense_factor);
        match &self.keep {
            None => buf.push(0),
            Some(words) => {
                buf.push(1);
                write_varint64(buf, words.len() as u64);
                for &w in words {
                    buf.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        write_varint64(buf, self.entries.len() as u64);
        for entry in &self.entries {
            match *entry {
                TidListRef::Empty => buf.push(0),
                TidListRef::Sparse { start, len } => {
                    buf.push(1);
                    write_varint64(buf, start as u64);
                    write_varint64(buf, len as u64);
                }
                TidListRef::Dense { start, count } => {
                    buf.push(2);
                    write_varint64(buf, start as u64);
                    write_varint64(buf, count);
                }
            }
        }
        write_varint64(buf, self.sparse.len() as u64);
        for &tid in &self.sparse {
            buf.extend_from_slice(&tid.to_le_bytes());
        }
        write_varint64(buf, self.dense.len() as u64);
        for &word in &self.dense {
            buf.extend_from_slice(&word.to_le_bytes());
        }
    }

    /// Decodes an index previously written by
    /// [`encode`](VerticalIndex::encode), advancing `pos` past it.
    ///
    /// Every structural invariant is re-validated — arena ranges, sparse
    /// runs sorted and in tid range, dense popcounts — so a corrupt or
    /// truncated checkpoint yields [`fup_tidb::Error::Corrupt`], never an
    /// inconsistent index.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self, fup_tidb::Error> {
        use fup_tidb::codec::{read_varint, read_varint64};
        fn corrupt(reason: &str, offset: usize) -> fup_tidb::Error {
            fup_tidb::Error::Corrupt {
                reason: format!("vertical index: {reason}"),
                offset: Some(offset),
            }
        }
        fn read_usize(buf: &[u8], pos: &mut usize, what: &str) -> Result<usize, fup_tidb::Error> {
            let at = *pos;
            let v = read_varint64(buf, pos)?;
            usize::try_from(v).map_err(|_| corrupt(&format!("{what} exceeds usize"), at))
        }

        let num_transactions = read_varint64(buf, pos)?;
        if num_transactions >= u32::MAX as u64 {
            return Err(corrupt("tid space exceeds u32", *pos));
        }
        let words_per_dense = num_transactions.div_ceil(64) as usize;
        let dense_factor = read_varint(buf, pos)?;
        let keep = match buf.get(*pos) {
            Some(0) => {
                *pos += 1;
                None
            }
            Some(1) => {
                *pos += 1;
                let len = read_usize(buf, pos, "keep length")?;
                let mut words = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    let end = pos.checked_add(8).filter(|&e| e <= buf.len());
                    let Some(end) = end else {
                        return Err(corrupt("keep words truncated", *pos));
                    };
                    words.push(u64::from_le_bytes(buf[*pos..end].try_into().unwrap()));
                    *pos = end;
                }
                Some(words)
            }
            Some(_) => return Err(corrupt("bad keep flag", *pos)),
            None => return Err(corrupt("truncated before keep flag", *pos)),
        };

        let num_entries = read_usize(buf, pos, "entry count")?;
        let mut entries = Vec::with_capacity(num_entries.min(1 << 20));
        for _ in 0..num_entries {
            let at = *pos;
            let tag = *buf
                .get(*pos)
                .ok_or_else(|| corrupt("truncated entry", at))?;
            *pos += 1;
            entries.push(match tag {
                0 => TidListRef::Empty,
                1 => {
                    let start = read_usize(buf, pos, "sparse start")?;
                    let len = read_usize(buf, pos, "sparse len")?;
                    if len == 0 {
                        return Err(corrupt("empty sparse run", at));
                    }
                    TidListRef::Sparse { start, len }
                }
                2 => {
                    let start = read_usize(buf, pos, "dense start")?;
                    let count = read_varint64(buf, pos)?;
                    if count == 0 || count > num_transactions {
                        return Err(corrupt("dense count out of range", at));
                    }
                    TidListRef::Dense { start, count }
                }
                _ => return Err(corrupt("unknown entry tag", at)),
            });
        }

        let sparse_len = read_usize(buf, pos, "sparse arena length")?;
        let mut sparse = Vec::with_capacity(sparse_len.min(1 << 22));
        for _ in 0..sparse_len {
            let end = pos.checked_add(4).filter(|&e| e <= buf.len());
            let Some(end) = end else {
                return Err(corrupt("sparse arena truncated", *pos));
            };
            sparse.push(u32::from_le_bytes(buf[*pos..end].try_into().unwrap()));
            *pos = end;
        }
        let dense_len = read_usize(buf, pos, "dense arena length")?;
        let mut dense = Vec::with_capacity(dense_len.min(1 << 20));
        for _ in 0..dense_len {
            let end = pos.checked_add(8).filter(|&e| e <= buf.len());
            let Some(end) = end else {
                return Err(corrupt("dense arena truncated", *pos));
            };
            dense.push(u64::from_le_bytes(buf[*pos..end].try_into().unwrap()));
            *pos = end;
        }

        // Re-validate every descriptor against the decoded arenas.
        for entry in &entries {
            match *entry {
                TidListRef::Empty => {}
                TidListRef::Sparse { start, len } => {
                    let end = start
                        .checked_add(len)
                        .filter(|&e| e <= sparse.len())
                        .ok_or_else(|| corrupt("sparse run out of arena bounds", *pos))?;
                    let run = &sparse[start..end];
                    let sorted = run.windows(2).all(|w| w[0] < w[1]);
                    if !sorted || u64::from(run[len - 1]) >= num_transactions {
                        return Err(corrupt("sparse run unsorted or out of tid range", *pos));
                    }
                }
                TidListRef::Dense { start, count } => {
                    let end = start
                        .checked_add(words_per_dense)
                        .filter(|&e| e <= dense.len())
                        .ok_or_else(|| corrupt("dense run out of arena bounds", *pos))?;
                    let words = &dense[start..end];
                    let pop: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
                    if pop != count {
                        return Err(corrupt("dense popcount mismatch", *pos));
                    }
                    let tail_bits = (words_per_dense as u64 * 64).saturating_sub(num_transactions);
                    if tail_bits > 0 && words_per_dense > 0 {
                        let last = words[words_per_dense - 1];
                        if last >> (64 - tail_bits) != 0 {
                            return Err(corrupt("dense bits beyond tid range", *pos));
                        }
                    }
                }
            }
        }

        Ok(VerticalIndex {
            num_transactions,
            words_per_dense,
            dense_factor,
            keep,
            entries,
            sparse,
            dense,
        })
    }

    /// The support (tid-list length) of `item`.
    pub fn support(&self, item: ItemId) -> u64 {
        match self.entry(item.index()) {
            TidListRef::Empty => 0,
            TidListRef::Sparse { len, .. } => len as u64,
            TidListRef::Dense { count, .. } => count,
        }
    }

    /// `Some(true)` if `item`'s list is a dense bitset, `Some(false)` if
    /// a sparse run, `None` if the item is not indexed.
    pub fn is_dense(&self, item: ItemId) -> Option<bool> {
        match self.entry(item.index()) {
            TidListRef::Empty => None,
            TidListRef::Sparse { .. } => Some(false),
            TidListRef::Dense { .. } => Some(true),
        }
    }

    /// Arena footprint `(sparse_bytes, dense_bytes)` — reported by
    /// `bench_vertical` so the memory cost of the index is on record.
    pub fn arena_bytes(&self) -> (usize, usize) {
        (self.sparse.len() * 4, self.dense.len() * 8)
    }

    /// `true` if every item whose bit is set in `needed` (see
    /// [`item_bitmap`]) was indexed — i.e. the index's build filter covers
    /// the set. An unfiltered index covers everything. A persistent index
    /// kept across maintenance rounds is reusable only while this holds;
    /// a newly-frequent item outside the original filter ("dictionary
    /// growth") forces a rebuild.
    pub fn covers(&self, needed: &[u64]) -> bool {
        match &self.keep {
            None => true,
            Some(keep) => needed
                .iter()
                .enumerate()
                .all(|(w, &bits)| keep.get(w).copied().unwrap_or(0) & bits == bits),
        }
    }

    #[inline]
    fn entry(&self, item: usize) -> TidListRef {
        self.entries.get(item).copied().unwrap_or(TidListRef::Empty)
    }

    fn list_len(&self, item: usize) -> usize {
        match self.entry(item) {
            TidListRef::Empty => 0,
            TidListRef::Sparse { len, .. } => len,
            TidListRef::Dense { count, .. } => count as usize,
        }
    }

    /// Visits `item`'s tids in ascending order (both representations).
    fn for_each_tid(&self, item: usize, mut f: impl FnMut(u32)) {
        match self.entry(item) {
            TidListRef::Empty => {}
            TidListRef::Sparse { start, len } => {
                for &tid in &self.sparse[start..start + len] {
                    f(tid);
                }
            }
            TidListRef::Dense { start, .. } => {
                for (w, &word) in self.dense[start..start + self.words_per_dense]
                    .iter()
                    .enumerate()
                {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        f((w as u32) << 6 | b);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// The support of every row of `table`, in row order — each run's
    /// (k−1)-prefix intersection is computed once and reused across the
    /// run's rows, and run batches are counted in parallel per `config`.
    /// Counts are exact and identical at every thread count.
    pub fn count_rows(&self, table: &ItemsetTable, config: &EngineConfig) -> Vec<u64> {
        self.count_rows_split(table, self.num_transactions, config)
            .into_iter()
            .map(|(below, _)| below)
            .collect()
    }

    /// Like [`count_rows`](VerticalIndex::count_rows), but each row's
    /// support is split at the tid `boundary`: `(support among tids <
    /// boundary, support among tids ≥ boundary)`. With an index built
    /// over `DB` and extended by the increment at `boundary = |DB|`, one
    /// intersection yields a candidate's old-DB and increment supports at
    /// once — FUP's Lemma-5 pruning and its DB check collapse into a
    /// single pass.
    pub fn count_rows_split(
        &self,
        table: &ItemsetTable,
        boundary: u64,
        config: &EngineConfig,
    ) -> Vec<(u64, u64)> {
        if table.is_empty() {
            return Vec::new();
        }
        let segments = plan_segments(table);
        let threads = config.resolved_threads();
        if threads <= 1 || table.len() < PARALLEL_MIN_ROWS {
            let mut out = Vec::with_capacity(table.len());
            let mut scratch = RunScratch::default();
            for seg in &segments {
                self.count_segment(table, seg, boundary, &mut scratch, &mut out);
            }
            return out;
        }
        // Parallel path: workers claim segment indices off an atomic
        // cursor; per-segment outputs concatenate in segment (= row)
        // order.
        let workers = threads.min(segments.len());
        let cursor = AtomicUsize::new(0);
        let mut per_worker: Vec<SegmentCounts> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let cursor = &cursor;
                let segments = &segments;
                handles.push(scope.spawn(move || {
                    let mut done: SegmentCounts = Vec::new();
                    let mut scratch = RunScratch::default();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= segments.len() {
                            break;
                        }
                        let mut out = Vec::with_capacity(segments[i].rows());
                        self.count_segment(table, &segments[i], boundary, &mut scratch, &mut out);
                        done.push((i, out));
                    }
                    done
                }));
            }
            for handle in handles {
                per_worker.push(handle.join().expect("vertical counting worker panicked"));
            }
        });
        let mut done: SegmentCounts = per_worker.into_iter().flatten().collect();
        done.sort_unstable_by_key(|(i, _)| *i);
        let mut out = Vec::with_capacity(table.len());
        for (_, counts) in done {
            out.extend(counts);
        }
        out
    }

    /// Counts rows `seg.lo..seg.hi` (all inside one prefix run): the
    /// shared prefix is intersected once, then each row intersects the
    /// cached prefix list with its extension item's list.
    fn count_segment(
        &self,
        table: &ItemsetTable,
        seg: &Segment,
        boundary: u64,
        scratch: &mut RunScratch,
        out: &mut Vec<(u64, u64)>,
    ) {
        let k = table.k();
        let (lo, hi) = (seg.lo as usize, seg.hi as usize);
        if k == 1 {
            for row in lo..hi {
                out.push(self.split_support(table.row(row)[0], boundary));
            }
            return;
        }
        let prefix_items = &table.row(lo)[..k - 1];
        let prefix = match self.intersect_prefix(prefix_items, scratch) {
            Some(p) => p,
            None => {
                out.extend(std::iter::repeat_n((0, 0), hi - lo));
                return;
            }
        };
        for row in lo..hi {
            let z = table.row(row)[k - 1];
            out.push(match (prefix, self.entry(z.index())) {
                (_, TidListRef::Empty) => (0, 0),
                (Prefix::Sparse(p), TidListRef::Sparse { start, len }) => {
                    count_sparse_sparse(p, &self.sparse[start..start + len], boundary)
                }
                (Prefix::Sparse(p), TidListRef::Dense { start, .. }) => count_sparse_dense(
                    p,
                    &self.dense[start..start + self.words_per_dense],
                    boundary,
                ),
                (Prefix::Dense(pw), TidListRef::Sparse { start, len }) => {
                    count_sparse_dense(&self.sparse[start..start + len], pw, boundary)
                }
                (Prefix::Dense(pw), TidListRef::Dense { start, .. }) => count_dense_dense(
                    pw,
                    &self.dense[start..start + self.words_per_dense],
                    boundary,
                ),
            });
        }
    }

    /// Support of a single item split at `boundary` (the k = 1 case).
    fn split_support(&self, item: ItemId, boundary: u64) -> (u64, u64) {
        match self.entry(item.index()) {
            TidListRef::Empty => (0, 0),
            TidListRef::Sparse { start, len } => {
                let list = &self.sparse[start..start + len];
                let below = list.partition_point(|&tid| u64::from(tid) < boundary);
                (below as u64, (len - below) as u64)
            }
            TidListRef::Dense { start, count } => {
                let words = &self.dense[start..start + self.words_per_dense];
                let below = count_bits_below(words, boundary);
                (below, count - below)
            }
        }
    }

    /// Intersects the (k−1)-prefix lists. A single-item prefix borrows
    /// its native representation (no copy — the `C₂` fast path); longer
    /// prefixes are merged smallest-list-first into the scratch, which
    /// shrinks at every step. Returns `None` when the intersection is
    /// provably empty.
    fn intersect_prefix<'s>(
        &'s self,
        prefix_items: &[ItemId],
        scratch: &'s mut RunScratch,
    ) -> Option<Prefix<'s>> {
        debug_assert!(!prefix_items.is_empty());
        if prefix_items.len() == 1 {
            return match self.entry(prefix_items[0].index()) {
                TidListRef::Empty => None,
                TidListRef::Sparse { start, len } => {
                    Some(Prefix::Sparse(&self.sparse[start..start + len]))
                }
                TidListRef::Dense { start, .. } => Some(Prefix::Dense(
                    &self.dense[start..start + self.words_per_dense],
                )),
            };
        }
        // Order by ascending support so the working list starts minimal.
        scratch.order.clear();
        scratch.order.extend(prefix_items.iter().map(|i| i.index()));
        scratch.order.sort_unstable_by_key(|&i| self.list_len(i));
        if self.list_len(scratch.order[0]) == 0 {
            return None;
        }
        scratch.acc.clear();
        self.for_each_tid(scratch.order[0], |tid| scratch.acc.push(tid));
        for &item in &scratch.order[1..] {
            match self.entry(item) {
                TidListRef::Empty => return None,
                TidListRef::Dense { start, .. } => {
                    let words = &self.dense[start..start + self.words_per_dense];
                    scratch
                        .acc
                        .retain(|&tid| words[(tid >> 6) as usize] & (1u64 << (tid & 63)) != 0);
                }
                TidListRef::Sparse { start, len } => {
                    let other = &self.sparse[start..start + len];
                    scratch.tmp.clear();
                    intersect_into(&scratch.acc, other, &mut scratch.tmp);
                    std::mem::swap(&mut scratch.acc, &mut scratch.tmp);
                }
            }
            if scratch.acc.is_empty() {
                return None;
            }
        }
        Some(Prefix::Sparse(&scratch.acc))
    }
}

/// Per-worker output of the parallel counting path: `(segment index,
/// per-row split counts)` pairs, stitched back in segment order.
type SegmentCounts = Vec<(usize, Vec<(u64, u64)>)>;

/// The cached prefix intersection a run's rows count against.
#[derive(Clone, Copy)]
enum Prefix<'a> {
    /// Sorted tid run (borrowed from the arena or the run scratch).
    Sparse(&'a [u32]),
    /// Borrowed dense bitset words (single dense prefix item).
    Dense(&'a [u64]),
}

/// Reusable per-worker scratch for run counting.
#[derive(Default)]
struct RunScratch {
    acc: Vec<u32>,
    tmp: Vec<u32>,
    order: Vec<usize>,
}

/// A contiguous row range inside one prefix run.
struct Segment {
    lo: u32,
    hi: u32,
}

impl Segment {
    fn rows(&self) -> usize {
        (self.hi - self.lo) as usize
    }
}

/// Chops the table into row segments of at most [`ROWS_PER_BATCH`] rows,
/// never straddling a run boundary (each segment shares one prefix).
fn plan_segments(table: &ItemsetTable) -> Vec<Segment> {
    let mut segments = Vec::new();
    for r in 0..table.num_runs() {
        let (start, end) = table.run_bounds(r);
        let mut lo = start;
        while lo < end {
            let hi = (lo + ROWS_PER_BATCH).min(end);
            segments.push(Segment {
                lo: lo as u32,
                hi: hi as u32,
            });
            lo = hi;
        }
    }
    segments
}

/// One chunked pass over `source` gathering per-item tid lists (tids
/// shifted by `offset`), parallelised through [`engine::scan_fold`].
fn gather_tid_lists<S>(
    source: &S,
    keep: Option<&[u64]>,
    offset: u64,
    config: &EngineConfig,
) -> Vec<Vec<u32>>
where
    S: TransactionSource + ?Sized,
{
    let chunk_size = config.chunk_size.max(1);
    let folds = engine::scan_fold(
        source,
        config,
        || GatherAcc {
            cur_chunk: u64::MAX,
            base: 0,
            pos: 0,
            lists: Vec::new(),
        },
        |acc, chunk, t| {
            if chunk != acc.cur_chunk {
                acc.cur_chunk = chunk;
                acc.base = source.chunk_tid_offset(chunk_size, chunk);
                acc.pos = 0;
            }
            let tid = (offset + acc.base + acc.pos) as u32;
            acc.pos += 1;
            for &item in t {
                if keep.is_some_and(|bits| !bitmap_test(bits, item)) {
                    continue;
                }
                let i = item.index();
                if i >= acc.lists.len() {
                    acc.lists.resize_with(i + 1, Vec::new);
                }
                acc.lists[i].push(tid);
            }
        },
    );
    // Per-worker lists are individually sorted (chunks are claimed in
    // increasing order); across workers they interleave, so concatenate
    // and sort — tids are distinct, making the result canonical.
    let mut folds = folds.into_iter();
    let mut lists = folds.next().map(|a| a.lists).unwrap_or_default();
    let mut merged_any = false;
    for fold in folds {
        merged_any = true;
        if fold.lists.len() > lists.len() {
            lists.resize_with(fold.lists.len(), Vec::new);
        }
        for (item, mut list) in fold.lists.into_iter().enumerate() {
            lists[item].append(&mut list);
        }
    }
    if merged_any {
        for list in &mut lists {
            list.sort_unstable();
        }
    }
    lists
}

/// Intersects two sorted runs into `out` (linear merge).
fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// `|a ∩ b|` for sorted runs, split at `boundary`. Gallops (binary
/// search per probe) when one side dwarfs the other, else a two-pointer
/// merge.
fn count_sparse_sparse(a: &[u32], b: &[u32], boundary: u64) -> (u64, u64) {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut below = 0u64;
    let mut above = 0u64;
    if small.is_empty() {
        return (0, 0);
    }
    if big.len() / small.len() >= GALLOP_RATIO {
        // Gallop: probe each element of the short run into the long one,
        // advancing the search window monotonically.
        let mut from = 0usize;
        for &tid in small {
            let pos = from + big[from..].partition_point(|&x| x < tid);
            if pos < big.len() && big[pos] == tid {
                if u64::from(tid) < boundary {
                    below += 1;
                } else {
                    above += 1;
                }
            }
            from = pos;
            if from >= big.len() {
                break;
            }
        }
        return (below, above);
    }
    let (mut i, mut j) = (0, 0);
    while i < small.len() && j < big.len() {
        match small[i].cmp(&big[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if u64::from(small[i]) < boundary {
                    below += 1;
                } else {
                    above += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    (below, above)
}

/// `|run ∩ bitset|` split at `boundary`: probe each tid of the sorted run
/// into the bitset words.
fn count_sparse_dense(run: &[u32], words: &[u64], boundary: u64) -> (u64, u64) {
    let mut below = 0u64;
    let mut above = 0u64;
    for &tid in run {
        if words[(tid >> 6) as usize] & (1u64 << (tid & 63)) != 0 {
            if u64::from(tid) < boundary {
                below += 1;
            } else {
                above += 1;
            }
        }
    }
    (below, above)
}

/// `AND`+popcount over two equal-length word runs, unrolled over 4-word
/// blocks with independent accumulators — the first step of the SIMD
/// roadmap: four popcounts per iteration with no loop-carried dependency,
/// which autovectorises (and pipelines on scalar popcnt) far better than
/// the word-at-a-time loop.
#[inline]
fn and_popcount(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0u64; 4];
    let mut blocks_a = a.chunks_exact(4);
    let mut blocks_b = b.chunks_exact(4);
    for (ba, bb) in blocks_a.by_ref().zip(blocks_b.by_ref()) {
        acc[0] += u64::from((ba[0] & bb[0]).count_ones());
        acc[1] += u64::from((ba[1] & bb[1]).count_ones());
        acc[2] += u64::from((ba[2] & bb[2]).count_ones());
        acc[3] += u64::from((ba[3] & bb[3]).count_ones());
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&x, &y) in blocks_a.remainder().iter().zip(blocks_b.remainder()) {
        total += u64::from((x & y).count_ones());
    }
    total
}

/// `|bitset ∩ bitset|` split at `boundary`: the whole-word prefix and
/// suffix run through the unrolled [`and_popcount`] kernel; only the
/// single word straddling the boundary is masked bit-wise.
fn count_dense_dense(a: &[u64], b: &[u64], boundary: u64) -> (u64, u64) {
    debug_assert_eq!(a.len(), b.len());
    let bw = ((boundary / 64) as usize).min(a.len());
    let rem = (boundary % 64) as u32;
    let mut below = and_popcount(&a[..bw], &b[..bw]);
    let mut above;
    if rem > 0 && bw < a.len() {
        let and = a[bw] & b[bw];
        let mask = (1u64 << rem) - 1;
        below += u64::from((and & mask).count_ones());
        above = u64::from((and & !mask).count_ones());
        above += and_popcount(&a[bw + 1..], &b[bw + 1..]);
    } else {
        above = and_popcount(&a[bw..], &b[bw..]);
    }
    (below, above)
}

/// Set bits among the first `boundary` bit positions.
fn count_bits_below(words: &[u64], boundary: u64) -> u64 {
    let bw = (boundary / 64) as usize;
    let rem = (boundary % 64) as u32;
    let mut below = 0u64;
    for &word in words.iter().take(bw) {
        below += u64::from(word.count_ones());
    }
    if rem > 0 {
        if let Some(&word) = words.get(bw) {
            below += u64::from((word & ((1u64 << rem) - 1)).count_ones());
        }
    }
    below
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::Itemset;
    use fup_tidb::source::ChainSource;
    use fup_tidb::transaction::contains_sorted;
    use fup_tidb::{Transaction, TransactionDb};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    /// A deterministic mid-size database with both very frequent and rare
    /// items, to exercise dense and sparse lists together.
    fn mixed_db(n: u32) -> TransactionDb {
        TransactionDb::from_transactions((0..n).map(|i| {
            let mut items = vec![0u32]; // item 0 in every transaction
            if i % 2 == 0 {
                items.push(1);
            }
            if i % 3 == 0 {
                items.push(2);
            }
            if i % 7 == 0 {
                items.push(3);
            }
            items.push(10 + (i % 50)); // each ~2% of transactions
            items.push(100 + (i % 97)); // each ~1%
            Transaction::from_items(items)
        }))
    }

    fn naive_split(source: &TransactionDb, rows: &ItemsetTable, boundary: u64) -> Vec<(u64, u64)> {
        let mut tid = 0u64;
        let mut out = vec![(0u64, 0u64); rows.len()];
        source.for_each(&mut |t| {
            for (i, row) in rows.rows().enumerate() {
                if contains_sorted(t, row) {
                    if tid < boundary {
                        out[i].0 += 1;
                    } else {
                        out[i].1 += 1;
                    }
                }
            }
            tid += 1;
        });
        out
    }

    #[test]
    fn item_supports_match_counts() {
        let d = mixed_db(500);
        let idx = VerticalIndex::build(&d, None, &EngineConfig::serial());
        assert_eq!(idx.num_transactions(), 500);
        assert_eq!(idx.support(ItemId(0)), 500);
        assert_eq!(idx.support(ItemId(1)), 250);
        assert_eq!(idx.support(ItemId(2)), 167);
        assert_eq!(idx.support(ItemId(999)), 0);
        // Item 0 is in every transaction → dense; the ~1% tail is sparse.
        assert_eq!(idx.is_dense(ItemId(0)), Some(true));
        assert_eq!(idx.is_dense(ItemId(100)), Some(false));
        assert_eq!(idx.is_dense(ItemId(999)), None);
    }

    #[test]
    fn count_rows_matches_naive_containment() {
        let d = mixed_db(400);
        let pool = [
            s(&[0, 1]),
            s(&[0, 2]),
            s(&[1, 2]),
            s(&[1, 3]),
            s(&[0, 10]),
            s(&[10, 100]),
            s(&[0, 1, 2]),
            s(&[1, 2, 3]),
        ];
        // Tables hold one size; check each k separately.
        for k in [2usize, 3] {
            let sets: Vec<Itemset> = pool.iter().filter(|x| x.k() == k).cloned().collect();
            if sets.is_empty() {
                continue;
            }
            let table = ItemsetTable::from_itemsets(&sets);
            let truth = naive_split(&d, &table, 400);
            for factor in [0u32, DENSE_FACTOR, u32::MAX] {
                let idx =
                    VerticalIndex::build_with_density(&d, None, &EngineConfig::serial(), factor);
                let counts = idx.count_rows(&table, &EngineConfig::serial());
                let expect: Vec<u64> = truth.iter().map(|&(b, _)| b).collect();
                assert_eq!(counts, expect, "k {k} dense_factor {factor}");
            }
        }
    }

    #[test]
    fn split_counting_matches_naive_at_every_boundary() {
        let d = mixed_db(300);
        let table = ItemsetTable::from_itemsets(&[s(&[0, 1]), s(&[1, 2]), s(&[2, 10])]);
        for boundary in [0u64, 1, 63, 64, 65, 150, 299, 300] {
            let truth = naive_split(&d, &table, boundary);
            for factor in [0u32, u32::MAX] {
                let idx =
                    VerticalIndex::build_with_density(&d, None, &EngineConfig::serial(), factor);
                let got = idx.count_rows_split(&table, boundary, &EngineConfig::serial());
                assert_eq!(got, truth, "boundary {boundary} factor {factor}");
            }
        }
    }

    #[test]
    fn parallel_build_and_count_match_serial() {
        let d = mixed_db(600);
        let table = ItemsetTable::from_itemsets(&[
            s(&[0, 1]),
            s(&[0, 2]),
            s(&[0, 10]),
            s(&[1, 2]),
            s(&[1, 11]),
            s(&[2, 3]),
        ]);
        let serial_idx = VerticalIndex::build(&d, None, &EngineConfig::serial());
        let serial = serial_idx.count_rows(&table, &EngineConfig::serial());
        for threads in [2usize, 8] {
            for chunk_size in [1usize, 7, 64] {
                let cfg = EngineConfig {
                    threads,
                    chunk_size,
                    ..EngineConfig::default()
                };
                let idx = VerticalIndex::build(&d, None, &cfg);
                assert_eq!(
                    idx.count_rows(&table, &cfg),
                    serial,
                    "threads {threads} chunk {chunk_size}"
                );
            }
        }
    }

    #[test]
    fn keep_bitmap_filters_items() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[2, 3]]);
        let keep = item_bitmap([ItemId(1), ItemId(2)]);
        let idx = VerticalIndex::build(&d, Some(&keep), &EngineConfig::serial());
        assert_eq!(idx.support(ItemId(1)), 2);
        assert_eq!(idx.support(ItemId(2)), 3);
        assert_eq!(idx.support(ItemId(3)), 0); // filtered
    }

    #[test]
    fn extend_equals_build_over_chain() {
        let a = mixed_db(200);
        let b = db(&[&[0, 1, 7], &[2, 7, 200], &[0, 2], &[7]]);
        let cfg = EngineConfig::serial();
        let mut extended = VerticalIndex::build(&a, None, &cfg);
        extended.extend(&b, &cfg);
        let chain = ChainSource::new(&a, &b);
        let whole = VerticalIndex::build(&chain, None, &cfg);
        assert_eq!(extended.num_transactions(), whole.num_transactions());
        for item in 0..260u32 {
            assert_eq!(
                extended.support(ItemId(item)),
                whole.support(ItemId(item)),
                "item {item}"
            );
            assert_eq!(
                extended.is_dense(ItemId(item)),
                whole.is_dense(ItemId(item))
            );
        }
        // Split counting at the seam gives (support in a, support in b).
        let table = ItemsetTable::from_itemsets(&[s(&[0, 2]), s(&[2, 7])]);
        let split = extended.count_rows_split(&table, 200, &cfg);
        let in_a = naive_split(&a, &table, u64::MAX);
        let in_b = naive_split(&b, &table, u64::MAX);
        for i in 0..table.len() {
            assert_eq!(split[i], (in_a[i].0, in_b[i].0), "row {i}");
        }
    }

    #[test]
    fn covers_tracks_the_build_filter() {
        let d = db(&[&[1, 2, 3], &[1, 2], &[2, 3]]);
        let keep = item_bitmap([ItemId(1), ItemId(2)]);
        let idx = VerticalIndex::build(&d, Some(&keep), &EngineConfig::serial());
        assert!(idx.covers(&item_bitmap([ItemId(1)])));
        assert!(idx.covers(&item_bitmap([ItemId(1), ItemId(2)])));
        assert!(!idx.covers(&item_bitmap([ItemId(3)])));
        assert!(!idx.covers(&item_bitmap([ItemId(2), ItemId(70)])));
        // Unfiltered indexes cover everything.
        let unfiltered = VerticalIndex::build(&d, None, &EngineConfig::serial());
        assert!(unfiltered.covers(&item_bitmap([ItemId(3), ItemId(999)])));
    }

    #[test]
    fn encode_decode_roundtrips_mixed_index() {
        let d = mixed_db(200);
        let keep = item_bitmap((0..6).map(ItemId));
        for (filter, factor) in [
            (None, DENSE_FACTOR),
            (Some(&keep), DENSE_FACTOR),
            (None, 0),
            (None, u32::MAX),
        ] {
            let idx = VerticalIndex::build_with_density(
                &d,
                filter.map(Vec::as_slice),
                &EngineConfig::serial(),
                factor,
            );
            let mut buf = vec![0xAA, 0xBB];
            idx.encode(&mut buf);
            buf.extend_from_slice(&[0xCC]);
            let mut pos = 2;
            let back = VerticalIndex::decode(&buf, &mut pos).expect("decode");
            assert_eq!(
                pos,
                buf.len() - 1,
                "decode must consume exactly the encoding"
            );
            assert_eq!(back.num_transactions, idx.num_transactions);
            assert_eq!(back.words_per_dense, idx.words_per_dense);
            assert_eq!(back.dense_factor, idx.dense_factor);
            assert_eq!(back.keep, idx.keep);
            assert_eq!(back.entries, idx.entries);
            assert_eq!(back.sparse, idx.sparse);
            assert_eq!(back.dense, idx.dense);
        }
        // The empty index round-trips too.
        let empty = VerticalIndex::build(&TransactionDb::new(), None, &EngineConfig::serial());
        let mut buf = Vec::new();
        empty.encode(&mut buf);
        let mut pos = 0;
        let back = VerticalIndex::decode(&buf, &mut pos).expect("decode empty");
        assert_eq!(pos, buf.len());
        assert_eq!(back.num_transactions, 0);
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let d = mixed_db(200);
        let idx = VerticalIndex::build(&d, None, &EngineConfig::serial());
        let mut buf = Vec::new();
        idx.encode(&mut buf);
        // Every truncation point fails cleanly.
        for len in 0..buf.len() {
            let mut pos = 0;
            assert!(
                VerticalIndex::decode(&buf[..len], &mut pos).is_err(),
                "truncation at {len} must be rejected"
            );
        }
        // Flipping any single byte either still decodes to a structurally
        // valid index (e.g. a tid change that keeps the run sorted) or is
        // rejected — it must never panic.
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0xFF;
            let mut pos = 0;
            let _ = VerticalIndex::decode(&bad, &mut pos);
        }
    }

    #[test]
    fn empty_sources_and_tables() {
        let empty = TransactionDb::new();
        let idx = VerticalIndex::build(&empty, None, &EngineConfig::serial());
        assert_eq!(idx.num_transactions(), 0);
        assert!(idx
            .count_rows(&ItemsetTable::empty(), &EngineConfig::serial())
            .is_empty());
        let table = ItemsetTable::from_itemsets(&[s(&[1, 2])]);
        assert_eq!(idx.count_rows(&table, &EngineConfig::serial()), vec![0]);
    }

    #[test]
    fn k1_tables_count_item_supports() {
        let d = mixed_db(128);
        let idx = VerticalIndex::build(&d, None, &EngineConfig::serial());
        let table = ItemsetTable::from_itemsets(&[s(&[0]), s(&[1]), s(&[3])]);
        assert_eq!(
            idx.count_rows(&table, &EngineConfig::serial()),
            vec![128, 64, idx.support(ItemId(3))]
        );
    }

    #[test]
    fn auto_resolution_thresholds() {
        let big = PassProfile {
            k: 3,
            candidates: AUTO_MIN_CANDIDATES,
            transactions: AUTO_MIN_TRANSACTIONS,
            residue: AUTO_MIN_RESIDUE,
        };
        assert_eq!(
            CountingBackend::Auto.resolve(&big),
            ResolvedBackend::Vertical
        );
        for small in [
            PassProfile { k: 1, ..big },
            PassProfile {
                candidates: AUTO_MIN_CANDIDATES - 1,
                ..big
            },
            PassProfile {
                transactions: AUTO_MIN_TRANSACTIONS - 1,
                ..big
            },
            PassProfile {
                residue: AUTO_MIN_RESIDUE - 0.5,
                ..big
            },
        ] {
            assert_eq!(
                CountingBackend::Auto.resolve(&small),
                ResolvedBackend::HashTree,
                "{small:?}"
            );
        }
        // Forced variants ignore the profile.
        assert_eq!(
            CountingBackend::HashTree.resolve(&big),
            ResolvedBackend::HashTree
        );
        let tiny = PassProfile {
            k: 2,
            candidates: 1,
            transactions: 1,
            residue: 0.0,
        };
        assert_eq!(
            CountingBackend::Vertical.resolve(&tiny),
            ResolvedBackend::Vertical
        );
    }

    #[test]
    fn unrolled_dense_kernel_matches_scalar_reference() {
        // Exercise every remainder length around the 4-word block size,
        // and boundaries landing inside, between, and past the blocks.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for words in 0..10usize {
            let a: Vec<u64> = (0..words).map(|_| next()).collect();
            let b: Vec<u64> = (0..words).map(|_| next()).collect();
            let reference = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| u64::from((x & y).count_ones()))
                .sum::<u64>();
            assert_eq!(and_popcount(&a, &b), reference, "{words} words");
            for boundary in [0u64, 1, 63, 64, 65, 128, 256, 64 * words as u64] {
                let (below, above) = count_dense_dense(&a, &b, boundary);
                let mut expect = (0u64, 0u64);
                for (w, (&x, &y)) in a.iter().zip(&b).enumerate() {
                    let mut and = x & y;
                    while and != 0 {
                        let bit = 64 * w as u64 + u64::from(and.trailing_zeros());
                        if bit < boundary {
                            expect.0 += 1;
                        } else {
                            expect.1 += 1;
                        }
                        and &= and - 1;
                    }
                }
                assert_eq!((below, above), expect, "{words} words, boundary {boundary}");
            }
        }
    }

    #[test]
    fn gallop_and_merge_agree() {
        // Force both sparse∩sparse strategies over the same data.
        let a: Vec<u32> = (0..1000).step_by(3).collect();
        let b: Vec<u32> = vec![0, 3, 10, 33, 500, 999];
        let merged = count_sparse_sparse(&a, &b, 100);
        // b is far shorter than a / GALLOP_RATIO? len ratio 333/6 = 55 ≥ 32
        // → that call galloped. Re-check with a near-equal pair that
        // merges linearly.
        let c: Vec<u32> = (0..1000).step_by(4).collect();
        let lin = count_sparse_sparse(&a, &c, 600);
        let mut below = 0;
        let mut above = 0;
        for x in &c {
            if a.binary_search(x).is_ok() {
                if *x < 600 {
                    below += 1;
                } else {
                    above += 1;
                }
            }
        }
        assert_eq!(lin, (below, above));
        assert_eq!(merged, (3, 1)); // 0, 3, 33 below 100; 999 above
    }
}

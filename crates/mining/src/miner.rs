//! The [`Miner`] abstraction: anything that finds all large itemsets of a
//! transaction source from scratch. The experiment harness drives Apriori
//! and DHP through this trait to produce the paper's baselines.

use crate::large::LargeItemsets;
use crate::stats::MiningStats;
use crate::support::MinSupport;
use fup_tidb::TransactionSource;

/// The result of a mining run: the large itemsets with supports, plus
/// per-pass statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningOutcome {
    /// All large itemsets with their support counts.
    pub large: LargeItemsets,
    /// Per-pass candidate/large counts and elapsed time.
    pub stats: MiningStats,
}

/// A from-scratch large-itemset miner (Apriori, DHP).
///
/// FUP itself is *not* a `Miner` — it is an incremental maintainer that
/// additionally consumes the previous result; see `fup-core`.
pub trait Miner {
    /// Short stable name for reports ("apriori", "dhp").
    fn name(&self) -> &'static str;

    /// Finds all large itemsets of `source` at threshold `minsup`.
    fn mine(&self, source: &dyn TransactionSource, minsup: MinSupport) -> MiningOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::dhp::Dhp;

    #[test]
    fn trait_objects_are_usable() {
        let miners: Vec<Box<dyn Miner>> = vec![Box::new(Apriori::new()), Box::new(Dhp::new())];
        let names: Vec<_> = miners.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["apriori", "dhp"]);
    }
}

//! The Apriori algorithm (Agrawal & Srikant, VLDB 1994) — the paper's first
//! baseline: "re-run the association rule mining algorithm on the whole
//! updated database".
//!
//! Level-wise search: pass 1 counts individual items; pass `k` counts the
//! candidates produced by `apriori-gen` on `L_{k−1}` via the hash tree. One
//! full database scan per pass.

use crate::counting::ItemCounts;
use crate::engine::{self, EngineConfig};
use crate::gen::apriori_gen_flat;
use crate::itemset::{Itemset, ItemsetTable};
use crate::large::LargeItemsets;
use crate::miner::{Miner, MiningOutcome};
use crate::stats::{MiningStats, PassStats};
use crate::support::MinSupport;
use crate::vertical::{self, PassProfile, ResolvedBackend, VerticalIndex};
use fup_tidb::{ItemId, TransactionSource};
use std::time::Instant;

/// Configuration for [`Apriori`].
#[derive(Debug, Clone, Default)]
pub struct AprioriConfig {
    /// Stop after this pass even if larger itemsets might exist.
    /// `None` (default) runs until a pass finds nothing.
    pub max_k: Option<usize>,
    /// Counting-engine settings (thread count, chunk size) for every scan.
    pub engine: EngineConfig,
}

/// The Apriori miner.
#[derive(Debug, Clone, Default)]
pub struct Apriori {
    config: AprioriConfig,
}

impl Apriori {
    /// Creates a miner with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: AprioriConfig) -> Self {
        Apriori { config }
    }

    /// Runs Apriori over `source`.
    pub fn run(&self, source: &dyn TransactionSource, minsup: MinSupport) -> MiningOutcome {
        self.run_with_index(source, minsup).0
    }

    /// Runs Apriori over `source`, additionally returning the
    /// [`VerticalIndex`] the run built — `Some` whenever the configured
    /// backend engaged vertical counting on any pass (always under
    /// [`CountingBackend::Vertical`](crate::CountingBackend) with
    /// candidates present, threshold-dependent under `Auto`).
    ///
    /// The index covers exactly `source` and is filtered to the mined
    /// `L₁`, so a maintenance session can seed its persistent index slot
    /// from the bootstrap mine instead of paying a second full scan.
    pub fn run_with_index(
        &self,
        source: &dyn TransactionSource,
        minsup: MinSupport,
    ) -> (MiningOutcome, Option<VerticalIndex>) {
        let start = Instant::now();
        let n = source.num_transactions();
        let mut large = LargeItemsets::new(n);
        let mut stats = MiningStats::new("apriori");

        // Pass 1: count items. The large items become the flat level
        // table L₁ (one run); their occurrence total gives the average
        // frequent-item residue backend selection weighs.
        let item_counts = ItemCounts::count_with(source, &self.config.engine);
        let mut distinct_items = 0u64;
        let mut level_rows: Vec<ItemId> = Vec::new();
        let mut freq_occurrences = 0u64;
        for (item, count) in item_counts.iter_nonzero() {
            distinct_items += 1;
            if minsup.is_large(count, n) {
                large.insert(Itemset::single(item), count);
                level_rows.push(item);
                freq_occurrences += count;
            }
        }
        stats.passes.push(PassStats {
            k: 1,
            candidates_generated: distinct_items,
            candidates_checked: distinct_items,
            large_found: level_rows.len() as u64,
        });
        let residue = freq_occurrences as f64 / n.max(1) as f64;
        let keep = vertical::item_bitmap(level_rows.iter().copied());
        let mut level = ItemsetTable::from_flat_rows(1, level_rows);

        // Pass k ≥ 2: generate flat, count through the configured
        // backend, filter into the next flat level. The vertical index is
        // built lazily at the first pass the backend resolves vertical
        // and reused (sticky) from then on.
        let mut index: Option<VerticalIndex> = None;
        let mut k = 2;
        while !level.is_empty() && self.config.max_k.is_none_or(|m| k <= m) {
            let candidates = apriori_gen_flat(&level, &self.config.engine.gen);
            let generated = candidates.len() as u64;
            let use_vertical = !candidates.is_empty()
                && (index.is_some()
                    || self.config.engine.backend.resolve(&PassProfile {
                        k,
                        candidates: candidates.len(),
                        transactions: n,
                        residue,
                    }) == ResolvedBackend::Vertical);
            let counts: Vec<u64> = if use_vertical {
                let idx = index.get_or_insert_with(|| {
                    VerticalIndex::build(source, Some(&keep), &self.config.engine)
                });
                idx.count_rows(&candidates, &self.config.engine)
            } else {
                engine::count_table_with(source, &candidates, &self.config.engine)
            };
            let mut next_rows: Vec<ItemId> = Vec::new();
            let mut found = 0u64;
            for (i, &count) in counts.iter().enumerate() {
                if minsup.is_large(count, n) {
                    large.insert(candidates.row_itemset(i), count);
                    next_rows.extend_from_slice(candidates.row(i));
                    found += 1;
                }
            }
            level = ItemsetTable::from_flat_rows(k, next_rows);
            stats.passes.push(PassStats {
                k,
                candidates_generated: generated,
                candidates_checked: generated,
                large_found: found,
            });
            k += 1;
        }

        stats.elapsed = start.elapsed();
        (MiningOutcome { large, stats }, index)
    }
}

impl Miner for Apriori {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn mine(&self, source: &dyn TransactionSource, minsup: MinSupport) -> MiningOutcome {
        self.run(source, minsup)
    }
}

/// Exhaustive reference miner for tests: enumerates every subset of every
/// transaction. Exponential; only usable on tiny databases, but obviously
/// correct — the anchor of all equivalence property tests.
pub fn mine_naive(source: &dyn TransactionSource, minsup: MinSupport) -> LargeItemsets {
    use std::collections::HashMap;
    let n = source.num_transactions();
    let mut counts: HashMap<Itemset, u64> = HashMap::new();
    source.for_each(&mut |t| {
        assert!(t.len() <= 20, "mine_naive is for tiny transactions only");
        // Every non-empty subset of t.
        for mask in 1u32..(1u32 << t.len()) {
            let subset: Vec<_> = t
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            *counts.entry(Itemset::from_sorted_vec(subset)).or_insert(0) += 1;
        }
    });
    let mut large = LargeItemsets::new(n);
    for (x, c) in counts {
        if minsup.is_large(c, n) {
            large.insert(x, c);
        }
    }
    large
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_tidb::{Transaction, TransactionDb};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn textbook_example() {
        // AS94-style toy database, minsup 50% (count ≥ 2 of 4).
        let d = db(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]]);
        let out = Apriori::new().run(&d, MinSupport::percent(50));
        let l = &out.large;
        assert_eq!(l.support(&s(&[1])), Some(2));
        assert_eq!(l.support(&s(&[2])), Some(3));
        assert_eq!(l.support(&s(&[3])), Some(3));
        assert_eq!(l.support(&s(&[5])), Some(3));
        assert_eq!(l.support(&s(&[4])), None);
        assert_eq!(l.support(&s(&[1, 3])), Some(2));
        assert_eq!(l.support(&s(&[2, 3])), Some(2));
        assert_eq!(l.support(&s(&[2, 5])), Some(3));
        assert_eq!(l.support(&s(&[3, 5])), Some(2));
        assert_eq!(l.support(&s(&[1, 2])), None);
        assert_eq!(l.support(&s(&[2, 3, 5])), Some(2));
        assert_eq!(l.len_at(3), 1);
        assert_eq!(l.max_size(), 3);
    }

    #[test]
    fn matches_naive_reference() {
        let d = db(&[
            &[1, 2, 3],
            &[1, 2],
            &[2, 3, 4],
            &[1, 3, 4],
            &[2, 4],
            &[1, 2, 3, 4],
            &[3],
        ]);
        for pct in [10, 25, 40, 60, 100] {
            let minsup = MinSupport::percent(pct);
            let fast = Apriori::new().run(&d, minsup).large;
            let naive = mine_naive(&d, minsup);
            assert!(
                fast.same_itemsets(&naive),
                "minsup {pct}%: {:?}",
                fast.diff(&naive)
            );
        }
    }

    #[test]
    fn every_backend_mines_identical_itemsets() {
        use crate::vertical::CountingBackend;
        let d = db(&[
            &[1, 2, 3, 4],
            &[1, 2, 3],
            &[2, 3, 4],
            &[1, 3, 4],
            &[1, 2, 4],
            &[2, 4, 5],
            &[1, 5],
            &[3],
        ]);
        for pct in [15, 30, 50] {
            let minsup = MinSupport::percent(pct);
            let reference = Apriori::new().run(&d, minsup).large;
            for backend in [
                CountingBackend::HashTree,
                CountingBackend::Vertical,
                CountingBackend::Auto,
            ] {
                let config = AprioriConfig {
                    engine: EngineConfig::default().with_backend(backend),
                    ..AprioriConfig::default()
                };
                let out = Apriori::with_config(config).run(&d, minsup).large;
                assert!(
                    out.same_itemsets(&reference),
                    "{backend:?} at {pct}%: {:?}",
                    out.diff(&reference)
                );
            }
        }
    }

    #[test]
    fn one_scan_per_pass() {
        let d = db(&[&[1, 2], &[1, 2], &[1, 2]]);
        let out = Apriori::new().run(&d, MinSupport::percent(100));
        // L1={1,2}, L2={12}, pass 3 generates no candidates (skipped scan).
        assert_eq!(out.stats.num_passes(), 3);
        // Pass 1 + pass 2 scan; pass 3 has empty C3 so no scan.
        assert_eq!(d.metrics().full_scans(), 2);
    }

    #[test]
    fn empty_database() {
        let d = db(&[]);
        let out = Apriori::new().run(&d, MinSupport::percent(10));
        assert!(out.large.is_empty());
        assert_eq!(out.stats.num_passes(), 1);
    }

    #[test]
    fn max_k_truncates_search() {
        let d = db(&[&[1, 2, 3], &[1, 2, 3]]);
        let out = Apriori::with_config(AprioriConfig {
            max_k: Some(2),
            ..AprioriConfig::default()
        })
        .run(&d, MinSupport::percent(100));
        assert_eq!(out.large.max_size(), 2);
        assert_eq!(out.large.len_at(2), 3);
    }

    #[test]
    fn zero_minsup_includes_everything_seen() {
        let d = db(&[&[1], &[2]]);
        let out = Apriori::new().run(&d, MinSupport::ratio(0, 1));
        // Both 1-itemsets large; {1,2} has support 0 and is still "large"
        // under a zero threshold — but it is never generated because
        // apriori-gen only joins, and counting finds support 0 which
        // satisfies s=0. It IS included.
        assert!(out.large.contains(&s(&[1])));
        assert!(out.large.contains(&s(&[2])));
        assert_eq!(out.large.support(&s(&[1, 2])), Some(0));
    }

    #[test]
    fn stats_track_candidates() {
        let d = db(&[&[1, 2], &[1, 2], &[3, 4]]);
        let out = Apriori::new().run(&d, MinSupport::percent(60));
        let p1 = &out.stats.passes[0];
        assert_eq!(p1.k, 1);
        assert_eq!(p1.candidates_generated, 4);
        assert_eq!(p1.large_found, 2); // items 1, 2
        let p2 = &out.stats.passes[1];
        assert_eq!(p2.candidates_generated, 1); // {1,2}
        assert_eq!(p2.large_found, 1);
    }
}

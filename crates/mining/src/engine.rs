//! The parallel, allocation-free support-counting engine.
//!
//! Every miner in this workspace — Apriori, DHP, FUP, FUP2 — spends its
//! time in the same loop: one full pass over a
//! [`TransactionSource`], folding each transaction into some accumulator
//! (a candidate hash tree's counts, a dense per-item table, DHP's pair
//! buckets, a trimmed working copy). This module runs that loop on every
//! core:
//!
//! * the source is split into [`TxChunk`](fup_tidb::TxChunk)s via the
//!   chunked scan API of `fup_tidb`,
//! * `std::thread::scope` workers claim chunks from an atomic cursor
//!   (no work queue, no locking, no allocation in steady state — each
//!   worker reuses one [`ChunkScratch`] and one accumulator). Sources
//!   that advertise partitions ([`TransactionSource::chunk_partitions`]
//!   — one per tid-range shard) get **one cursor per partition**:
//!   workers drain a home partition first and steal from the rest, so
//!   shards scan in parallel without contending on one shared counter,
//! * per-worker accumulators are merged once, at the end of the pass.
//!
//! Counting is exact and order-independent, so the merged result equals
//! the serial result bit for bit. With [`EngineConfig::threads`]` = 1`
//! the engine does not even spin up the chunked machinery: it runs the
//! classic [`for_each`](TransactionSource::for_each) loop, reproducing
//! the historical serial behaviour (and its `ScanMetrics` charges)
//! exactly. The default `threads = 0` resolves to
//! [`std::thread::available_parallelism`].
//!
//! Order-sensitive by-products (FUP's `Reduce-db` trimmed copies, DHP's
//! working databases) stay deterministic through [`ChunkedCollector`]:
//! values are grouped by chunk index and concatenated in chunk order, so
//! the output is independent of worker scheduling.

use crate::counting::ItemCounts;
use crate::gen::GenConfig;
use crate::hashtree::HashTree;
use crate::itemset::{Itemset, ItemsetTable};
use crate::vertical::CountingBackend;
use fup_tidb::{ChunkScratch, ItemId, TransactionSource};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default transactions per chunk. Large enough to amortise chunk claim
/// and metric charges, small enough to load-balance skewed sources.
pub const DEFAULT_CHUNK_SIZE: usize = 1024;

/// Configuration of the counting engine (and of the candidate-generation
/// phase every miner runs between counting passes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for counting scans. `0` (the default) resolves to
    /// [`std::thread::available_parallelism`]; `1` runs the classic
    /// serial scan loop, bit-identical to the pre-engine implementation.
    pub threads: usize,
    /// Transactions per claimed chunk (min 1).
    pub chunk_size: usize,
    /// Candidate-generation (`apriori-gen` join+prune) settings. Output
    /// is byte-identical for every thread count.
    pub gen: GenConfig,
    /// Support-counting strategy for the miners' passes: the candidate
    /// hash tree, the vertical tid-list index, or (the default) an
    /// adaptive per-pass choice. Every backend produces bit-identical
    /// large itemsets; only scan accounting differs (see
    /// [`crate::vertical`]).
    pub backend: CountingBackend,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            chunk_size: DEFAULT_CHUNK_SIZE,
            gen: GenConfig::default(),
            backend: CountingBackend::default(),
        }
    }
}

impl EngineConfig {
    /// The exact historical serial behaviour: `threads = 1` for the
    /// counting scans and the candidate generation alike, and the hash
    /// tree pinned as the counting backend (the vertical index changes
    /// *when* sources are scanned, which this configuration promises not
    /// to).
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            gen: GenConfig::serial(),
            backend: CountingBackend::HashTree,
            ..EngineConfig::default()
        }
    }

    /// This configuration with an explicit counting backend.
    pub fn with_backend(mut self, backend: CountingBackend) -> Self {
        self.backend = backend;
        self
    }

    /// A configuration with an explicit thread count, applied to both the
    /// counting scans and the candidate generation.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads,
            gen: GenConfig::with_threads(threads),
            ..EngineConfig::default()
        }
    }

    /// The effective worker count (`0` resolved to the machine's
    /// available parallelism).
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Runs one full pass over `source`, folding every transaction into a
/// per-worker accumulator; returns the accumulators (one per worker that
/// ran — a single one on the serial path).
///
/// `step` receives the accumulator, the chunk index the transaction came
/// from (always 0 on the serial path), and the transaction's sorted item
/// slice. Transactions of one chunk are delivered to one worker in pass
/// order; chunk indices claimed by a worker increase monotonically.
///
/// The pass is charged to the source's `ScanMetrics` exactly once, per
/// chunk on the parallel path and per transaction on the serial path
/// (identical totals).
pub fn scan_fold<S, A, Make, Step>(
    source: &S,
    config: &EngineConfig,
    make: Make,
    step: Step,
) -> Vec<A>
where
    S: TransactionSource + ?Sized,
    A: Send,
    Make: Fn() -> A + Sync,
    Step: Fn(&mut A, u64, &[ItemId]) + Sync,
{
    let threads = config.resolved_threads();
    let chunk_size = config.chunk_size.max(1);
    let num_chunks = if threads > 1 {
        source.plan_chunks(chunk_size)
    } else {
        0
    };
    // Serial path: requested, or the pass fits one chunk (a tiny FUP
    // increment, say) and spawning workers could only add overhead.
    if threads <= 1 || num_chunks <= 1 {
        let mut acc = make();
        source.for_each(&mut |t| step(&mut acc, 0, t));
        return vec![acc];
    }
    let workers = threads.min(num_chunks as usize);
    source.record_scan_start();
    // One cursor per (non-empty) chunk partition. Unpartitioned sources
    // advertise a single partition, reproducing the classic shared-cursor
    // pass exactly; a sharded source gets one cursor per shard.
    let partitions: Vec<(u64, u64)> = {
        let ends = source.chunk_partitions(chunk_size);
        debug_assert_eq!(ends.last().copied(), Some(num_chunks));
        let mut start = 0;
        ends.into_iter()
            .filter_map(|end| {
                let s = start;
                start = end;
                (s < end).then_some((s, end))
            })
            .collect()
    };
    let cursors: Vec<AtomicU64> = partitions.iter().map(|&(s, _)| AtomicU64::new(s)).collect();
    let nparts = partitions.len();
    let mut results = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let partitions = &partitions;
            let cursors = &cursors;
            let make = &make;
            let step = &step;
            handles.push(scope.spawn(move || {
                let mut acc = make();
                let mut scratch = ChunkScratch::new();
                // Drain the home partition, then steal from the others.
                // Every worker eventually visits every partition, so all
                // chunks are claimed however threads and shards mismatch.
                let home = w % nparts;
                for offset in 0..nparts {
                    let p = (home + offset) % nparts;
                    let end = partitions[p].1;
                    loop {
                        let index = cursors[p].fetch_add(1, Ordering::Relaxed);
                        if index >= end {
                            break;
                        }
                        let chunk = source.chunk(chunk_size, index, &mut scratch);
                        for t in chunk.iter() {
                            step(&mut acc, index, t);
                        }
                    }
                }
                acc
            }));
        }
        for handle in handles {
            results.push(handle.join().expect("counting worker panicked"));
        }
    });
    results
}

/// Runs a counting pass for `tree` over `source`, adding the results into
/// the tree's own counts — the parallel form of
/// [`HashTree::count_source`].
pub fn count_source_into<S>(tree: &mut HashTree, source: &S, config: &EngineConfig)
where
    S: TransactionSource + ?Sized,
{
    let view = tree.view();
    let scratches = scan_fold(
        source,
        config,
        || tree.new_scratch(),
        |scratch, _chunk, t| view.count(t, scratch),
    );
    for scratch in scratches {
        tree.absorb(scratch);
    }
}

/// Counts the support of `candidates` (all of one size `k`) over one full
/// pass of `source`, returning `(candidate, count)` pairs in input order —
/// the engine-backed form of [`crate::counting::count_candidates`].
pub fn count_candidates_with<S>(
    source: &S,
    candidates: Vec<Itemset>,
    config: &EngineConfig,
) -> Vec<(Itemset, u64)>
where
    S: TransactionSource + ?Sized,
{
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut tree = HashTree::build(candidates);
    count_source_into(&mut tree, source, config);
    tree.into_results()
}

/// Counts the support of every row of `table` over one full pass of
/// `source` through a hash tree built straight from the table's row
/// arena (one flat copy — the tree needs owned storage — and no
/// per-candidate allocation), returning counts in row order — the flat
/// counterpart of [`count_candidates_with`] the miners' level loops use.
pub fn count_table_with<S>(source: &S, table: &ItemsetTable, config: &EngineConfig) -> Vec<u64>
where
    S: TransactionSource + ?Sized,
{
    if table.is_empty() {
        return Vec::new();
    }
    let mut tree = HashTree::build_from_rows(table.k(), table.flat_items());
    count_source_into(&mut tree, source, config);
    tree.into_counts()
}

/// Counts every item over one full pass of `source` — the engine-backed
/// form of [`ItemCounts::count`].
pub fn count_items_with<S>(source: &S, config: &EngineConfig) -> ItemCounts
where
    S: TransactionSource + ?Sized,
{
    let tables = scan_fold(
        source,
        config,
        Vec::new,
        |counts: &mut Vec<u64>, _chunk, t| {
            for &item in t {
                let i = item.index();
                if i >= counts.len() {
                    counts.resize(i + 1, 0);
                }
                counts[i] += 1;
            }
        },
    );
    ItemCounts::from_dense(merge_dense(tables))
}

/// Deterministic pair-bucket hash shared by DHP's direct hashing and
/// FUP/FUP2's increment pair filter (order-sensitive inputs must be given
/// as `x < y`).
#[inline]
pub fn pair_bucket(x: ItemId, y: ItemId, buckets: usize) -> usize {
    let key = (u64::from(x.raw()) << 32) | u64::from(y.raw());
    // Fibonacci hashing; the multiplier is 2^64 / φ.
    let mixed = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mixed >> 32) as usize % buckets
}

/// One engine pass computing dense per-item counts plus (when
/// `nbuckets > 0`) DHP-style pair-bucket totals — the shared "first
/// iteration" scan of DHP, FUP, and FUP2.
pub fn count_items_and_pairs<S>(
    source: &S,
    nbuckets: usize,
    config: &EngineConfig,
) -> (Vec<u64>, Vec<u64>)
where
    S: TransactionSource + ?Sized,
{
    let folds = scan_fold(
        source,
        config,
        || (Vec::new(), vec![0u64; nbuckets]),
        |(counts, buckets): &mut (Vec<u64>, Vec<u64>), _chunk, t| {
            for &item in t {
                let i = item.index();
                if i >= counts.len() {
                    counts.resize(i + 1, 0);
                }
                counts[i] += 1;
            }
            if nbuckets > 0 {
                for i in 0..t.len() {
                    for j in (i + 1)..t.len() {
                        buckets[pair_bucket(t[i], t[j], nbuckets)] += 1;
                    }
                }
            }
        },
    );
    let (count_tables, bucket_tables): (Vec<_>, Vec<_>) = folds.into_iter().unzip();
    (merge_dense(count_tables), merge_dense(bucket_tables))
}

/// Element-wise sums dense `u64` tables of possibly different lengths.
pub fn merge_dense(tables: Vec<Vec<u64>>) -> Vec<u64> {
    let mut iter = tables.into_iter();
    let mut total = iter.next().unwrap_or_default();
    for table in iter {
        if table.len() > total.len() {
            let mut table = table;
            for (i, v) in total.iter().enumerate() {
                table[i] += v;
            }
            total = table;
        } else {
            for (i, v) in table.into_iter().enumerate() {
                total[i] += v;
            }
        }
    }
    total
}

/// Accumulates order-sensitive per-transaction by-products (trimmed
/// working copies, match lists) deterministically: values are keyed by
/// the chunk they came from, and [`ChunkedCollector::merge`] concatenates
/// chunk groups in chunk order — the result is independent of how chunks
/// were scheduled onto workers.
#[derive(Debug)]
pub struct ChunkedCollector<T> {
    groups: Vec<(u64, Vec<T>)>,
}

impl<T> Default for ChunkedCollector<T> {
    fn default() -> Self {
        ChunkedCollector { groups: Vec::new() }
    }
}

impl<T> ChunkedCollector<T> {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `value` under `chunk`. Each worker sees monotonically
    /// increasing chunk indices, so the group list stays sorted per
    /// collector.
    pub fn push(&mut self, chunk: u64, value: T) {
        match self.groups.last_mut() {
            Some((c, group)) if *c == chunk => group.push(value),
            _ => self.groups.push((chunk, vec![value])),
        }
    }

    /// Merges per-worker collectors into one chunk-ordered value stream.
    pub fn merge(collectors: Vec<Self>) -> Vec<T> {
        let mut groups: Vec<(u64, Vec<T>)> =
            collectors.into_iter().flat_map(|c| c.groups).collect();
        groups.sort_by_key(|(chunk, _)| *chunk);
        groups.into_iter().flat_map(|(_, g)| g).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_tidb::transaction::contains_sorted;
    use fup_tidb::{Transaction, TransactionDb};

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn db(n: u32) -> TransactionDb {
        TransactionDb::from_transactions(
            (0..n).map(|i| {
                Transaction::from_items([i % 7, 7 + (i % 5), 12 + (i % 11), 23 + (i % 3)])
            }),
        )
    }

    fn candidates() -> Vec<Itemset> {
        let mut out = Vec::new();
        for a in 0..7u32 {
            for b in 7..12 {
                out.push(s(&[a, b]));
            }
        }
        out
    }

    #[test]
    fn parallel_counts_match_serial() {
        let source = db(500);
        let serial = count_candidates_with(&source, candidates(), &EngineConfig::serial());
        for threads in [2, 3, 8] {
            for chunk_size in [1, 7, 64] {
                let cfg = EngineConfig {
                    threads,
                    chunk_size,
                    ..EngineConfig::default()
                };
                let parallel = count_candidates_with(&db(500), candidates(), &cfg);
                assert_eq!(parallel, serial, "threads {threads} chunk {chunk_size}");
            }
        }
    }

    #[test]
    fn parallel_counts_match_naive_containment() {
        let source = db(300);
        let cfg = EngineConfig::with_threads(4);
        let counted = count_candidates_with(&source, candidates(), &cfg);
        for (cand, count) in counted {
            let mut truth = 0u64;
            source.for_each(&mut |t| {
                if contains_sorted(t, cand.items()) {
                    truth += 1;
                }
            });
            assert_eq!(count, truth, "candidate {cand:?}");
        }
    }

    #[test]
    fn scan_metrics_totals_match_serial() {
        let a = db(400);
        let b = db(400);
        let _ = count_candidates_with(&a, candidates(), &EngineConfig::serial());
        let _ = count_candidates_with(
            &b,
            candidates(),
            &EngineConfig {
                threads: 4,
                chunk_size: 33,
                ..EngineConfig::default()
            },
        );
        assert_eq!(a.metrics().snapshot(), b.metrics().snapshot());
    }

    #[test]
    fn item_counts_match_across_configs() {
        let source = db(700);
        let serial = count_items_with(&source, &EngineConfig::serial());
        let parallel = count_items_with(&source, &EngineConfig::with_threads(6));
        for i in 0..30u32 {
            assert_eq!(
                serial.get(fup_tidb::ItemId(i)),
                parallel.get(fup_tidb::ItemId(i))
            );
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let cfg = EngineConfig::default();
        assert!(cfg.resolved_threads() >= 1);
        // And the pass still counts correctly.
        let counted = count_candidates_with(&db(100), candidates(), &cfg);
        let reference = count_candidates_with(&db(100), candidates(), &EngineConfig::serial());
        assert_eq!(counted, reference);
    }

    #[test]
    fn empty_source_and_empty_candidates() {
        let empty = TransactionDb::new();
        let cfg = EngineConfig::with_threads(4);
        assert!(count_candidates_with(&empty, Vec::new(), &cfg).is_empty());
        let counted = count_candidates_with(&empty, vec![s(&[1, 2])], &cfg);
        assert_eq!(counted, vec![(s(&[1, 2]), 0)]);
        let items = count_items_with(&empty, &cfg);
        assert_eq!(items.capacity(), 0);
    }

    #[test]
    fn partitioned_source_counts_match_serial() {
        use fup_tidb::{ShardSpec, ShardedDb};
        let rows: Vec<Transaction> = (0..500)
            .map(|i| Transaction::from_items([i % 7, 7 + (i % 5), 12 + (i % 11), 23 + (i % 3)]))
            .collect();
        let flat = TransactionDb::from_transactions(rows.clone());
        let serial = count_candidates_with(&flat, candidates(), &EngineConfig::serial());
        // Shard counts both below and above the worker count, with chunk
        // sizes that leave short seam chunks inside partitions.
        for shards in [1u32, 2, 3, 8] {
            let sharded =
                ShardedDb::from_transactions(ShardSpec::striped_with(shards, 16), rows.clone())
                    .unwrap();
            for threads in [2, 4, 8] {
                let cfg = EngineConfig {
                    threads,
                    chunk_size: 33,
                    ..EngineConfig::default()
                };
                let counted = count_candidates_with(&sharded, candidates(), &cfg);
                assert_eq!(counted, serial, "shards {shards} threads {threads}");
            }
        }
    }

    #[test]
    fn chunked_collector_orders_by_chunk() {
        let mut w1 = ChunkedCollector::new();
        let mut w2 = ChunkedCollector::new();
        // Worker 1 claimed chunks 0 and 2; worker 2 claimed chunk 1.
        w1.push(0, "a");
        w1.push(0, "b");
        w1.push(2, "e");
        w2.push(1, "c");
        w2.push(1, "d");
        assert_eq!(
            ChunkedCollector::merge(vec![w2, w1]),
            vec!["a", "b", "c", "d", "e"]
        );
    }

    #[test]
    fn merge_dense_handles_ragged_tables() {
        assert_eq!(merge_dense(Vec::new()), Vec::<u64>::new());
        assert_eq!(
            merge_dense(vec![vec![1, 2], vec![10, 10, 10], vec![5]]),
            vec![16, 12, 10]
        );
    }
}

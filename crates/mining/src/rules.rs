//! Association-rule derivation — step 2 of the classic decomposition.
//!
//! "Since it is easy to generate association rules if the large itemsets
//! are available, major efforts … have been focused on finding efficient
//! algorithms to compute the large itemsets" (§1). This module supplies
//! that easy-but-necessary second step: given `L` with support counts and a
//! minimum confidence, derive every strong rule `X ⇒ Y` with
//! `X, Y ⊆ I, X ∩ Y = ∅`, using the `ap-genrules` recursion of Agrawal &
//! Srikant (consequents grow level-wise; a failed consequent prunes all of
//! its supersets because confidence is antitone in the consequent).

use crate::gen::apriori_gen;
use crate::itemset::Itemset;
use crate::large::LargeItemsets;
use std::collections::HashMap;
use std::fmt;

/// An exact minimum-confidence threshold `c = num / den`.
///
/// A rule `X ⇒ Y` meets the threshold iff
/// `support(X ∪ Y) ≥ c × support(X)`, compared exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MinConfidence {
    num: u64,
    den: u64,
}

impl MinConfidence {
    /// Creates a threshold from a rational `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the fraction exceeds 1.
    pub fn ratio(num: u64, den: u64) -> Self {
        assert!(den > 0, "denominator must be positive");
        assert!(num <= den, "confidence fraction must be ≤ 1");
        MinConfidence { num, den }
    }

    /// Creates a threshold from a percentage.
    pub fn percent(p: u64) -> Self {
        Self::ratio(p, 100)
    }

    /// `true` iff `union_count / antecedent_count ≥ c`, exactly.
    #[inline]
    pub fn is_met(&self, union_count: u64, antecedent_count: u64) -> bool {
        u128::from(union_count) * u128::from(self.den)
            >= u128::from(antecedent_count) * u128::from(self.num)
    }

    /// The threshold as a float, for reporting only.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The exact numerator of the threshold fraction.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// The exact denominator of the threshold fraction.
    pub fn den(&self) -> u64 {
        self.den
    }
}

/// A strong association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rule {
    /// The rule body `X`.
    pub antecedent: Itemset,
    /// The rule head `Y` (disjoint from `X`).
    pub consequent: Itemset,
    /// Support count of `X ∪ Y` in the database.
    pub union_count: u64,
    /// Support count of `X` in the database.
    pub antecedent_count: u64,
}

impl Rule {
    /// Confidence `support(X ∪ Y) / support(X)` as a float.
    pub fn confidence(&self) -> f64 {
        if self.antecedent_count == 0 {
            return 0.0;
        }
        self.union_count as f64 / self.antecedent_count as f64
    }

    /// Support of the rule (`support(X ∪ Y)`) as a fraction of `n`
    /// transactions.
    pub fn support_fraction(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.union_count as f64 / n as f64
    }

    /// The rule's identity — antecedent and consequent, ignoring counts.
    /// Used to diff rule sets across database updates.
    pub fn key(&self) -> (Itemset, Itemset) {
        (self.antecedent.clone(), self.consequent.clone())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} => {:?} (conf {:.3}, count {})",
            self.antecedent,
            self.consequent,
            self.confidence(),
            self.union_count
        )
    }
}

/// A set of strong rules, sorted for deterministic iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Builds a rule set, sorting and deduplicating by rule identity.
    pub fn from_rules(mut rules: Vec<Rule>) -> Self {
        rules.sort();
        rules.dedup_by(|a, b| a.key() == b.key());
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if no rule is present.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, sorted.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Looks up a rule by its antecedent/consequent identity.
    pub fn get(&self, antecedent: &Itemset, consequent: &Itemset) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| &r.antecedent == antecedent && &r.consequent == consequent)
    }

    /// `true` if a rule with this identity is present.
    pub fn contains(&self, antecedent: &Itemset, consequent: &Itemset) -> bool {
        self.get(antecedent, consequent).is_some()
    }

    /// Rules in `self` whose identity does not occur in `other`.
    pub fn minus(&self, other: &RuleSet) -> Vec<Rule> {
        let keys: std::collections::HashSet<(Itemset, Itemset)> =
            other.rules.iter().map(Rule::key).collect();
        self.rules
            .iter()
            .filter(|r| !keys.contains(&r.key()))
            .cloned()
            .collect()
    }
}

impl IntoIterator for RuleSet {
    type Item = Rule;
    type IntoIter = std::vec::IntoIter<Rule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.into_iter()
    }
}

/// Derives all strong rules from `large` at confidence `minconf`, using the
/// `ap-genrules` level-wise consequent search.
///
/// For every large itemset `l` with `|l| ≥ 2`, candidate consequents start
/// at size 1; a consequent `h` yields the rule `(l − h) ⇒ h` with confidence
/// `support(l) / support(l − h)`. Consequents that fail are not extended
/// (confidence can only drop as the consequent grows).
pub fn generate_rules(large: &LargeItemsets, minconf: MinConfidence) -> RuleSet {
    let mut out = Vec::new();
    // Support lookup across *all* levels; antecedents l − h are large by the
    // subset-closure property, so lookups always succeed for valid input.
    let support: HashMap<&Itemset, u64> = large.iter().collect();

    for k in 2..=large.max_size() {
        for (l, l_count) in large.level(k) {
            // Level 1 consequents.
            let mut consequents: Vec<Itemset> = Vec::new();
            for h in l.items().iter().copied().map(Itemset::single) {
                if try_rule(l, l_count, &h, &support, minconf, &mut out) {
                    consequents.push(h);
                }
            }
            // Grow consequents while rules keep holding and room remains
            // for a non-empty antecedent.
            let mut m = 1;
            while m + 1 < l.k() && consequents.len() > 1 {
                let next = apriori_gen(&consequents);
                consequents.clear();
                for h in next {
                    if try_rule(l, l_count, &h, &support, minconf, &mut out) {
                        consequents.push(h);
                    }
                }
                m += 1;
            }
        }
    }
    RuleSet::from_rules(out)
}

/// Checks `l − h ⇒ h`; records it and returns `true` when confident.
fn try_rule(
    l: &Itemset,
    l_count: u64,
    h: &Itemset,
    support: &HashMap<&Itemset, u64>,
    minconf: MinConfidence,
    out: &mut Vec<Rule>,
) -> bool {
    let antecedent = l.difference(h);
    debug_assert!(!antecedent.is_empty(), "consequent must be proper subset");
    let Some(&a_count) = support.get(&antecedent) else {
        // l − h not large ⇒ inconsistent input; skip defensively.
        return false;
    };
    if minconf.is_met(l_count, a_count) {
        out.push(Rule {
            antecedent,
            consequent: h.clone(),
            union_count: l_count,
            antecedent_count: a_count,
        });
        true
    } else {
        false
    }
}

/// Reference implementation for tests: tries every non-empty proper subset
/// of every large itemset as a consequent. Exponential in `k`.
pub fn generate_rules_naive(large: &LargeItemsets, minconf: MinConfidence) -> RuleSet {
    let mut out = Vec::new();
    let support: HashMap<&Itemset, u64> = large.iter().collect();
    for k in 2..=large.max_size() {
        for (l, l_count) in large.level(k) {
            let items = l.items();
            for mask in 1u32..((1u32 << items.len()) - 1) {
                let consequent: Itemset = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &x)| x)
                    .collect();
                let antecedent = l.difference(&consequent);
                if let Some(&a_count) = support.get(&antecedent) {
                    if minconf.is_met(l_count, a_count) {
                        out.push(Rule {
                            antecedent,
                            consequent,
                            union_count: l_count,
                            antecedent_count: a_count,
                        });
                    }
                }
            }
        }
    }
    RuleSet::from_rules(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::support::MinSupport;
    use fup_tidb::{Transaction, TransactionDb};

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn toy_large() -> LargeItemsets {
        // From a 4-transaction database (AS94 example):
        let mut l = LargeItemsets::new(4);
        l.insert(s(&[1]), 2);
        l.insert(s(&[2]), 3);
        l.insert(s(&[3]), 3);
        l.insert(s(&[5]), 3);
        l.insert(s(&[1, 3]), 2);
        l.insert(s(&[2, 3]), 2);
        l.insert(s(&[2, 5]), 3);
        l.insert(s(&[3, 5]), 2);
        l.insert(s(&[2, 3, 5]), 2);
        l
    }

    #[test]
    fn confidence_is_exact() {
        let c = MinConfidence::percent(66);
        assert!(c.is_met(2, 3)); // 2/3 ≈ 0.667 ≥ 0.66
        assert!(!c.is_met(1, 2)); // 0.5 < 0.66
        let c = MinConfidence::ratio(2, 3);
        assert!(c.is_met(2, 3)); // exactly 2/3
        assert!(!c.is_met(665, 1000));
    }

    #[test]
    fn generates_expected_rules_at_100pct() {
        let rules = generate_rules(&toy_large(), MinConfidence::percent(100));
        // 1 ⇒ 3 has confidence 2/2 = 1.0; 2 ⇒ 5 has 3/3 = 1.0; 5 ⇒ 2 too.
        assert!(rules.contains(&s(&[1]), &s(&[3])));
        assert!(rules.contains(&s(&[2]), &s(&[5])));
        assert!(rules.contains(&s(&[5]), &s(&[2])));
        // 3 ⇒ 1 has confidence 2/3 — excluded.
        assert!(!rules.contains(&s(&[3]), &s(&[1])));
        // {3,5} ⇒ 2 has confidence 2/2 = 1.0.
        assert!(rules.contains(&s(&[3, 5]), &s(&[2])));
    }

    #[test]
    fn matches_naive_reference() {
        let large = toy_large();
        for pct in [30, 50, 66, 80, 100] {
            let c = MinConfidence::percent(pct);
            let fast = generate_rules(&large, c);
            let naive = generate_rules_naive(&large, c);
            assert_eq!(
                fast.rules(),
                naive.rules(),
                "confidence {pct}%: fast {} vs naive {}",
                fast.len(),
                naive.len()
            );
        }
    }

    #[test]
    fn matches_naive_on_mined_database() {
        let db = TransactionDb::from_transactions(
            [
                vec![1u32, 2, 3, 4],
                vec![1, 2, 3],
                vec![1, 2],
                vec![2, 3, 4],
                vec![1, 3, 4],
                vec![2, 4],
                vec![1, 2, 4],
            ]
            .into_iter()
            .map(Transaction::from_items),
        );
        let large = Apriori::new().run(&db, MinSupport::percent(25)).large;
        for pct in [40, 60, 75, 90] {
            let c = MinConfidence::percent(pct);
            assert_eq!(
                generate_rules(&large, c).rules(),
                generate_rules_naive(&large, c).rules(),
                "confidence {pct}%"
            );
        }
    }

    #[test]
    fn rule_accessors() {
        let r = Rule {
            antecedent: s(&[1]),
            consequent: s(&[2]),
            union_count: 3,
            antecedent_count: 4,
        };
        assert!((r.confidence() - 0.75).abs() < 1e-12);
        assert!((r.support_fraction(10) - 0.3).abs() < 1e-12);
        assert_eq!(r.key(), (s(&[1]), s(&[2])));
        assert!(r.to_string().contains("=>"));
    }

    #[test]
    fn zero_counts_are_safe() {
        let r = Rule {
            antecedent: s(&[1]),
            consequent: s(&[2]),
            union_count: 0,
            antecedent_count: 0,
        };
        assert_eq!(r.confidence(), 0.0);
        assert_eq!(r.support_fraction(0), 0.0);
    }

    #[test]
    fn ruleset_minus_diffs_by_identity() {
        let a = RuleSet::from_rules(vec![
            Rule {
                antecedent: s(&[1]),
                consequent: s(&[2]),
                union_count: 5,
                antecedent_count: 6,
            },
            Rule {
                antecedent: s(&[3]),
                consequent: s(&[4]),
                union_count: 5,
                antecedent_count: 5,
            },
        ]);
        let b = RuleSet::from_rules(vec![Rule {
            antecedent: s(&[1]),
            consequent: s(&[2]),
            union_count: 9, // different counts, same identity
            antecedent_count: 9,
        }]);
        let gained = a.minus(&b);
        assert_eq!(gained.len(), 1);
        assert_eq!(gained[0].antecedent, s(&[3]));
        assert!(b.minus(&a).is_empty());
    }

    #[test]
    fn empty_large_set_yields_no_rules() {
        let rules = generate_rules(&LargeItemsets::new(10), MinConfidence::percent(50));
        assert!(rules.is_empty());
        assert_eq!(rules.len(), 0);
    }

    #[test]
    fn only_singleton_itemsets_yield_no_rules() {
        let mut l = LargeItemsets::new(10);
        l.insert(s(&[1]), 5);
        l.insert(s(&[2]), 5);
        assert!(generate_rules(&l, MinConfidence::percent(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "≤ 1")]
    fn confidence_above_one_rejected() {
        let _ = MinConfidence::ratio(3, 2);
    }
}

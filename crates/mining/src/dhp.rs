//! DHP — Direct Hashing and Pruning (Park, Chen & Yu, SIGMOD 1995) — the
//! paper's second, stronger baseline.
//!
//! Two ideas on top of Apriori:
//!
//! 1. **Direct hashing** — while counting items in pass 1, every 2-subset
//!    of every transaction is hashed into a bucket table. A pair can only
//!    be large if its bucket total reaches the support threshold, so `C₂`
//!    (by far the largest candidate pool) shrinks before it is ever
//!    counted. Following the FUP paper's §4.2, hashing is applied to the
//!    size-2 candidates only.
//! 2. **Transaction trimming** — during the pass-`k` count, an item can
//!    belong to a large (k+1)-itemset only if it occurs in at least `k` of
//!    the matched candidates; other items (and transactions left with ≤ k
//!    items) are dropped from the working copy scanned by later passes.

use crate::engine::{self, ChunkedCollector, EngineConfig};
use crate::gen::apriori_gen_flat;
use crate::hashtree::HashTree;
use crate::itemset::{Itemset, ItemsetTable};
use crate::large::LargeItemsets;
use crate::miner::{Miner, MiningOutcome};
use crate::stats::{MiningStats, PassStats};
use crate::support::MinSupport;
use crate::vertical::{self, PassProfile, ResolvedBackend, VerticalIndex};
use fup_tidb::{ItemId, Transaction, TransactionDb, TransactionSource};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration for [`Dhp`].
#[derive(Debug, Clone)]
pub struct DhpConfig {
    /// Buckets in the pass-1 pair hash table. The default follows the FUP
    /// paper's §4.2: "In our implementation of the DHP, a hash table of
    /// size 100 is used, and hashing is only used in the generation of the
    /// size-2 candidate sets." A table this small filters little on large
    /// databases; use [`DhpConfig::with_large_table`] for a
    /// proportionally-sized table as in the original DHP paper.
    pub hash_buckets: usize,
    /// Enable transaction trimming (working-copy reduction) from pass 2 on.
    pub trim: bool,
    /// Stop after this pass. `None` runs to exhaustion.
    pub max_k: Option<usize>,
    /// Counting-engine settings (thread count, chunk size) for every scan.
    pub engine: EngineConfig,
}

impl Default for DhpConfig {
    fn default() -> Self {
        DhpConfig {
            hash_buckets: 100,
            trim: true,
            max_k: None,
            engine: EngineConfig::default(),
        }
    }
}

impl DhpConfig {
    /// A configuration with a large (2²⁰-bucket) hash table, matching the
    /// original DHP paper's data-proportional sizing rather than the FUP
    /// paper's size-100 policy.
    pub fn with_large_table() -> Self {
        DhpConfig {
            hash_buckets: 1 << 20,
            ..DhpConfig::default()
        }
    }
}

/// The DHP miner.
#[derive(Debug, Clone, Default)]
pub struct Dhp {
    config: DhpConfig,
}

/// Deterministic pair-bucket hash (order-sensitive inputs must be given as
/// `x < y`).
use engine::pair_bucket;

impl Dhp {
    /// Creates a miner with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: DhpConfig) -> Self {
        Dhp { config }
    }

    /// Runs DHP over `source`.
    pub fn run(&self, source: &dyn TransactionSource, minsup: MinSupport) -> MiningOutcome {
        let start = Instant::now();
        let n = source.num_transactions();
        let threshold = minsup.required_count(n);
        let mut large = LargeItemsets::new(n);
        let mut stats = MiningStats::new("dhp");

        // ---- Pass 1: count items AND hash all pairs into buckets, in
        // one engine pass (per-worker tables summed afterwards). ----
        let nbuckets = self.config.hash_buckets.max(1);
        let (item_counts, buckets) =
            engine::count_items_and_pairs(source, nbuckets, &self.config.engine);

        let mut distinct_items = 0u64;
        let mut level_rows: Vec<ItemId> = Vec::new();
        let mut freq_occurrences = 0u64;
        for (i, &count) in item_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            distinct_items += 1;
            if minsup.is_large(count, n) {
                let item = ItemId(i as u32);
                large.insert(Itemset::single(item), count);
                level_rows.push(item);
                freq_occurrences += count;
            }
        }
        stats.passes.push(PassStats {
            k: 1,
            candidates_generated: distinct_items,
            candidates_checked: distinct_items,
            large_found: level_rows.len() as u64,
        });
        let residue = freq_occurrences as f64 / n.max(1) as f64;
        let keep = vertical::item_bitmap(level_rows.iter().copied());
        let mut level = ItemsetTable::from_flat_rows(1, level_rows);

        // ---- Pass 2: C₂ = apriori-gen(L₁) filtered by bucket counts. ----
        let mut working: Option<TransactionDb> = None;
        let mut index: Option<VerticalIndex> = None;
        let mut k = 2;
        while !level.is_empty() && self.config.max_k.is_none_or(|m| k <= m) {
            let mut candidates = apriori_gen_flat(&level, &self.config.engine.gen);
            let generated = candidates.len() as u64;
            if k == 2 {
                candidates
                    .retain_rows(|row| buckets[pair_bucket(row[0], row[1], nbuckets)] >= threshold);
            }
            let checked = candidates.len() as u64;
            if candidates.is_empty() {
                stats.passes.push(PassStats {
                    k,
                    candidates_generated: generated,
                    candidates_checked: 0,
                    large_found: 0,
                });
                break;
            }

            // Backend choice (sticky once vertical). The vertical index
            // is built over the *original* source — it holds exact
            // supports, so trimming has nothing left to save and the
            // working copy is simply not consulted from then on.
            let use_vertical = index.is_some()
                || self.config.engine.backend.resolve(&PassProfile {
                    k,
                    candidates: candidates.len(),
                    transactions: n,
                    residue,
                }) == ResolvedBackend::Vertical;
            let counts: Vec<u64> = if use_vertical {
                let idx = index.get_or_insert_with(|| {
                    VerticalIndex::build(source, Some(&keep), &self.config.engine)
                });
                // The trimmed working copy is never consulted again.
                working = None;
                idx.count_rows(&candidates, &self.config.engine)
            } else {
                let mut tree = HashTree::build_from_rows(candidates.k(), candidates.flat_items());
                let src: &dyn TransactionSource = match &working {
                    Some(w) => w,
                    None => source,
                };
                // Count (and optionally trim) through the engine:
                // per-worker tree scratches merge into the tree, per-chunk
                // kept transactions concatenate in chunk order so the
                // working copy is deterministic regardless of scheduling.
                let trim = self.config.trim;
                let view = tree.view();
                let folds = engine::scan_fold(
                    src,
                    &self.config.engine,
                    || (tree.new_scratch(), ChunkedCollector::new()),
                    |(scratch, kept), chunk, t| {
                        if !trim {
                            view.count(t, scratch);
                            return;
                        }
                        let mut item_hits: HashMap<ItemId, usize> = HashMap::new();
                        let mut matched: Vec<usize> = Vec::new();
                        view.count_with(t, scratch, &mut |idx| matched.push(idx));
                        for idx in matched {
                            for &item in view.candidate(idx) {
                                *item_hits.entry(item).or_insert(0) += 1;
                            }
                        }
                        let kept_items: Vec<ItemId> = t
                            .iter()
                            .copied()
                            .filter(|i| item_hits.get(i).copied().unwrap_or(0) >= k)
                            .collect();
                        if kept_items.len() > k {
                            kept.push(chunk, Transaction::from_sorted_vec(kept_items));
                        }
                    },
                );
                let mut collectors = Vec::with_capacity(folds.len());
                for (scratch, kept) in folds {
                    tree.absorb(scratch);
                    collectors.push(kept);
                }
                if trim {
                    working = Some(TransactionDb::from_transactions(ChunkedCollector::merge(
                        collectors,
                    )));
                }
                tree.into_counts()
            };

            let mut next_rows: Vec<ItemId> = Vec::new();
            let mut found = 0u64;
            for (i, &count) in counts.iter().enumerate() {
                if minsup.is_large(count, n) {
                    large.insert(candidates.row_itemset(i), count);
                    next_rows.extend_from_slice(candidates.row(i));
                    found += 1;
                }
            }
            level = ItemsetTable::from_flat_rows(k, next_rows);
            stats.passes.push(PassStats {
                k,
                candidates_generated: generated,
                candidates_checked: checked,
                large_found: found,
            });
            k += 1;
        }

        stats.elapsed = start.elapsed();
        MiningOutcome { large, stats }
    }
}

impl Miner for Dhp {
    fn name(&self) -> &'static str {
        "dhp"
    }

    fn mine(&self, source: &dyn TransactionSource, minsup: MinSupport) -> MiningOutcome {
        self.run(source, minsup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{mine_naive, Apriori};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn agrees_with_apriori_on_textbook_example() {
        let d = db(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]]);
        let minsup = MinSupport::percent(50);
        let dhp = Dhp::new().run(&d, minsup).large;
        let apriori = Apriori::new().run(&d, minsup).large;
        assert!(dhp.same_itemsets(&apriori), "{:?}", dhp.diff(&apriori));
    }

    #[test]
    fn agrees_with_naive_across_supports() {
        let d = db(&[
            &[1, 2, 3, 4],
            &[1, 2, 3],
            &[1, 2],
            &[2, 3, 4],
            &[1, 3, 4],
            &[2, 4],
            &[1, 2, 4],
            &[5],
        ]);
        for pct in [10, 20, 30, 50, 75] {
            let minsup = MinSupport::percent(pct);
            let dhp = Dhp::new().run(&d, minsup).large;
            let naive = mine_naive(&d, minsup);
            assert!(
                dhp.same_itemsets(&naive),
                "minsup {pct}%: {:?}",
                dhp.diff(&naive)
            );
        }
    }

    #[test]
    fn trimming_does_not_change_results() {
        let d = db(&[
            &[1, 2, 3, 4, 5],
            &[1, 2, 3, 4],
            &[1, 2, 3],
            &[2, 3, 4, 5],
            &[1, 3, 4, 5],
            &[1, 2, 4, 5],
        ]);
        let minsup = MinSupport::percent(50);
        let trimmed = Dhp::with_config(DhpConfig {
            trim: true,
            ..DhpConfig::default()
        })
        .run(&d, minsup)
        .large;
        let untrimmed = Dhp::with_config(DhpConfig {
            trim: false,
            ..DhpConfig::default()
        })
        .run(&d, minsup)
        .large;
        assert!(
            trimmed.same_itemsets(&untrimmed),
            "{:?}",
            trimmed.diff(&untrimmed)
        );
    }

    #[test]
    fn bucket_filter_reduces_c2() {
        // Many distinct singleton-frequent items whose pairs are all rare:
        // with ample buckets, C2 shrinks below apriori-gen's output.
        let rows: Vec<Vec<u32>> = (0..40u32)
            .map(|i| vec![i % 8, 10 + (i % 5), 20 + (i % 4)])
            .collect();
        let d = TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        );
        let minsup = MinSupport::percent(20);
        let out = Dhp::with_config(DhpConfig::with_large_table()).run(&d, minsup);
        let p2 = &out.stats.passes[1];
        assert!(p2.candidates_checked < p2.candidates_generated);
        // Still correct.
        let naive = mine_naive(&d, minsup);
        assert!(out.large.same_itemsets(&naive));
    }

    #[test]
    fn tiny_bucket_table_is_correct_but_weak() {
        // One bucket: everything collides, no filtering, still correct.
        let d = db(&[&[1, 2, 3], &[1, 2, 3], &[1, 2], &[3, 4]]);
        let minsup = MinSupport::percent(50);
        let out = Dhp::with_config(DhpConfig {
            hash_buckets: 1,
            ..DhpConfig::default()
        })
        .run(&d, minsup);
        let naive = mine_naive(&d, minsup);
        assert!(
            out.large.same_itemsets(&naive),
            "{:?}",
            out.large.diff(&naive)
        );
        let p2 = &out.stats.passes[1];
        assert_eq!(p2.candidates_generated, p2.candidates_checked);
    }

    #[test]
    fn empty_database() {
        let d = db(&[]);
        let out = Dhp::new().run(&d, MinSupport::percent(10));
        assert!(out.large.is_empty());
    }

    #[test]
    fn deep_itemsets_survive_trimming() {
        // A 5-itemset supported by every transaction.
        let d = db(&[
            &[1, 2, 3, 4, 5],
            &[1, 2, 3, 4, 5, 9],
            &[1, 2, 3, 4, 5, 8],
            &[1, 2, 3, 4, 5, 7],
        ]);
        let out = Dhp::new().run(&d, MinSupport::percent(100));
        assert_eq!(out.large.support(&s(&[1, 2, 3, 4, 5])), Some(4));
        assert_eq!(out.large.max_size(), 5);
    }

    #[test]
    fn every_backend_mines_identical_itemsets() {
        use crate::vertical::CountingBackend;
        let d = db(&[
            &[1, 2, 3, 4, 5],
            &[1, 2, 3, 4],
            &[1, 2, 3],
            &[2, 3, 4, 5],
            &[1, 3, 4, 5],
            &[1, 2, 4, 5],
            &[6, 7],
        ]);
        for pct in [25, 50] {
            let minsup = MinSupport::percent(pct);
            let reference = Dhp::new().run(&d, minsup).large;
            for backend in [CountingBackend::Vertical, CountingBackend::Auto] {
                for trim in [true, false] {
                    let out = Dhp::with_config(DhpConfig {
                        trim,
                        engine: EngineConfig::default().with_backend(backend),
                        ..DhpConfig::default()
                    })
                    .run(&d, minsup)
                    .large;
                    assert!(
                        out.same_itemsets(&reference),
                        "{backend:?} trim {trim} at {pct}%: {:?}",
                        out.diff(&reference)
                    );
                }
            }
        }
    }

    #[test]
    fn max_k_truncates() {
        let d = db(&[&[1, 2, 3], &[1, 2, 3]]);
        let out = Dhp::with_config(DhpConfig {
            max_k: Some(1),
            ..DhpConfig::default()
        })
        .run(&d, MinSupport::percent(100));
        assert_eq!(out.large.max_size(), 1);
    }
}

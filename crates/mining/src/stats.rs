//! Per-pass mining statistics.
//!
//! The paper's headline comparisons are *counts*, not just times: Figure 3
//! plots the ratio of candidate-set counts between FUP and DHP/Apriori.
//! Every miner therefore records, per pass, how many candidates it
//! generated and how many it actually counted against the (large) database.

use std::time::Duration;

/// Statistics for one pass (iteration) of a miner.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Itemset size handled by this pass.
    pub k: usize,
    /// Candidates generated before any pruning (`|C_k|` as produced by
    /// `apriori-gen`, or the number of distinct items for pass 1).
    pub candidates_generated: u64,
    /// Candidates whose support was counted against the *original/full*
    /// database — the expensive scan the paper's Figure 3 counts. For FUP
    /// this is `|C_k|` after the increment-support pruning of Lemmas 2/5.
    pub candidates_checked: u64,
    /// Large itemsets produced by this pass (`|L_k|` or `|L'_k|`).
    pub large_found: u64,
}

/// Aggregate statistics for one mining / maintenance run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiningStats {
    /// Algorithm name ("apriori", "dhp", "fup", "fup2").
    pub algorithm: &'static str,
    /// One entry per pass, in pass order.
    pub passes: Vec<PassStats>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MiningStats {
    /// Creates empty stats for `algorithm`.
    pub fn new(algorithm: &'static str) -> Self {
        MiningStats {
            algorithm,
            passes: Vec::new(),
            elapsed: Duration::ZERO,
        }
    }

    /// Number of passes run.
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Sum of candidates generated across passes.
    pub fn total_candidates_generated(&self) -> u64 {
        self.passes.iter().map(|p| p.candidates_generated).sum()
    }

    /// Sum of candidates counted against the original/full database across
    /// passes — the Figure 3 quantity.
    pub fn total_candidates_checked(&self) -> u64 {
        self.passes.iter().map(|p| p.candidates_checked).sum()
    }

    /// Sum of large itemsets found across passes.
    pub fn total_large(&self) -> u64 {
        self.passes.iter().map(|p| p.large_found).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_passes() {
        let mut s = MiningStats::new("apriori");
        s.passes.push(PassStats {
            k: 1,
            candidates_generated: 1000,
            candidates_checked: 1000,
            large_found: 400,
        });
        s.passes.push(PassStats {
            k: 2,
            candidates_generated: 500,
            candidates_checked: 120,
            large_found: 60,
        });
        assert_eq!(s.num_passes(), 2);
        assert_eq!(s.total_candidates_generated(), 1500);
        assert_eq!(s.total_candidates_checked(), 1120);
        assert_eq!(s.total_large(), 460);
        assert_eq!(s.algorithm, "apriori");
    }

    #[test]
    fn empty_stats() {
        let s = MiningStats::new("fup");
        assert_eq!(s.num_passes(), 0);
        assert_eq!(s.total_candidates_checked(), 0);
        assert_eq!(s.elapsed, Duration::ZERO);
    }
}

//! # fup-mining — association-rule mining foundation
//!
//! Everything the FUP paper *builds on*: the classic two-step decomposition
//! of association-rule mining (find all large itemsets, then derive rules),
//! the Apriori and DHP algorithms it benchmarks against, and the shared
//! machinery all three algorithms (including FUP in `fup-core`) use:
//!
//! * [`Itemset`] — an immutable, sorted set of items, and
//!   [`ItemsetTable`] — a whole level stored flat (k-strided arena with a
//!   prefix run index),
//! * [`MinSupport`] — exact rational support thresholds (`s × (D + d)`
//!   comparisons never go through floating point),
//! * [`HashTree`] — the Agrawal–Srikant candidate hash tree implementing
//!   `Subset(C, T)`, with SoA leaf arenas,
//! * [`apriori_gen`](gen::apriori_gen) — candidate generation (join +
//!   subset-prune) over the flat table, parallelised per [`GenConfig`],
//! * [`counting`] — support-counting passes over any
//!   [`TransactionSource`](fup_tidb::TransactionSource),
//! * [`engine`] — the parallel chunked counting engine those passes run
//!   on ([`EngineConfig`] picks the worker count; `threads = 1` is the
//!   exact historical serial path),
//! * [`vertical`] — the vertical tid-list counting backend: one scan
//!   materialises per-item tid-lists ([`VerticalIndex`], dense bitset or
//!   sorted run per item by density), after which every pass is pure
//!   list intersection with per-run prefix reuse,
//! * [`apriori`] / [`dhp`] — the two baseline miners of the paper's §4,
//! * [`rules`] — `ap-genrules` rule derivation with confidence thresholds,
//! * [`stats`] — per-pass candidate/large counts and scan accounting, the
//!   raw material of the paper's Figures 2–4.
//!
//! ## Counting backends
//!
//! Every miner (Apriori, DHP here; FUP and FUP2 in `fup-core`) counts its
//! passes through the [`CountingBackend`] named in
//! [`EngineConfig::backend`]:
//!
//! * [`CountingBackend::HashTree`] — the classic one-scan-per-pass
//!   subset counting; paper-faithful scan accounting.
//! * [`CountingBackend::Vertical`] — tid-list intersections from the
//!   first candidate pass on; one scan per source total.
//! * [`CountingBackend::Auto`] (default) — per-pass choice: it flips to
//!   the vertical index once a pass would count at least
//!   [`vertical::AUTO_MIN_CANDIDATES`] candidates over at least
//!   [`vertical::AUTO_MIN_TRANSACTIONS`] transactions with an average
//!   frequent-item residue of [`vertical::AUTO_MIN_RESIDUE`] or more —
//!   thresholds measured with `bench_vertical` on the T10.I4 workload —
//!   and stays vertical for the rest of the run (the index is already
//!   paid for, and deep passes are where intersections win most).
//!
//! All backends produce bit-identical [`LargeItemsets`]; only the scan
//! schedule differs. `EngineConfig::serial()` pins `HashTree` to keep
//! its exact-historical-behaviour contract.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apriori;
pub mod counting;
pub mod dhp;
pub mod engine;
pub mod gen;
pub mod hashtree;
pub mod itemset;
pub mod large;
pub mod miner;
pub mod rules;
pub mod stats;
pub mod support;
pub mod vertical;

pub use apriori::Apriori;
pub use dhp::Dhp;
pub use engine::EngineConfig;
pub use gen::GenConfig;
pub use hashtree::{CountScratch, HashTree, TreeView};
pub use itemset::{Itemset, ItemsetTable};
pub use large::LargeItemsets;
pub use miner::{Miner, MiningOutcome};
pub use rules::{MinConfidence, Rule, RuleSet};
pub use stats::{MiningStats, PassStats};
pub use support::MinSupport;
pub use vertical::{CountingBackend, PassProfile, ResolvedBackend, VerticalIndex};

//! The candidate hash tree of Agrawal & Srikant, implementing the paper's
//! `Subset(C, T)` primitive.
//!
//! All three miners (Apriori, DHP, FUP) spend their time answering the same
//! question per transaction: *which candidate k-itemsets are contained in
//! `T`?* The hash tree stores candidates in leaves reached by hashing
//! successive transaction items, so a pass touches only candidates whose
//! leading items actually occur in `T`.
//!
//! Structure: interior nodes at depth `d` hash on the `(d+1)`-th consumed
//! item; leaves hold candidate indices and overflow into interior nodes once
//! they exceed a split threshold (unless depth already equals `k`). Because
//! different consumed prefixes can hash to the same leaf, leaves re-verify
//! containment against the full transaction; a per-candidate `last_seen`
//! transaction sequence number prevents double counting.

use crate::itemset::Itemset;
use fup_tidb::transaction::contains_sorted;
use fup_tidb::{ItemId, TransactionSource};

/// Children per interior node.
const FANOUT: usize = 32;
/// A leaf splits when it exceeds this many candidates (and depth < k).
const SPLIT_THRESHOLD: usize = 8;
/// Sentinel for an absent child.
const NO_CHILD: u32 = u32::MAX;

#[derive(Debug)]
enum Node {
    /// Candidate indices stored at this leaf.
    Leaf(Vec<u32>),
    /// Child node ids, `NO_CHILD` where absent.
    Interior(Box<[u32; FANOUT]>),
}

/// A hash tree over a set of k-itemset candidates, accumulating support
/// counts as transactions are added.
#[derive(Debug)]
pub struct HashTree {
    k: usize,
    itemsets: Vec<Itemset>,
    counts: Vec<u64>,
    last_seen: Vec<u64>,
    seq: u64,
    nodes: Vec<Node>,
}

#[inline]
fn bucket(item: ItemId) -> usize {
    (item.raw() as usize) % FANOUT
}

impl HashTree {
    /// Builds a hash tree over `candidates`, which must all have the same
    /// size `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if candidates have mixed sizes or an empty itemset appears.
    pub fn build(candidates: Vec<Itemset>) -> Self {
        let k = candidates.first().map(Itemset::k).unwrap_or(1);
        assert!(k >= 1, "candidates must be non-empty itemsets");
        for c in &candidates {
            assert_eq!(c.k(), k, "all candidates must share one size");
        }
        let n = candidates.len();
        let mut tree = HashTree {
            k,
            itemsets: candidates,
            counts: vec![0; n],
            last_seen: vec![0; n],
            seq: 0,
            nodes: vec![Node::Leaf(Vec::new())],
        };
        for idx in 0..n as u32 {
            tree.insert(idx);
        }
        tree
    }

    fn insert(&mut self, idx: u32) {
        let mut node = 0u32;
        let mut depth = 0usize;
        loop {
            match &mut self.nodes[node as usize] {
                Node::Interior(children) => {
                    let item = self.itemsets[idx as usize].items()[depth];
                    let b = bucket(item);
                    if children[b] == NO_CHILD {
                        let new_id = self.nodes.len() as u32;
                        // Re-borrow after push: take the bucket decision now.
                        match &mut self.nodes[node as usize] {
                            Node::Interior(ch) => ch[b] = new_id,
                            Node::Leaf(_) => unreachable!(),
                        }
                        self.nodes.push(Node::Leaf(Vec::new()));
                        node = new_id;
                    } else {
                        node = children[b];
                    }
                    depth += 1;
                }
                Node::Leaf(ids) => {
                    ids.push(idx);
                    if ids.len() > SPLIT_THRESHOLD && depth < self.k {
                        self.split(node, depth);
                    }
                    return;
                }
            }
        }
    }

    /// Converts the leaf `node` (at `depth` items consumed) into an
    /// interior node, redistributing its candidates one level down.
    fn split(&mut self, node: u32, depth: usize) {
        let ids = match std::mem::replace(
            &mut self.nodes[node as usize],
            Node::Interior(Box::new([NO_CHILD; FANOUT])),
        ) {
            Node::Leaf(ids) => ids,
            Node::Interior(_) => unreachable!("split target must be a leaf"),
        };
        for idx in ids {
            let item = self.itemsets[idx as usize].items()[depth];
            let b = bucket(item);
            let child = match &self.nodes[node as usize] {
                Node::Interior(ch) => ch[b],
                Node::Leaf(_) => unreachable!(),
            };
            let child = if child == NO_CHILD {
                let new_id = self.nodes.len() as u32;
                match &mut self.nodes[node as usize] {
                    Node::Interior(ch) => ch[b] = new_id,
                    Node::Leaf(_) => unreachable!(),
                }
                self.nodes.push(Node::Leaf(Vec::new()));
                new_id
            } else {
                child
            };
            match &mut self.nodes[child as usize] {
                Node::Leaf(v) => v.push(idx),
                // Children of a fresh split are always leaves.
                Node::Interior(_) => unreachable!(),
            }
        }
    }

    /// Number of candidates in the tree.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// `true` if the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// The candidate size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Counts every candidate contained in the (sorted) transaction.
    pub fn add_transaction(&mut self, t: &[ItemId]) {
        if t.len() < self.k || self.itemsets.is_empty() {
            return;
        }
        self.seq += 1;
        walk(
            &self.nodes,
            &self.itemsets,
            &mut self.counts,
            &mut self.last_seen,
            self.seq,
            0,
            t,
            0,
            0,
            self.k,
        );
    }

    /// Runs one full pass over `source`, adding every transaction.
    pub fn count_source<S: TransactionSource + ?Sized>(&mut self, source: &S) {
        source.for_each(&mut |t| self.add_transaction(t));
    }

    /// Like [`HashTree::add_transaction`], but additionally reports, via
    /// `on_match(candidate_index)`, each candidate contained in `t`.
    /// FUP's `Reduce-db` uses the per-item match counts this enables.
    pub fn add_transaction_with(&mut self, t: &[ItemId], on_match: &mut dyn FnMut(usize)) {
        if t.len() < self.k || self.itemsets.is_empty() {
            return;
        }
        self.seq += 1;
        walk_with(
            &self.nodes,
            &self.itemsets,
            &mut self.counts,
            &mut self.last_seen,
            self.seq,
            0,
            t,
            0,
            0,
            self.k,
            on_match,
        );
    }

    /// The candidates, in build order (indices match [`HashTree::counts`]).
    pub fn itemsets(&self) -> &[Itemset] {
        &self.itemsets
    }

    /// Current support counts, parallel to [`HashTree::itemsets`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Consumes the tree, yielding `(candidate, count)` pairs.
    pub fn into_results(self) -> Vec<(Itemset, u64)> {
        self.itemsets.into_iter().zip(self.counts).collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    nodes: &[Node],
    itemsets: &[Itemset],
    counts: &mut [u64],
    last_seen: &mut [u64],
    seq: u64,
    node: u32,
    t: &[ItemId],
    start: usize,
    depth: usize,
    k: usize,
) {
    match &nodes[node as usize] {
        Node::Leaf(ids) => {
            for &idx in ids {
                let i = idx as usize;
                if last_seen[i] != seq && contains_sorted(t, itemsets[i].items()) {
                    last_seen[i] = seq;
                    counts[i] += 1;
                }
            }
        }
        Node::Interior(children) => {
            // Need (k - depth) more items; stop early when too few remain.
            let remaining = k - depth;
            if t.len() < start + remaining {
                return;
            }
            let last = t.len() - remaining;
            for i in start..=last {
                let child = children[bucket(t[i])];
                if child != NO_CHILD {
                    walk(
                        nodes, itemsets, counts, last_seen, seq, child, t,
                        i + 1,
                        depth + 1,
                        k,
                    );
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_with(
    nodes: &[Node],
    itemsets: &[Itemset],
    counts: &mut [u64],
    last_seen: &mut [u64],
    seq: u64,
    node: u32,
    t: &[ItemId],
    start: usize,
    depth: usize,
    k: usize,
    on_match: &mut dyn FnMut(usize),
) {
    match &nodes[node as usize] {
        Node::Leaf(ids) => {
            for &idx in ids {
                let i = idx as usize;
                if last_seen[i] != seq && contains_sorted(t, itemsets[i].items()) {
                    last_seen[i] = seq;
                    counts[i] += 1;
                    on_match(i);
                }
            }
        }
        Node::Interior(children) => {
            let remaining = k - depth;
            if t.len() < start + remaining {
                return;
            }
            let last = t.len() - remaining;
            for i in start..=last {
                let child = children[bucket(t[i])];
                if child != NO_CHILD {
                    walk_with(
                        nodes, itemsets, counts, last_seen, seq, child, t,
                        i + 1,
                        depth + 1,
                        k,
                        on_match,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_tidb::{Transaction, TransactionDb};

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn tx(items: &[u32]) -> Vec<ItemId> {
        Transaction::from_items(items.iter().copied())
            .items()
            .to_vec()
    }

    /// Reference implementation: count by direct containment.
    fn naive_counts(candidates: &[Itemset], transactions: &[Vec<ItemId>]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| {
                transactions
                    .iter()
                    .filter(|t| contains_sorted(t, c.items()))
                    .count() as u64
            })
            .collect()
    }

    #[test]
    fn counts_simple_pairs() {
        let cands = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3])];
        let mut tree = HashTree::build(cands.clone());
        let txns = vec![tx(&[1, 2, 3]), tx(&[1, 2]), tx(&[3])];
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
        assert_eq!(tree.counts(), &[2, 1, 1]);
    }

    #[test]
    fn no_double_count_on_hash_collisions() {
        // Items 1 and 33 collide mod 32; candidate {1,33} must count once
        // per containing transaction even though two paths reach its leaf.
        let cands = vec![s(&[1, 33])];
        let mut tree = HashTree::build(cands);
        tree.add_transaction(&tx(&[1, 33, 65]));
        assert_eq!(tree.counts(), &[1]);
    }

    #[test]
    fn transactions_shorter_than_k_are_skipped() {
        let mut tree = HashTree::build(vec![s(&[1, 2, 3])]);
        tree.add_transaction(&tx(&[1, 2]));
        assert_eq!(tree.counts(), &[0]);
    }

    #[test]
    fn empty_candidate_set() {
        let mut tree = HashTree::build(Vec::new());
        assert!(tree.is_empty());
        tree.add_transaction(&tx(&[1, 2, 3]));
        assert!(tree.counts().is_empty());
    }

    #[test]
    fn splitting_leaves_preserves_counts() {
        // More than SPLIT_THRESHOLD candidates sharing a first item force
        // splits at depth 1 and 2.
        let cands: Vec<Itemset> = (2..30).map(|i| s(&[1, i])).collect();
        let mut tree = HashTree::build(cands.clone());
        let txns: Vec<Vec<ItemId>> = (0..50)
            .map(|j| tx(&[1, 2 + (j % 28), 40 + j]))
            .collect();
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
    }

    #[test]
    fn matches_naive_on_mixed_workload() {
        // 3-itemsets over a small alphabet, transactions of varying length.
        let mut cands = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    cands.push(s(&[a, b, c]));
                }
            }
        }
        let mut tree = HashTree::build(cands.clone());
        let txns: Vec<Vec<ItemId>> = vec![
            tx(&[0, 1, 2, 3, 4, 5]),
            tx(&[0, 2, 4]),
            tx(&[1, 3, 5]),
            tx(&[0, 1]),
            tx(&[]),
            tx(&[2, 3, 4, 5]),
        ];
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
    }

    #[test]
    fn k1_trees_work() {
        let cands = vec![s(&[1]), s(&[2]), s(&[40])];
        let mut tree = HashTree::build(cands);
        assert_eq!(tree.k(), 1);
        tree.add_transaction(&tx(&[1, 40]));
        tree.add_transaction(&tx(&[2]));
        assert_eq!(tree.counts(), &[1, 1, 1]);
    }

    #[test]
    fn count_source_runs_full_pass() {
        let db = TransactionDb::from_transactions(vec![
            Transaction::from_items([1u32, 2]),
            Transaction::from_items([1u32, 2, 3]),
        ]);
        let mut tree = HashTree::build(vec![s(&[1, 2])]);
        tree.count_source(&db);
        assert_eq!(tree.counts(), &[2]);
        assert_eq!(db.metrics().full_scans(), 1);
    }

    #[test]
    fn add_transaction_with_reports_matches() {
        let mut tree = HashTree::build(vec![s(&[1, 2]), s(&[2, 3])]);
        let mut matched = Vec::new();
        tree.add_transaction_with(&tx(&[1, 2, 3]), &mut |i| matched.push(i));
        matched.sort_unstable();
        assert_eq!(matched, vec![0, 1]);
    }

    #[test]
    fn into_results_pairs_candidates_with_counts() {
        let mut tree = HashTree::build(vec![s(&[7, 9])]);
        tree.add_transaction(&tx(&[7, 8, 9]));
        let results = tree.into_results();
        assert_eq!(results, vec![(s(&[7, 9]), 1)]);
    }

    #[test]
    #[should_panic(expected = "share one size")]
    fn mixed_sizes_rejected() {
        let _ = HashTree::build(vec![s(&[1]), s(&[1, 2])]);
    }
}

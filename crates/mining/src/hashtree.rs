//! The candidate hash tree of Agrawal & Srikant, implementing the paper's
//! `Subset(C, T)` primitive.
//!
//! All three miners (Apriori, DHP, FUP) spend their time answering the same
//! question per transaction: *which candidate k-itemsets are contained in
//! `T`?* The hash tree stores candidates in leaves reached by hashing
//! successive transaction items, so a pass touches only candidates whose
//! leading items actually occur in `T`.
//!
//! Structure: interior nodes at depth `d` hash on the `(d+1)`-th consumed
//! item; leaves hold candidate indices and overflow into interior nodes once
//! they exceed a split threshold (unless depth already equals `k`). Because
//! different consumed prefixes can hash to the same leaf, leaves re-verify
//! containment against the full transaction; a per-candidate `last_seen`
//! transaction sequence number prevents double counting.
//!
//! ## Shared shape, private scratch
//!
//! The tree separates its **shape** (nodes, candidate itemsets, first-item
//! presence bitmap — immutable after [`HashTree::build`]) from its
//! **counting state** (support counts, `last_seen`, the walk stack). The
//! shape is exposed as a [`TreeView`], a `Copy + Sync` borrow that any
//! number of scan workers can share; each worker counts into its own
//! [`CountScratch`] and the per-worker counts are merged with
//! [`HashTree::absorb`]. The serial methods ([`HashTree::add_transaction`]
//! et al.) use a scratch embedded in the tree, so single-threaded callers
//! see exactly the classic behaviour.
//!
//! The walk is iterative (explicit stack in the scratch, no recursion), the
//! bucket hash is a power-of-two bitmask, and transactions whose feasible
//! prefix contains no candidate's first item are rejected by a bitmap test
//! before any tree descent.
//!
//! ## SoA leaf arena
//!
//! Leaves do not store per-candidate pointers. After the shape is built,
//! every leaf's candidates are packed into two shared arenas in leaf
//! order: `leaf_items` holds the item data k-strided (row `e` occupies
//! `leaf_items[e*k .. (e+1)*k]`) and the parallel `leaf_ids` holds each
//! row's global candidate index (the count slot). A leaf is just a
//! `(start, len)` range into those arenas, so re-verifying a leaf walks
//! one contiguous block of items instead of chasing one `Box` per
//! candidate, and the next row is software-prefetched while the current
//! one is compared. During descent, a child node's memory is prefetched
//! as soon as its bucket is chosen — it is the next node the LIFO walk
//! visits.

use crate::itemset::{Itemset, ItemsetTable};
use fup_tidb::transaction::contains_sorted;
use fup_tidb::{ItemId, TransactionSource};

/// Best-effort read prefetch; a no-op on architectures without one.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Default children per interior node. Must be a power of two so bucket
/// selection is a bitmask; 32 keeps interior nodes at one cache line of
/// child ids while splitting leaves aggressively enough for the paper's
/// candidate pool sizes.
pub const DEFAULT_FANOUT: usize = 32;

/// Default leaf capacity before a split (when depth < k). Small enough
/// that leaf re-verification stays cheap, large enough that sparse
/// candidate pools don't burst into single-candidate leaves.
pub const DEFAULT_SPLIT_THRESHOLD: usize = 8;

/// Sentinel for an absent child.
const NO_CHILD: u32 = u32::MAX;

/// Build-time node: leaves accumulate candidate indices in a growable
/// vector until the shape is final, then everything is packed into the
/// SoA arenas of [`Node`].
#[derive(Debug)]
enum BuildNode {
    /// Candidate indices stored at this leaf.
    Leaf(Vec<u32>),
    /// Child node ids (`fanout` of them), `NO_CHILD` where absent.
    Interior(Box<[u32]>),
}

/// Finalised node: a leaf is a range into the shared leaf arenas.
#[derive(Debug)]
enum Node {
    /// `len` candidates at arena rows `start..start+len`.
    Leaf { start: u32, len: u32 },
    /// Child node ids (`fanout` of them), `NO_CHILD` where absent.
    Interior(Box<[u32]>),
}

/// A hash tree over a set of k-itemset candidates, accumulating support
/// counts as transactions are added.
///
/// Candidates are stored flat — one k-strided item arena in build order,
/// no per-candidate allocation. [`HashTree::build_from_table`] moves an
/// [`ItemsetTable`]'s arena straight in, so a level generated flat is
/// counted flat end to end; [`HashTree::build`] flattens owned
/// [`Itemset`]s for callers that need arbitrary candidate order (FUP's
/// `W ∪ C` pools).
#[derive(Debug)]
pub struct HashTree {
    k: usize,
    /// `fanout - 1`; bucket selection is `item & mask`.
    mask: usize,
    /// Candidate arena: candidate `i` is `cand_items[i*k .. (i+1)*k]`,
    /// in build order (counts and results are parallel to it).
    cand_items: Vec<ItemId>,
    nodes: Vec<Node>,
    /// Leaf arena, item data: row `e` is `leaf_items[e*k .. (e+1)*k]`,
    /// rows grouped contiguously per leaf.
    leaf_items: Vec<ItemId>,
    /// Leaf arena, count slots: global candidate index of each row,
    /// parallel to `leaf_items`.
    leaf_ids: Vec<u32>,
    /// Bitset over the *first* item of every candidate: a transaction can
    /// only contain some candidate if one of its first `len - k + 1` items
    /// is set here, so misses skip the walk entirely.
    first_bits: Vec<u64>,
    /// Embedded scratch backing the serial `add_transaction` API.
    scratch: CountScratch,
}

#[inline]
fn bit_test(bits: &[u64], item: ItemId) -> bool {
    let i = item.index();
    bits.get(i >> 6)
        .is_some_and(|&word| word & (1u64 << (i & 63)) != 0)
}

#[inline]
fn bit_set(bits: &mut Vec<u64>, item: ItemId) {
    let i = item.index();
    let word = i >> 6;
    if word >= bits.len() {
        bits.resize(word + 1, 0);
    }
    bits[word] |= 1u64 << (i & 63);
}

impl HashTree {
    /// Builds a hash tree over `candidates` with the default
    /// [`DEFAULT_FANOUT`] / [`DEFAULT_SPLIT_THRESHOLD`] tuning. All
    /// candidates must have the same size `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if candidates have mixed sizes or an empty itemset appears.
    pub fn build(candidates: Vec<Itemset>) -> Self {
        Self::build_with_params(candidates, DEFAULT_FANOUT, DEFAULT_SPLIT_THRESHOLD)
    }

    /// Builds a hash tree straight from a flat level table with the
    /// default tuning, moving the table's item arena in — no per-candidate
    /// `Itemset` is ever materialised. Candidate order is the table's row
    /// order.
    pub fn build_from_table(table: ItemsetTable) -> Self {
        let (k, items) = table.into_flat();
        Self::build_flat(k.max(1), items, DEFAULT_FANOUT, DEFAULT_SPLIT_THRESHOLD)
    }

    /// Like [`HashTree::build_from_table`] for callers that keep their
    /// table: copies the row arena once (the tree needs owned storage)
    /// without touching the table's run index.
    pub fn build_from_rows(k: usize, rows: &[ItemId]) -> Self {
        Self::build_flat(
            k.max(1),
            rows.to_vec(),
            DEFAULT_FANOUT,
            DEFAULT_SPLIT_THRESHOLD,
        )
    }

    /// Builds a hash tree with explicit tuning:
    ///
    /// * `fanout` — children per interior node; must be a power of two
    ///   (bucket selection is a single bitmask) and at least 2. Larger
    ///   fanouts shorten descent paths at the cost of sparser nodes.
    /// * `split_threshold` — leaf capacity before it splits into an
    ///   interior node (min 1). Smaller thresholds trade memory for fewer
    ///   containment re-verifications per leaf visit.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is not a power of two ≥ 2, if candidates have
    /// mixed sizes, or if an empty itemset appears.
    pub fn build_with_params(
        candidates: Vec<Itemset>,
        fanout: usize,
        split_threshold: usize,
    ) -> Self {
        let k = candidates.first().map(Itemset::k).unwrap_or(1);
        assert!(k >= 1, "candidates must be non-empty itemsets");
        let mut items = Vec::with_capacity(candidates.len() * k);
        for c in &candidates {
            assert_eq!(c.k(), k, "all candidates must share one size");
            items.extend_from_slice(c.items());
        }
        Self::build_flat(k, items, fanout, split_threshold)
    }

    /// The shared build core over a flat candidate arena (`n * k` items,
    /// candidate `i` at rows `i*k..(i+1)*k`, any order).
    fn build_flat(
        k: usize,
        cand_items: Vec<ItemId>,
        fanout: usize,
        split_threshold: usize,
    ) -> Self {
        assert!(
            fanout.is_power_of_two() && fanout >= 2,
            "fanout must be a power of two ≥ 2"
        );
        debug_assert!(k >= 1 && cand_items.len().is_multiple_of(k));
        let n = cand_items.len() / k;
        let mut first_bits = Vec::new();
        for i in 0..n {
            bit_set(&mut first_bits, cand_items[i * k]);
        }
        let mut builder = TreeBuilder {
            k,
            mask: fanout - 1,
            split_threshold: split_threshold.max(1),
            items: &cand_items,
            nodes: vec![BuildNode::Leaf(Vec::new())],
        };
        for idx in 0..n as u32 {
            builder.insert(idx);
        }
        // Pack every leaf into the shared SoA arenas: item rows k-strided
        // and grouped per leaf, count slots (global candidate indices)
        // parallel to them. Node ids are preserved, so child links stay
        // valid as-is.
        let mut nodes = Vec::with_capacity(builder.nodes.len());
        let mut leaf_ids: Vec<u32> = Vec::new();
        let mut leaf_items: Vec<ItemId> = Vec::new();
        for bn in builder.nodes {
            match bn {
                BuildNode::Leaf(ids) => {
                    let start = leaf_ids.len() as u32;
                    for &idx in &ids {
                        let row = idx as usize * k;
                        leaf_items.extend_from_slice(&cand_items[row..row + k]);
                    }
                    let len = ids.len() as u32;
                    leaf_ids.extend(ids);
                    nodes.push(Node::Leaf { start, len });
                }
                BuildNode::Interior(ch) => nodes.push(Node::Interior(ch)),
            }
        }
        HashTree {
            k,
            mask: fanout - 1,
            cand_items,
            nodes,
            leaf_items,
            leaf_ids,
            first_bits,
            scratch: CountScratch::for_len(n),
        }
    }

    /// Number of candidates in the tree.
    pub fn len(&self) -> usize {
        self.cand_items.len() / self.k.max(1)
    }

    /// `true` if the tree holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.cand_items.is_empty()
    }

    /// The candidate size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The immutable shape of the tree, shareable across scan workers.
    pub fn view(&self) -> TreeView<'_> {
        TreeView {
            k: self.k,
            mask: self.mask,
            cand_items: &self.cand_items,
            nodes: &self.nodes,
            leaf_items: &self.leaf_items,
            leaf_ids: &self.leaf_ids,
            first_bits: &self.first_bits,
        }
    }

    /// Splits the borrow: the immutable shape plus the embedded serial
    /// scratch, so `&mut self` methods can count through the shared walk
    /// code (a plain `self.view()` would lock the scratch too).
    fn view_and_scratch(&mut self) -> (TreeView<'_>, &mut CountScratch) {
        (
            TreeView {
                k: self.k,
                mask: self.mask,
                cand_items: &self.cand_items,
                nodes: &self.nodes,
                leaf_items: &self.leaf_items,
                leaf_ids: &self.leaf_ids,
                first_bits: &self.first_bits,
            },
            &mut self.scratch,
        )
    }

    /// A fresh, zeroed counting scratch sized for this tree. One per scan
    /// worker; merge results back with [`HashTree::absorb`].
    pub fn new_scratch(&self) -> CountScratch {
        CountScratch::for_len(self.len())
    }

    /// Adds a worker's scratch counts into the tree's own counts.
    ///
    /// # Panics
    ///
    /// Panics if the scratch was sized for a different tree.
    pub fn absorb(&mut self, scratch: CountScratch) {
        assert_eq!(
            scratch.counts.len(),
            self.scratch.counts.len(),
            "scratch belongs to a different tree"
        );
        for (total, part) in self.scratch.counts.iter_mut().zip(&scratch.counts) {
            *total += part;
        }
    }

    /// Counts every candidate contained in the (sorted) transaction.
    pub fn add_transaction(&mut self, t: &[ItemId]) {
        let (view, scratch) = self.view_and_scratch();
        view.count(t, scratch);
    }

    /// Like [`HashTree::add_transaction`], but additionally reports, via
    /// `on_match(candidate_index)`, each candidate contained in `t`.
    /// FUP's `Reduce-db` uses the per-item match counts this enables.
    pub fn add_transaction_with<F: FnMut(usize)>(&mut self, t: &[ItemId], on_match: &mut F) {
        let (view, scratch) = self.view_and_scratch();
        view.count_with(t, scratch, on_match);
    }

    /// Runs one full (serial) pass over `source`, adding every transaction.
    /// For a multi-threaded pass, see `fup_mining::engine`.
    pub fn count_source<S: TransactionSource + ?Sized>(&mut self, source: &S) {
        source.for_each(&mut |t| self.add_transaction(t));
    }

    /// Candidate `i`'s sorted item slice, in build order (indices match
    /// [`HashTree::counts`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn candidate(&self, i: usize) -> &[ItemId] {
        &self.cand_items[i * self.k..(i + 1) * self.k]
    }

    /// Current support counts, parallel to the build-order candidates.
    pub fn counts(&self) -> &[u64] {
        &self.scratch.counts
    }

    /// Consumes the tree, yielding the support counts in build order —
    /// the allocation-free form of [`HashTree::into_results`] for callers
    /// that still hold the candidate rows.
    pub fn into_counts(self) -> Vec<u64> {
        self.scratch.counts
    }

    /// Consumes the tree, yielding `(candidate, count)` pairs.
    pub fn into_results(self) -> Vec<(Itemset, u64)> {
        let k = self.k;
        self.cand_items
            .chunks_exact(k)
            .map(|row| Itemset::from_sorted_vec(row.to_vec()))
            .zip(self.scratch.counts)
            .collect()
    }
}

/// Builds the tree shape: leaves grow as `Vec<u32>` of candidate indices
/// and split into interior nodes past the threshold; the finished shape
/// is packed into [`HashTree`]'s SoA arenas by `build_with_params`.
struct TreeBuilder<'a> {
    k: usize,
    mask: usize,
    split_threshold: usize,
    /// Flat candidate arena (k-strided rows, build order).
    items: &'a [ItemId],
    nodes: Vec<BuildNode>,
}

impl TreeBuilder<'_> {
    #[inline]
    fn item_at(&self, idx: u32, depth: usize) -> ItemId {
        self.items[idx as usize * self.k + depth]
    }

    fn insert(&mut self, idx: u32) {
        let mut node = 0u32;
        let mut depth = 0usize;
        loop {
            match &mut self.nodes[node as usize] {
                BuildNode::Interior(children) => {
                    let item = self.items[idx as usize * self.k + depth];
                    let b = (item.raw() as usize) & self.mask;
                    if children[b] == NO_CHILD {
                        let new_id = self.nodes.len() as u32;
                        // Re-borrow after push: take the bucket decision now.
                        match &mut self.nodes[node as usize] {
                            BuildNode::Interior(ch) => ch[b] = new_id,
                            BuildNode::Leaf(_) => unreachable!(),
                        }
                        self.nodes.push(BuildNode::Leaf(Vec::new()));
                        node = new_id;
                    } else {
                        node = children[b];
                    }
                    depth += 1;
                }
                BuildNode::Leaf(ids) => {
                    ids.push(idx);
                    if ids.len() > self.split_threshold && depth < self.k {
                        self.split(node, depth);
                    }
                    return;
                }
            }
        }
    }

    /// Converts the leaf `node` (at `depth` items consumed) into an
    /// interior node, redistributing its candidates one level down.
    fn split(&mut self, node: u32, depth: usize) {
        let interior = BuildNode::Interior(vec![NO_CHILD; self.mask + 1].into_boxed_slice());
        let ids = match std::mem::replace(&mut self.nodes[node as usize], interior) {
            BuildNode::Leaf(ids) => ids,
            BuildNode::Interior(_) => unreachable!("split target must be a leaf"),
        };
        for idx in ids {
            let item = self.item_at(idx, depth);
            let b = (item.raw() as usize) & self.mask;
            let child = match &self.nodes[node as usize] {
                BuildNode::Interior(ch) => ch[b],
                BuildNode::Leaf(_) => unreachable!(),
            };
            let child = if child == NO_CHILD {
                let new_id = self.nodes.len() as u32;
                match &mut self.nodes[node as usize] {
                    BuildNode::Interior(ch) => ch[b] = new_id,
                    BuildNode::Leaf(_) => unreachable!(),
                }
                self.nodes.push(BuildNode::Leaf(Vec::new()));
                new_id
            } else {
                child
            };
            match &mut self.nodes[child as usize] {
                BuildNode::Leaf(v) => v.push(idx),
                // Children of a fresh split are always leaves.
                BuildNode::Interior(_) => unreachable!(),
            }
        }
    }
}

/// The immutable shape of a [`HashTree`]: everything a scan worker needs
/// to count transactions, minus the mutable counting state. `Copy`, and
/// `Sync` because it only borrows immutable tree data — hand one to each
/// worker in a `std::thread::scope`.
#[derive(Clone, Copy)]
pub struct TreeView<'a> {
    k: usize,
    mask: usize,
    /// Flat candidate arena (k-strided rows, build order).
    cand_items: &'a [ItemId],
    nodes: &'a [Node],
    leaf_items: &'a [ItemId],
    leaf_ids: &'a [u32],
    first_bits: &'a [u64],
}

impl<'a> TreeView<'a> {
    /// The candidate size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Candidate `i`'s sorted item slice, in build order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn candidate(&self, i: usize) -> &'a [ItemId] {
        &self.cand_items[i * self.k..(i + 1) * self.k]
    }

    /// Counts every candidate contained in `t` into `scratch`.
    #[inline]
    pub fn count(&self, t: &[ItemId], scratch: &mut CountScratch) {
        self.count_with(t, scratch, &mut |_| {});
    }

    /// Counts candidates contained in `t` into `scratch`, reporting each
    /// matched candidate index. Monomorphized over the callback so match
    /// reporting inlines into the walk.
    pub fn count_with<F: FnMut(usize)>(
        &self,
        t: &[ItemId],
        scratch: &mut CountScratch,
        on_match: &mut F,
    ) {
        if t.len() < self.k || self.cand_items.is_empty() {
            return;
        }
        // First-item prune: a candidate X ⊆ t must place its smallest item
        // within the first `len - k + 1` positions of t, so if none of
        // those items opens any candidate, the walk cannot match.
        let limit = t.len() - self.k;
        if !t[..=limit].iter().any(|&i| bit_test(self.first_bits, i)) {
            return;
        }
        scratch.seq += 1;
        let seq = scratch.seq;
        // Iterative depth-first walk; the explicit stack lives in the
        // scratch so steady-state passes allocate nothing.
        scratch.stack.clear();
        scratch.stack.push(WalkFrame {
            node: 0,
            start: 0,
            depth: 0,
        });
        let k = self.k;
        while let Some(WalkFrame { node, start, depth }) = scratch.stack.pop() {
            match &self.nodes[node as usize] {
                Node::Leaf { start, len } => {
                    let first = *start as usize;
                    let n = *len as usize;
                    let ids = &self.leaf_ids[first..first + n];
                    let rows = &self.leaf_items[first * k..(first + n) * k];
                    for (e, &idx) in ids.iter().enumerate() {
                        // Pull the next row into cache while this one is
                        // re-verified against the transaction.
                        if e + 1 < n {
                            prefetch_read(rows[(e + 1) * k..].as_ptr());
                        }
                        let i = idx as usize;
                        if scratch.last_seen[i] != seq
                            && contains_sorted(t, &rows[e * k..(e + 1) * k])
                        {
                            scratch.last_seen[i] = seq;
                            scratch.counts[i] += 1;
                            on_match(i);
                        }
                    }
                }
                Node::Interior(children) => {
                    // Need (k - depth) more items; stop when too few remain.
                    let remaining = k - depth as usize;
                    let start = start as usize;
                    if t.len() < start + remaining {
                        continue;
                    }
                    let last = t.len() - remaining;
                    for i in start..=last {
                        let child = children[(t[i].raw() as usize) & self.mask];
                        if child != NO_CHILD {
                            // The LIFO stack visits this bucket next (or
                            // soon); start pulling its node in now.
                            prefetch_read(&self.nodes[child as usize] as *const Node);
                            scratch.stack.push(WalkFrame {
                                node: child,
                                start: (i + 1) as u32,
                                depth: depth + 1,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WalkFrame {
    node: u32,
    start: u32,
    depth: u32,
}

/// Per-worker counting state for one [`HashTree`] (or [`TreeView`]):
/// support counts, the `last_seen` de-duplication stamps, and the reusable
/// walk stack. Create with [`HashTree::new_scratch`], count transactions
/// through [`TreeView::count`], and fold back with [`HashTree::absorb`].
#[derive(Debug, Default)]
pub struct CountScratch {
    counts: Vec<u64>,
    last_seen: Vec<u64>,
    seq: u64,
    stack: Vec<WalkFrame>,
}

impl CountScratch {
    fn for_len(n: usize) -> Self {
        CountScratch {
            counts: vec![0; n],
            last_seen: vec![0; n],
            seq: 0,
            stack: Vec::new(),
        }
    }

    /// The accumulated support counts, in candidate build order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_tidb::{Transaction, TransactionDb};

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    fn tx(items: &[u32]) -> Vec<ItemId> {
        Transaction::from_items(items.iter().copied())
            .items()
            .to_vec()
    }

    /// Reference implementation: count by direct containment.
    fn naive_counts(candidates: &[Itemset], transactions: &[Vec<ItemId>]) -> Vec<u64> {
        candidates
            .iter()
            .map(|c| {
                transactions
                    .iter()
                    .filter(|t| contains_sorted(t, c.items()))
                    .count() as u64
            })
            .collect()
    }

    #[test]
    fn counts_simple_pairs() {
        let cands = vec![s(&[1, 2]), s(&[1, 3]), s(&[2, 3])];
        let mut tree = HashTree::build(cands.clone());
        let txns = vec![tx(&[1, 2, 3]), tx(&[1, 2]), tx(&[3])];
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
        assert_eq!(tree.counts(), &[2, 1, 1]);
    }

    #[test]
    fn no_double_count_on_hash_collisions() {
        // Items 1 and 33 collide under the 32-way mask; candidate {1,33}
        // must count once per containing transaction even though two paths
        // reach its leaf.
        let cands = vec![s(&[1, 33])];
        let mut tree = HashTree::build(cands);
        tree.add_transaction(&tx(&[1, 33, 65]));
        assert_eq!(tree.counts(), &[1]);
    }

    #[test]
    fn transactions_shorter_than_k_are_skipped() {
        let mut tree = HashTree::build(vec![s(&[1, 2, 3])]);
        tree.add_transaction(&tx(&[1, 2]));
        assert_eq!(tree.counts(), &[0]);
    }

    #[test]
    fn empty_candidate_set() {
        let mut tree = HashTree::build(Vec::new());
        assert!(tree.is_empty());
        tree.add_transaction(&tx(&[1, 2, 3]));
        assert!(tree.counts().is_empty());
    }

    #[test]
    fn splitting_leaves_preserves_counts() {
        // More than the split threshold of candidates sharing a first item
        // force splits at depth 1 and 2.
        let cands: Vec<Itemset> = (2..30).map(|i| s(&[1, i])).collect();
        let mut tree = HashTree::build(cands.clone());
        let txns: Vec<Vec<ItemId>> = (0..50).map(|j| tx(&[1, 2 + (j % 28), 40 + j])).collect();
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
    }

    #[test]
    fn matches_naive_on_mixed_workload() {
        // 3-itemsets over a small alphabet, transactions of varying length.
        let mut cands = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    cands.push(s(&[a, b, c]));
                }
            }
        }
        let mut tree = HashTree::build(cands.clone());
        let txns: Vec<Vec<ItemId>> = vec![
            tx(&[0, 1, 2, 3, 4, 5]),
            tx(&[0, 2, 4]),
            tx(&[1, 3, 5]),
            tx(&[0, 1]),
            tx(&[]),
            tx(&[2, 3, 4, 5]),
        ];
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
    }

    #[test]
    fn k1_trees_work() {
        let cands = vec![s(&[1]), s(&[2]), s(&[40])];
        let mut tree = HashTree::build(cands);
        assert_eq!(tree.k(), 1);
        tree.add_transaction(&tx(&[1, 40]));
        tree.add_transaction(&tx(&[2]));
        assert_eq!(tree.counts(), &[1, 1, 1]);
    }

    #[test]
    fn count_source_runs_full_pass() {
        let db = TransactionDb::from_transactions(vec![
            Transaction::from_items([1u32, 2]),
            Transaction::from_items([1u32, 2, 3]),
        ]);
        let mut tree = HashTree::build(vec![s(&[1, 2])]);
        tree.count_source(&db);
        assert_eq!(tree.counts(), &[2]);
        assert_eq!(db.metrics().full_scans(), 1);
    }

    #[test]
    fn add_transaction_with_reports_matches() {
        let mut tree = HashTree::build(vec![s(&[1, 2]), s(&[2, 3])]);
        let mut matched = Vec::new();
        tree.add_transaction_with(&tx(&[1, 2, 3]), &mut |i| matched.push(i));
        matched.sort_unstable();
        assert_eq!(matched, vec![0, 1]);
    }

    #[test]
    fn into_results_pairs_candidates_with_counts() {
        let mut tree = HashTree::build(vec![s(&[7, 9])]);
        tree.add_transaction(&tx(&[7, 8, 9]));
        let results = tree.into_results();
        assert_eq!(results, vec![(s(&[7, 9]), 1)]);
    }

    #[test]
    #[should_panic(expected = "share one size")]
    fn mixed_sizes_rejected() {
        let _ = HashTree::build(vec![s(&[1]), s(&[1, 2])]);
    }

    #[test]
    fn view_and_scratch_match_serial_counts() {
        let cands: Vec<Itemset> = (0..12u32).map(|i| s(&[i % 5, 5 + i])).collect();
        let txns: Vec<Vec<ItemId>> = (0..40)
            .map(|j| tx(&[j % 5, 5 + (j % 12), 5 + ((j + 3) % 12), 30 + j]))
            .collect();
        let mut serial = HashTree::build(cands.clone());
        for t in &txns {
            serial.add_transaction(t);
        }
        // Two workers splitting the pass, merged at the end.
        let mut parallel = HashTree::build(cands);
        let (mut s1, mut s2) = (parallel.new_scratch(), parallel.new_scratch());
        let view = parallel.view();
        for (j, t) in txns.iter().enumerate() {
            if j % 2 == 0 {
                view.count(t, &mut s1);
            } else {
                view.count(t, &mut s2);
            }
        }
        parallel.absorb(s1);
        parallel.absorb(s2);
        assert_eq!(parallel.counts(), serial.counts());
    }

    #[test]
    fn first_item_bitmap_prunes_without_changing_counts() {
        // Candidates all start at 100+; transactions over 0..50 must count
        // zero (and exercise the bitmap rejection path).
        let cands = vec![s(&[100, 101]), s(&[100, 120]), s(&[110, 115])];
        let mut tree = HashTree::build(cands.clone());
        let mut txns: Vec<Vec<ItemId>> = (0..20).map(|j| tx(&[j, j + 1, j + 2])).collect();
        txns.push(tx(&[40, 100, 101])); // first item misses, later item hits
        txns.push(tx(&[100, 110, 115, 120]));
        for t in &txns {
            tree.add_transaction(t);
        }
        assert_eq!(tree.counts(), naive_counts(&cands, &txns).as_slice());
    }

    #[test]
    fn custom_params_agree_with_defaults() {
        let cands: Vec<Itemset> = (2..40).map(|i| s(&[i % 7, 10 + i])).collect();
        let txns: Vec<Vec<ItemId>> = (0..60)
            .map(|j| tx(&[j % 7, 10 + 2 + (j % 38), 10 + ((j * 5) % 38), 60 + j]))
            .collect();
        let mut reference = HashTree::build(cands.clone());
        for t in &txns {
            reference.add_transaction(t);
        }
        for (fanout, threshold) in [(2, 1), (4, 2), (64, 3), (256, 16)] {
            let mut tuned = HashTree::build_with_params(cands.clone(), fanout, threshold);
            for t in &txns {
                tuned.add_transaction(t);
            }
            assert_eq!(
                tuned.counts(),
                reference.counts(),
                "fanout {fanout} threshold {threshold}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_fanout_rejected() {
        let _ = HashTree::build_with_params(vec![s(&[1])], 3, 4);
    }

    #[test]
    fn soa_leaf_arena_is_consistent() {
        // Every candidate lands in exactly one leaf; its arena row must
        // hold exactly its items, k-strided, across splitty shapes.
        let cands: Vec<Itemset> = (0..60u32)
            .map(|i| s(&[i % 6, 6 + (i % 9), 20 + i]))
            .collect();
        for (fanout, threshold) in [(2, 1), (32, 8), (256, 4)] {
            let tree = HashTree::build_with_params(cands.clone(), fanout, threshold);
            assert_eq!(tree.leaf_ids.len(), cands.len());
            assert_eq!(tree.leaf_items.len(), cands.len() * tree.k());
            let mut seen = vec![0usize; cands.len()];
            for (e, &idx) in tree.leaf_ids.iter().enumerate() {
                seen[idx as usize] += 1;
                let row = &tree.leaf_items[e * tree.k()..(e + 1) * tree.k()];
                assert_eq!(row, cands[idx as usize].items(), "arena row {e}");
            }
            assert!(seen.iter().all(|&c| c == 1), "candidate not in one leaf");
        }
    }
}

//! The set of large itemsets `L` with their support counts.

use crate::itemset::Itemset;
use std::collections::HashMap;

/// All large itemsets of a database, organised by size, together with their
/// support counts and the database size they were mined from.
///
/// This is the paper's `L = ∪ₖ Lₖ`. Keeping the support *counts* (not just
/// membership) is the precondition for FUP: "Assume that for each `X ∈ L`,
/// its support count `X.support`, which is the number of transactions in
/// `DB` containing `X`, is available" (§2.2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LargeItemsets {
    /// `by_size[k-1]` maps each large k-itemset to its support count.
    by_size: Vec<HashMap<Itemset, u64>>,
    /// Number of transactions in the database these counts refer to
    /// (the paper's `D`).
    num_transactions: u64,
}

impl LargeItemsets {
    /// Creates an empty set for a database of `num_transactions`.
    pub fn new(num_transactions: u64) -> Self {
        LargeItemsets {
            by_size: Vec::new(),
            num_transactions,
        }
    }

    /// The database size `D` the supports were counted over.
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// Inserts (or overwrites) an itemset with its support count.
    ///
    /// # Panics
    ///
    /// Panics if the itemset is empty.
    pub fn insert(&mut self, itemset: Itemset, support: u64) {
        let k = itemset.k();
        assert!(k > 0, "the empty itemset is not a valid large itemset");
        if self.by_size.len() < k {
            self.by_size.resize_with(k, HashMap::new);
        }
        self.by_size[k - 1].insert(itemset, support);
    }

    /// The support count of `x`, if `x` is large.
    pub fn support(&self, x: &Itemset) -> Option<u64> {
        self.by_size.get(x.k().checked_sub(1)?)?.get(x).copied()
    }

    /// `true` if `x` is recorded as large.
    pub fn contains(&self, x: &Itemset) -> bool {
        self.support(x).is_some()
    }

    /// Support of `x` as a fraction of the database size.
    pub fn support_fraction(&self, x: &Itemset) -> Option<f64> {
        if self.num_transactions == 0 {
            return None;
        }
        Some(self.support(x)? as f64 / self.num_transactions as f64)
    }

    /// The largest `k` with a non-empty `Lₖ`, or 0 when empty.
    pub fn max_size(&self) -> usize {
        self.by_size
            .iter()
            .rposition(|m| !m.is_empty())
            .map(|i| i + 1)
            .unwrap_or(0)
    }

    /// Number of large k-itemsets.
    pub fn len_at(&self, k: usize) -> usize {
        k.checked_sub(1)
            .and_then(|i| self.by_size.get(i))
            .map(HashMap::len)
            .unwrap_or(0)
    }

    /// Total number of large itemsets across all sizes.
    pub fn len(&self) -> usize {
        self.by_size.iter().map(HashMap::len).sum()
    }

    /// `true` if no itemset is recorded.
    pub fn is_empty(&self) -> bool {
        self.by_size.iter().all(HashMap::is_empty)
    }

    /// Iterates the large k-itemsets with their support counts.
    pub fn level(&self, k: usize) -> impl Iterator<Item = (&Itemset, u64)> + '_ {
        k.checked_sub(1)
            .and_then(|i| self.by_size.get(i))
            .into_iter()
            .flat_map(|m| m.iter().map(|(x, &c)| (x, c)))
    }

    /// Iterates every large itemset with its support count, smallest sizes
    /// first (order within a size is unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u64)> + '_ {
        self.by_size
            .iter()
            .flat_map(|m| m.iter().map(|(x, &c)| (x, c)))
    }

    /// Collects the large k-itemsets, sorted, for deterministic output.
    pub fn level_sorted(&self, k: usize) -> Vec<(Itemset, u64)> {
        let mut v: Vec<(Itemset, u64)> = self.level(k).map(|(x, c)| (x.clone(), c)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Normalised comparison: identical itemsets with identical supports,
    /// ignoring trailing empty levels and the recorded database size.
    /// The workhorse of the equivalence tests between FUP and re-mining.
    pub fn same_itemsets(&self, other: &LargeItemsets) -> bool {
        let max = self.max_size().max(other.max_size());
        for k in 1..=max {
            if self.len_at(k) != other.len_at(k) {
                return false;
            }
            for (x, c) in self.level(k) {
                if other.support(x) != Some(c) {
                    return false;
                }
            }
        }
        true
    }

    /// Detailed difference report for diagnostics in tests and the harness:
    /// itemsets present in `self` but not `other` (or with different
    /// support), and vice versa.
    pub fn diff(&self, other: &LargeItemsets) -> Vec<String> {
        let mut out = Vec::new();
        for (x, c) in self.iter() {
            match other.support(x) {
                None => out.push(format!("only in left: {x:?} (support {c})")),
                Some(oc) if oc != c => {
                    out.push(format!("support mismatch for {x:?}: left {c}, right {oc}"))
                }
                _ => {}
            }
        }
        for (x, c) in other.iter() {
            if self.support(x).is_none() {
                out.push(format!("only in right: {x:?} (support {c})"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn insert_and_lookup() {
        let mut l = LargeItemsets::new(1000);
        l.insert(s(&[1]), 32);
        l.insert(s(&[2]), 31);
        l.insert(s(&[1, 2]), 50);
        assert_eq!(l.support(&s(&[1])), Some(32));
        assert_eq!(l.support(&s(&[1, 2])), Some(50));
        assert_eq!(l.support(&s(&[3])), None);
        assert!(l.contains(&s(&[2])));
        assert_eq!(l.len(), 3);
        assert_eq!(l.len_at(1), 2);
        assert_eq!(l.len_at(2), 1);
        assert_eq!(l.len_at(3), 0);
        assert_eq!(l.max_size(), 2);
    }

    #[test]
    fn empty_set_properties() {
        let l = LargeItemsets::new(0);
        assert!(l.is_empty());
        assert_eq!(l.max_size(), 0);
        assert_eq!(l.len(), 0);
        assert_eq!(l.support_fraction(&s(&[1])), None);
    }

    #[test]
    fn support_fraction() {
        let mut l = LargeItemsets::new(1000);
        l.insert(s(&[1]), 32);
        assert!((l.support_fraction(&s(&[1])).unwrap() - 0.032).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty itemset")]
    fn empty_itemset_rejected() {
        let mut l = LargeItemsets::new(10);
        l.insert(Itemset::from_items(Vec::<u32>::new()), 1);
    }

    #[test]
    fn level_sorted_is_deterministic() {
        let mut l = LargeItemsets::new(10);
        l.insert(s(&[3]), 5);
        l.insert(s(&[1]), 6);
        l.insert(s(&[2]), 7);
        let lvl = l.level_sorted(1);
        assert_eq!(
            lvl.iter().map(|(x, _)| x.clone()).collect::<Vec<_>>(),
            vec![s(&[1]), s(&[2]), s(&[3])]
        );
    }

    #[test]
    fn same_itemsets_ignores_db_size_but_not_supports() {
        let mut a = LargeItemsets::new(100);
        let mut b = LargeItemsets::new(200);
        a.insert(s(&[1]), 10);
        b.insert(s(&[1]), 10);
        assert!(a.same_itemsets(&b));
        b.insert(s(&[2]), 5);
        assert!(!a.same_itemsets(&b));
        let mut c = LargeItemsets::new(100);
        c.insert(s(&[1]), 11);
        assert!(!a.same_itemsets(&c));
    }

    #[test]
    fn diff_reports_all_discrepancies() {
        let mut a = LargeItemsets::new(100);
        let mut b = LargeItemsets::new(100);
        a.insert(s(&[1]), 10);
        a.insert(s(&[2]), 20);
        b.insert(s(&[2]), 21);
        b.insert(s(&[3]), 30);
        let d = a.diff(&b);
        assert_eq!(d.len(), 3);
        assert!(d.iter().any(|m| m.contains("only in left")));
        assert!(d.iter().any(|m| m.contains("mismatch")));
        assert!(d.iter().any(|m| m.contains("only in right")));
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn max_size_skips_trailing_empty_levels() {
        let mut l = LargeItemsets::new(10);
        l.insert(s(&[1, 2, 3]), 4);
        assert_eq!(l.max_size(), 3);
        assert_eq!(l.len_at(1), 0);
        assert_eq!(l.len_at(2), 0);
    }

    #[test]
    fn iter_visits_small_sizes_first() {
        let mut l = LargeItemsets::new(10);
        l.insert(s(&[1, 2]), 4);
        l.insert(s(&[1]), 8);
        let sizes: Vec<usize> = l.iter().map(|(x, _)| x.k()).collect();
        assert_eq!(sizes, vec![1, 2]);
    }
}

//! Support-counting passes over a [`TransactionSource`].
//!
//! Both passes route through [`crate::engine`]: pass the engine
//! configuration to choose the worker count ([`EngineConfig::serial`]
//! reproduces the historical single-threaded scans exactly).

use crate::engine::{self, EngineConfig};
use crate::itemset::Itemset;
use fup_tidb::{ItemId, TransactionSource};

/// Per-item support counts from one full pass (the "first iteration" of
/// every miner). Items are dense, so counts live in a flat vector.
#[derive(Debug, Default, Clone)]
pub struct ItemCounts {
    counts: Vec<u64>,
}

impl ItemCounts {
    /// Counts every item over one full pass of `source`, using the default
    /// engine configuration (all available cores).
    pub fn count<S: TransactionSource + ?Sized>(source: &S) -> Self {
        Self::count_with(source, &EngineConfig::default())
    }

    /// Counts every item over one full pass of `source` with an explicit
    /// engine configuration.
    pub fn count_with<S: TransactionSource + ?Sized>(source: &S, config: &EngineConfig) -> Self {
        engine::count_items_with(source, config)
    }

    /// Wraps a dense count table (index = item id).
    pub(crate) fn from_dense(counts: Vec<u64>) -> Self {
        ItemCounts { counts }
    }

    /// The support count of `item` (0 if never seen).
    #[inline]
    pub fn get(&self, item: ItemId) -> u64 {
        self.counts.get(item.index()).copied().unwrap_or(0)
    }

    /// Iterates `(item, count)` for every item with a non-zero count.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (ItemId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (ItemId(i as u32), c))
    }

    /// Number of item slots tracked (max item id + 1).
    pub fn capacity(&self) -> usize {
        self.counts.len()
    }
}

/// Counts the support of `candidates` (all of one size `k`) over one full
/// pass of `source`, returning `(candidate, count)` pairs in input order,
/// using the default engine configuration (all available cores).
///
/// This is the scan step shared by every pass ≥ 2 of Apriori/DHP and by
/// FUP's checks of `C_k` against `DB`. See
/// [`engine::count_candidates_with`] for an explicit configuration.
pub fn count_candidates<S: TransactionSource + ?Sized>(
    source: &S,
    candidates: Vec<Itemset>,
) -> Vec<(Itemset, u64)> {
    engine::count_candidates_with(source, candidates, &EngineConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_tidb::{Transaction, TransactionDb};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::from_transactions(
            rows.iter()
                .map(|r| Transaction::from_items(r.iter().copied())),
        )
    }

    fn s(items: &[u32]) -> Itemset {
        Itemset::from_items(items.iter().copied())
    }

    #[test]
    fn item_counts_count_occurrences() {
        let d = db(&[&[1, 2], &[2, 3], &[2]]);
        let counts = ItemCounts::count(&d);
        assert_eq!(counts.get(ItemId(1)), 1);
        assert_eq!(counts.get(ItemId(2)), 3);
        assert_eq!(counts.get(ItemId(3)), 1);
        assert_eq!(counts.get(ItemId(4)), 0);
        assert_eq!(counts.get(ItemId(1000)), 0);
    }

    #[test]
    fn item_counts_nonzero_iteration() {
        let d = db(&[&[0, 5]]);
        let counts = ItemCounts::count(&d);
        let nz: Vec<_> = counts.iter_nonzero().collect();
        assert_eq!(nz, vec![(ItemId(0), 1), (ItemId(5), 1)]);
        assert_eq!(counts.capacity(), 6);
    }

    #[test]
    fn item_counts_empty_source() {
        let d = db(&[]);
        let counts = ItemCounts::count(&d);
        assert_eq!(counts.capacity(), 0);
        assert_eq!(counts.iter_nonzero().count(), 0);
    }

    #[test]
    fn count_candidates_counts_each_pass_once() {
        let d = db(&[&[1, 2, 3], &[1, 3], &[2, 3]]);
        let results = count_candidates(&d, vec![s(&[1, 3]), s(&[2, 3]), s(&[1, 2])]);
        assert_eq!(
            results,
            vec![(s(&[1, 3]), 2), (s(&[2, 3]), 2), (s(&[1, 2]), 1)]
        );
        assert_eq!(d.metrics().full_scans(), 1);
    }

    #[test]
    fn count_candidates_empty_is_free() {
        let d = db(&[&[1]]);
        assert!(count_candidates(&d, Vec::new()).is_empty());
        // No scan was charged for an empty candidate pool.
        assert_eq!(d.metrics().full_scans(), 0);
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no network access, so the workspace vendors a
//! small wall-clock harness exposing the API subset its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: one warm-up call, then timed batches until either
//! `sample_size` iterations or the time budget (default 3 s per benchmark,
//! `CRITERION_SMOKE=1` shrinks it to a single iteration) is spent. Results
//! print as `ns/iter` lines. No statistics, plots, or baselines — swap the
//! workspace `criterion` dependency for the registry crate to get those.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Runs `f` with an input value, as the real criterion does.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label());
        self
    }

    /// Ends the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A bare function id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => format!("{}/{}", self.function, p),
            Some(p) => p.clone(),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    fn budget() -> Duration {
        if std::env::var_os("CRITERION_SMOKE").is_some() {
            Duration::ZERO
        } else {
            Duration::from_secs(3)
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also the only iteration under CRITERION_SMOKE).
        let start = Instant::now();
        black_box(routine());
        let warm = start.elapsed();
        self.total += warm;
        self.iters += 1;
        let budget = Self::budget();
        while self.iters < self.sample_size as u64 && self.total < budget {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.iters == 0 {
            return;
        }
        let per_iter = self.total.as_nanos() / u128::from(self.iters);
        println!(
            "bench {group}/{label}: {per_iter} ns/iter ({} iters)",
            self.iters
        );
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        let mut group = c.benchmark_group("toy");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group!(benches, toy);

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_SMOKE", "1");
        benches();
    }
}

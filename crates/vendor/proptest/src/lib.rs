//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This build environment has no network access, so the workspace vendors a
//! minimal, dependency-free property-testing harness exposing exactly the
//! API subset its test suites use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for numeric
//!   ranges, tuples of strategies, and the [`collection`] combinators,
//! * [`any`] for `bool`, `u64` and [`sample::Index`],
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Semantics deliberately kept from the real crate: deterministic case
//! generation (seeded from the test name, so failures reproduce across
//! runs), assertion macros that report the failing expression, and
//! `prop_assume!` discarding the case. Not implemented: shrinking,
//! persisted failure files, `Just`, `prop_oneof!`, recursive strategies.
//! To switch to the real crate, point the workspace `proptest` dependency
//! at the registry instead of this path.

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix style PRNG; self-contained so test streams
/// never change under dependency upgrades.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Rng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for test sizes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values — the (non-shrinking) core of proptest's
/// trait of the same name.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut Rng) -> u32 {
        rng.next_u64() as u32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T` — proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

pub mod sample {
    //! Collection-sampling helpers (`prop::sample::Index`).

    use super::{Arbitrary, Rng};

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut Rng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// An inclusive size band for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut Rng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! `vec` / `hash_set` combinators.

    use super::{Rng, SizeRange, Strategy};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with sizes drawn from a band.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with sizes drawn from a band.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates hash sets whose size falls in `size`. The element domain
    /// must be large enough to reach the requested size; generation retries
    /// duplicates a bounded number of times.
    pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut Rng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 100 + 1000 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= n.min(1) || n == 0,
                "hash_set strategy could not reach size {n}"
            );
            out
        }
    }
}

/// Per-`proptest!` configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, flag in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::Rng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        message
                    );
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        ::std::format!($($fmt)+),
                        left,
                        right
                    ));
                }
            }
        }
    };
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left
                    ));
                }
            }
        }
    };
}

/// Discards the current case when `cond` is false (no shrinking, no retry:
/// the case simply passes vacuously, as rejection bookkeeping is not
/// implemented in this stand-in).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };

    /// The crate root under its conventional `prop` alias
    /// (`prop::sample::Index` et al.).
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1u64..=4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 2..6),
            s in prop::collection::hash_set(0u32..1000, 4),
            ix in any::<prop::sample::Index>(),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(s.len(), 4);
            prop_assert!(ix.index(v.len()) < v.len());
            let _ = flag;
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::Rng::from_name("x");
        let mut b = crate::Rng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

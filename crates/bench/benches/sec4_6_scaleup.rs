//! Criterion bench for §4.6: the scale-up workload `T10.I4.D1000.d10`,
//! run at two database sizes so the growth of FUP's advantage with scale
//! is visible in one report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fup_core::Fup;
use fup_datagen::{corpus, generate_split};
use fup_mining::{Apriori, Dhp, MinSupport};
use fup_tidb::source::ChainSource;

fn scaleup(c: &mut Criterion) {
    let minsup = MinSupport::basis_points(200);
    let mut group = c.benchmark_group("sec4_6_scaleup");
    group.sample_size(10);
    // 1/200 and 1/50 of the paper's 1M: D = 5K and 20K.
    for &scale in &[200u64, 50] {
        let params = corpus::scaled(corpus::t10_i4_d1000_d10(), scale);
        let data = generate_split(&params);
        let d = data.d_original();
        let baseline = Apriori::new().run(&data.db, minsup).large;
        group.bench_with_input(BenchmarkId::new("fup", d), &d, |b, _| {
            b.iter(|| {
                Fup::new()
                    .update(&data.db, &baseline, &data.increment, minsup)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dhp_rerun", d), &d, |b, _| {
            b.iter(|| {
                let whole = ChainSource::new(&data.db, &data.increment);
                Dhp::new().run(&whole, minsup)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scaleup);
criterion_main!(benches);

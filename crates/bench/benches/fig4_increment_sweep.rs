//! Criterion bench for Figure 4: FUP vs DHP re-run as the increment grows
//! from a fraction of `D` to several times `D`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fup_core::Fup;
use fup_datagen::{corpus, generate_split};
use fup_mining::{Apriori, Dhp, MinSupport};
use fup_tidb::source::ChainSource;

const SCALE: u64 = 50; // D = 2000; increments 300..7000

fn fig4(c: &mut Criterion) {
    let minsup = MinSupport::basis_points(200);
    let mut group = c.benchmark_group("fig4_increment_sweep");
    group.sample_size(10);
    for &m in &[15u64, 125, 350] {
        let params = corpus::scaled(corpus::t10_i4_d100_dm(m), SCALE);
        let data = generate_split(&params);
        let baseline = Apriori::new().run(&data.db, minsup).large;
        let d = data.d_increment();
        group.bench_with_input(BenchmarkId::new("fup", d), &d, |b, _| {
            b.iter(|| {
                Fup::new()
                    .update(&data.db, &baseline, &data.increment, minsup)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dhp_rerun", d), &d, |b, _| {
            b.iter(|| {
                let whole = ChainSource::new(&data.db, &data.increment);
                Dhp::new().run(&whole, minsup)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);

//! Criterion bench for Figure 2: FUP vs re-running DHP/Apriori on the
//! updated database, per minimum support, on `T10.I4.D100.d1` (scaled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fup_core::Fup;
use fup_datagen::corpus;
use fup_mining::{Apriori, Dhp, MinSupport};
use fup_tidb::source::ChainSource;

const SCALE: u64 = 20; // D = 5000, d = 50

fn fig2(c: &mut Criterion) {
    let data = fup_bench::harness::workload(corpus::t10_i4_d100_d1(), SCALE);
    let mut group = c.benchmark_group("fig2_perf_ratio");
    group.sample_size(10);
    for &bp in &corpus::FIG2_SUPPORTS_BP {
        let minsup = MinSupport::basis_points(bp);
        let baseline = Apriori::new().run(&data.db, minsup).large;
        group.bench_with_input(BenchmarkId::new("fup", bp), &bp, |b, _| {
            b.iter(|| {
                Fup::new()
                    .update(&data.db, &baseline, &data.increment, minsup)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dhp_rerun", bp), &bp, |b, _| {
            b.iter(|| {
                let whole = ChainSource::new(&data.db, &data.increment);
                Dhp::new().run(&whole, minsup)
            })
        });
        group.bench_with_input(BenchmarkId::new("apriori_rerun", bp), &bp, |b, _| {
            b.iter(|| {
                let whole = ChainSource::new(&data.db, &data.increment);
                Apriori::new().run(&whole, minsup)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);

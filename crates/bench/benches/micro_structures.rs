//! Micro-benchmarks for the shared data structures: the candidate hash
//! tree (vs naive containment), `apriori-gen`, and the transaction codec.
//! These justify the substrate choices DESIGN.md makes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fup_datagen::rng::Pcg32;
use fup_mining::gen::apriori_gen;
use fup_mining::{HashTree, Itemset};
use fup_tidb::transaction::contains_sorted;
use fup_tidb::{codec, ItemId, Transaction};

fn random_transactions(n: usize, items: u32, len: usize, rng: &mut Pcg32) -> Vec<Transaction> {
    (0..n)
        .map(|_| Transaction::from_items((0..len).map(|_| rng.below(items))))
        .collect()
}

fn random_itemsets(n: usize, items: u32, k: usize, rng: &mut Pcg32) -> Vec<Itemset> {
    let mut out = std::collections::HashSet::new();
    while out.len() < n {
        out.insert(Itemset::from_items(
            (0..k * 2).map(|_| rng.below(items)).take(k),
        ));
    }
    out.into_iter().filter(|s| s.k() == k).collect()
}

fn subset_counting(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from(42);
    let mut group = c.benchmark_group("subset_counting");
    group.sample_size(20);
    for &ncand in &[100usize, 1000, 5000] {
        let candidates = random_itemsets(ncand, 500, 2, &mut rng);
        let transactions = random_transactions(2000, 500, 10, &mut rng);
        group.bench_with_input(BenchmarkId::new("hash_tree", ncand), &ncand, |b, _| {
            b.iter(|| {
                let mut tree = HashTree::build(candidates.clone());
                for t in &transactions {
                    tree.add_transaction(t.items());
                }
                tree.counts().iter().sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", ncand), &ncand, |b, _| {
            b.iter(|| {
                let mut total = 0u64;
                for t in &transactions {
                    for cand in &candidates {
                        if contains_sorted(t.items(), cand.items()) {
                            total += 1;
                        }
                    }
                }
                total
            })
        });
    }
    group.finish();
}

fn candidate_generation(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from(7);
    let mut group = c.benchmark_group("apriori_gen");
    group.sample_size(20);
    for &n in &[100usize, 1000] {
        let level = random_itemsets(n, 300, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("join_prune", n), &n, |b, _| {
            b.iter(|| apriori_gen(&level).len())
        });
    }
    group.finish();
}

fn transaction_codec(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from(11);
    let transactions = random_transactions(5000, 1000, 10, &mut rng);
    let mut group = c.benchmark_group("codec");
    group.sample_size(30);
    group.bench_function("encode_5k", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for t in &transactions {
                codec::encode_transaction(&mut buf, t.items());
            }
            buf.len()
        })
    });
    let mut encoded = Vec::new();
    for t in &transactions {
        codec::encode_transaction(&mut encoded, t.items());
    }
    group.bench_function("decode_5k", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut items: Vec<ItemId> = Vec::new();
            let mut total = 0usize;
            while pos < encoded.len() {
                codec::decode_transaction(&encoded, &mut pos, &mut items).unwrap();
                total += items.len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    subset_counting,
    candidate_generation,
    transaction_codec
);
criterion_main!(benches);

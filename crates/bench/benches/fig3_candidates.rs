//! Criterion bench for Figure 3: the counting passes driven by each
//! algorithm's candidate pool. Wall time here is dominated by candidate
//! volume, so the timings mirror the candidate-reduction figure; the
//! harness binary (`experiments fig3`) prints the exact counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fup_core::Fup;
use fup_datagen::corpus;
use fup_mining::{Apriori, MinSupport};
use fup_tidb::source::ChainSource;

const SCALE: u64 = 20; // D = 5000

fn fig3(c: &mut Criterion) {
    let data = fup_bench::harness::workload(corpus::t10_i4_d100_d1(), SCALE);
    let mut group = c.benchmark_group("fig3_candidates");
    group.sample_size(10);
    for &bp in &[200u64, 75] {
        let minsup = MinSupport::basis_points(bp);
        let baseline = Apriori::new().run(&data.db, minsup).large;
        group.bench_with_input(BenchmarkId::new("fup_candidate_pool", bp), &bp, |b, _| {
            b.iter(|| {
                let out = Fup::new()
                    .update(&data.db, &baseline, &data.increment, minsup)
                    .unwrap();
                out.stats.total_candidates_checked()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("apriori_candidate_pool", bp),
            &bp,
            |b, _| {
                b.iter(|| {
                    let whole = ChainSource::new(&data.db, &data.increment);
                    Apriori::new()
                        .run(&whole, minsup)
                        .stats
                        .total_candidates_checked()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);

//! Figure 2 — performance ratio of DHP/FUP and Apriori/FUP on
//! `T10.I4.D100.d1` across minimum supports 6 %, 4 %, 2 %, 1 %, 0.75 %.
//!
//! Paper's shape: FUP 3–6× faster than DHP and 3–7× faster than Apriori at
//! small supports, still 2–3× at large supports.

use crate::harness::{compare, mine_baseline, workload, Comparison};
use crate::table::{fmt_duration, Table};
use fup_datagen::corpus;
use fup_mining::MinSupport;

/// One measured support level.
pub type Row = Comparison;

/// Runs the Figure 2 sweep at `1/scale` of the paper's database size.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let data = workload(corpus::t10_i4_d100_d1().with_seed(seed), scale);
    corpus::FIG2_SUPPORTS_BP
        .iter()
        .map(|&bp| {
            let minsup = MinSupport::basis_points(bp);
            let baseline = mine_baseline(&data.db, minsup);
            compare(&data.db, &data.increment, &baseline, minsup)
        })
        .collect()
}

/// Renders the rows as the paper's figure-2 series.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "minsup",
        "t_FUP",
        "t_DHP",
        "t_Apriori",
        "DHP/FUP",
        "Apriori/FUP",
        "|L'|",
    ]);
    for r in rows {
        t.push([
            format!("{:.2}%", r.minsup_bp as f64 / 100.0),
            fmt_duration(r.t_fup),
            fmt_duration(r.t_dhp),
            fmt_duration(r.t_apriori),
            format!("{:.2}", r.speedup_vs_dhp()),
            format!("{:.2}", r.speedup_vs_apriori()),
            r.num_large.to_string(),
        ]);
    }
    t
}

/// The paper's qualitative expectation for this figure.
pub const PAPER_SHAPE: &str = "paper: FUP 3-6x faster than DHP and 3-7x faster than Apriori \
     at small supports; still 2-3x at 4-6% supports";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_paper_supports() {
        let rows = run(500, 7); // D = 200: smoke-test scale
        assert_eq!(rows.len(), 5);
        let bps: Vec<u64> = rows.iter().map(|r| r.minsup_bp).collect();
        assert_eq!(bps, vec![600, 400, 200, 100, 75]);
        let table = render(&rows);
        assert_eq!(table.len(), 5);
        assert!(table.to_string().contains("DHP/FUP"));
    }
}

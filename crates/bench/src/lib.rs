//! # fup-bench — the paper's evaluation, reproduced
//!
//! One runner per table/figure of §4 (see DESIGN.md's per-experiment
//! index). Each runner generates the paper's workload (optionally scaled
//! down by a factor), runs FUP against re-running Apriori and DHP on the
//! updated database, and returns structured rows that the `experiments`
//! binary renders next to the paper's reported shapes.
//!
//! | id        | paper artefact | runner |
//! |-----------|----------------|--------|
//! | `table1`  | Table 1 (parameters) | [`table1::run`] |
//! | `fig2`    | Fig. 2 performance ratio vs minsup | [`fig2::run`] |
//! | `fig3`    | Fig. 3 candidate-set reduction | [`fig3::run`] |
//! | `sec4_4a` | §4.4 speed-up vs increment (1K/5K/10K) | [`sec4_4::run`] |
//! | `fig4`    | Fig. 4 speed-up vs increment (15K–350K) | [`fig4::run`] |
//! | `sec4_5`  | §4.5 overhead of FUP | [`sec4_5::run`] |
//! | `sec4_6`  | §4.6 scale-up (1M transactions) | [`sec4_6::run`] |
//! | `ablation`| DESIGN.md ablations (not in the paper) | [`ablation::run`] |
//! | `scanvol` | scan-volume accounting (extension) | [`scanvol::run`] |
//! | `fup2perf`| FUP2 vs re-mining across deletion churn (extension) | [`fup2perf::run`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod cli;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fup2perf;
pub mod harness;
pub mod scanvol;
pub mod sec4_4;
pub mod sec4_5;
pub mod sec4_6;
pub mod table;
pub mod table1;

pub use harness::{compare, Comparison};
pub use table::Table;

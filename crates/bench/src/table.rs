//! Minimal text-table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header count.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn push<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a `Duration` in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 10_000.0 {
        format!("{:.1}s", ms / 1e3)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}us", ms * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["minsup", "ratio"]);
        t.push(["6%", "2.1"]);
        t.push(["0.75%", "16.0"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("minsup"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("16.0"));
        // All data lines equally wide.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(250)), "250us");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.0s");
    }
}

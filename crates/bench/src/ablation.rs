//! Ablation study (not in the paper): how much each of FUP's design
//! choices contributes. DESIGN.md calls out three separable mechanisms —
//! Lemma-2/5 candidate pruning (inherent, cannot be disabled), the
//! `Reduce-db`/`Reduce-DB` trimming, and the DHP pair-hash filter for
//! `C₂` — so the ablation toggles the latter two.

use crate::harness::{mine_baseline, timed, workload};
use crate::table::{fmt_duration, Table};
use fup_core::{Fup, FupConfig};
use fup_datagen::corpus;
use fup_mining::MinSupport;
use std::time::Duration;

/// One configuration measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub label: &'static str,
    /// FUP wall-clock time under this configuration.
    pub t_fup: Duration,
    /// Candidates counted against `DB`.
    pub candidates_checked: u64,
    /// Size-2 candidates counted in the increment (hash-filter target).
    pub c2_after_hash: u64,
}

/// The configurations compared.
pub fn configurations() -> Vec<(&'static str, FupConfig)> {
    vec![
        ("full", FupConfig::full()),
        (
            "no-reduce",
            FupConfig {
                reduce_db: false,
                ..FupConfig::full()
            },
        ),
        (
            "no-hash",
            FupConfig {
                dhp_hash: false,
                ..FupConfig::full()
            },
        ),
        ("bare", FupConfig::bare()),
    ]
}

/// Runs every configuration on the `T10.I4.D100.d10` workload at
/// `1/scale`, support 1 %.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let data = workload(corpus::t10_i4_d100_dm(10).with_seed(seed), scale);
    let minsup = MinSupport::percent(1);
    let baseline = mine_baseline(&data.db, minsup);
    configurations()
        .into_iter()
        .map(|(label, config)| {
            let (out, t_fup) = timed(|| {
                Fup::with_config(config)
                    .update(&data.db, &baseline, &data.increment, minsup)
                    .expect("baseline matches db")
            });
            let c2_after_hash = out
                .detail
                .iter()
                .find(|d| d.k == 2)
                .map(|d| d.candidates_after_hash)
                .unwrap_or(0);
            Row {
                label,
                t_fup,
                candidates_checked: out.stats.total_candidates_checked(),
                c2_after_hash,
            }
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(["config", "t_FUP", "|C| checked", "|C2| after hash"]);
    for r in rows {
        t.push([
            r.label.to_string(),
            fmt_duration(r.t_fup),
            r.candidates_checked.to_string(),
            r.c2_after_hash.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_run_and_agree_on_structure() {
        let rows = run(500, 23); // D = 200
        assert_eq!(rows.len(), 4);
        let labels: Vec<_> = rows.iter().map(|r| r.label).collect();
        assert_eq!(labels, vec!["full", "no-reduce", "no-hash", "bare"]);
        // The DB-checked candidate pool is identical across configs:
        // trimming and hashing change *where* time goes, Lemma-2/5 pruning
        // determines the pool.
        let full = rows[0].candidates_checked;
        let no_reduce = rows[1].candidates_checked;
        assert_eq!(full, no_reduce);
        // Hash filter can only help (thin or equal C2 pools).
        let no_hash = rows.iter().find(|r| r.label == "no-hash").unwrap();
        assert!(rows[0].c2_after_hash <= no_hash.c2_after_hash);
        assert_eq!(render(&rows).len(), 4);
    }
}

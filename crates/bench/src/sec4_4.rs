//! §4.4 (first part) — speed-up as the increment grows: `T10.I4.D100.dm`
//! with increments of 1K, 5K and 10K at several supports.
//!
//! Paper's shape: for the same support the speed-up ratio decreases as the
//! increment grows (e.g. from 5.8 to 3.7 at s = 2 %), but stays > 1.

use crate::harness::{compare, mine_baseline, Comparison};
use crate::table::Table;
use fup_datagen::{corpus, generate_split};
use fup_mining::MinSupport;

/// One `(increment size, support)` measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Increment size in transactions (after scaling).
    pub increment: u64,
    /// The underlying comparison.
    pub comparison: Comparison,
}

/// The increment sizes of §4.4, in thousands.
pub const INCREMENTS_K: [u64; 3] = [1, 5, 10];

/// Supports examined (basis points).
pub const SUPPORTS_BP: [u64; 3] = [400, 200, 100];

/// Runs the sweep at `1/scale` of the paper's sizes.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for &m in &INCREMENTS_K {
        let params = corpus::scaled(corpus::t10_i4_d100_dm(m).with_seed(seed), scale);
        let data = generate_split(&params);
        for &bp in &SUPPORTS_BP {
            let minsup = MinSupport::basis_points(bp);
            let baseline = mine_baseline(&data.db, minsup);
            rows.push(Row {
                increment: data.d_increment(),
                comparison: compare(&data.db, &data.increment, &baseline, minsup),
            });
        }
    }
    rows
}

/// Renders the speed-up grid.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(["increment", "minsup", "DHP/FUP", "Apriori/FUP"]);
    for r in rows {
        t.push([
            r.increment.to_string(),
            format!("{:.2}%", r.comparison.minsup_bp as f64 / 100.0),
            format!("{:.2}", r.comparison.speedup_vs_dhp()),
            format!("{:.2}", r.comparison.speedup_vs_apriori()),
        ]);
    }
    t
}

/// The paper's qualitative expectation.
pub const PAPER_SHAPE: &str =
    "paper: at fixed support the speed-up falls as the increment grows (5.8 -> 3.7 at s=2%)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_all_cells() {
        let rows = run(500, 3); // D = 200, increments 2/10/20
        assert_eq!(rows.len(), INCREMENTS_K.len() * SUPPORTS_BP.len());
        // Increments are increasing across blocks.
        assert!(rows[0].increment < rows[rows.len() - 1].increment);
        assert_eq!(render(&rows).len(), rows.len());
    }
}

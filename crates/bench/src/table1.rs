//! Table 1 — the synthetic-workload parameter table.

use crate::table::Table;
use fup_datagen::GenParams;

/// Renders the paper's Table 1 for a parameter set (defaults reproduce the
/// published values).
pub fn run(params: &GenParams) -> Table {
    let mut t = Table::new(["parameter", "meaning", "value"]);
    t.push([
        "D".to_string(),
        "Number of transactions in database DB".to_string(),
        params.num_transactions.to_string(),
    ]);
    t.push([
        "d".to_string(),
        "Number of transactions in the increment".to_string(),
        params.increment_size.to_string(),
    ]);
    t.push([
        "|T|".to_string(),
        "Mean size of the transactions".to_string(),
        format!("{}", params.avg_transaction_len),
    ]);
    t.push([
        "|I|".to_string(),
        "Mean size of the maximal potentially large itemsets".to_string(),
        format!("{}", params.avg_pattern_len),
    ]);
    t.push([
        "|L|".to_string(),
        "Number of potentially large itemsets".to_string(),
        params.num_patterns.to_string(),
    ]);
    t.push([
        "N".to_string(),
        "Number of items".to_string(),
        params.num_items.to_string(),
    ]);
    t.push([
        "S_c".to_string(),
        "Clustering size".to_string(),
        params.clustering_size.to_string(),
    ]);
    t.push([
        "P_s".to_string(),
        "Pool size".to_string(),
        params.pool_size.to_string(),
    ]);
    t.push([
        "M_f".to_string(),
        "Multiplying factor".to_string(),
        params.multiplying_factor.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_paper_parameters() {
        let t = run(&GenParams::default());
        assert_eq!(t.len(), 9);
        let s = t.to_string();
        for needle in ["100000", "2000", "1000", "S_c", "P_s", "M_f"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}

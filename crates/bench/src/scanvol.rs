//! Scan-volume accounting (extension of the paper's cost argument).
//!
//! The paper explains FUP's speed through two quantities: candidate-pool
//! size (Figure 3) and the amount of data each pass reads. This experiment
//! makes the second explicit using the substrate's [`fup_tidb::ScanMetrics`]: it
//! reports transactions and items delivered from the *original sources*
//! by FUP versus a re-run of Apriori/DHP on `DB ∪ db`. (FUP's trimmed
//! working copies are internal and excluded — the original sources model
//! the on-disk data whose scans the paper counts.)

use crate::harness::workload;
use crate::table::Table;
use fup_core::Fup;
use fup_datagen::corpus;
use fup_mining::{Apriori, Dhp, MinSupport};
use fup_tidb::source::ChainSource;
use fup_tidb::{TransactionDb, TransactionSource};

/// One support level's scan volumes.
#[derive(Debug, Clone)]
pub struct Row {
    /// Minimum support in basis points.
    pub minsup_bp: u64,
    /// Transactions read from DB+db by FUP.
    pub fup_transactions: u64,
    /// Transactions read from DB+db by a DHP re-run.
    pub dhp_transactions: u64,
    /// Transactions read from DB+db by an Apriori re-run.
    pub apriori_transactions: u64,
    /// Items read from DB+db by FUP.
    pub fup_items: u64,
    /// Items read by the Apriori re-run.
    pub apriori_items: u64,
}

fn both(db: &TransactionDb, inc: &TransactionDb, f: impl FnOnce()) -> (u64, u64) {
    let b_db = db.metrics().snapshot();
    let b_inc = inc.metrics().snapshot();
    f();
    let d_db = db.metrics().snapshot().since(&b_db);
    let d_inc = inc.metrics().snapshot().since(&b_inc);
    (
        d_db.transactions_read + d_inc.transactions_read,
        d_db.items_read + d_inc.items_read,
    )
}

/// Runs the scan-volume comparison at `1/scale` of `T10.I4.D100.d1`.
///
/// The counting backend is pinned to the hash tree: this experiment
/// reports the scan volumes of the *paper's* algorithms, and the vertical
/// index deliberately changes when sources are scanned.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    use fup_mining::apriori::AprioriConfig;
    use fup_mining::dhp::DhpConfig;
    use fup_mining::{CountingBackend, EngineConfig};
    let engine = EngineConfig::default().with_backend(CountingBackend::HashTree);
    let fup_config = fup_core::FupConfig {
        engine: engine.clone(),
        ..fup_core::FupConfig::full()
    };
    let apriori = Apriori::with_config(AprioriConfig {
        engine: engine.clone(),
        ..AprioriConfig::default()
    });
    let dhp = Dhp::with_config(DhpConfig {
        engine: engine.clone(),
        ..DhpConfig::default()
    });
    let data = workload(corpus::t10_i4_d100_d1().with_seed(seed), scale);
    corpus::FIG2_SUPPORTS_BP
        .iter()
        .map(|&bp| {
            let minsup = MinSupport::basis_points(bp);
            let baseline = apriori.run(&data.db, minsup).large;

            let (fup_transactions, fup_items) = both(&data.db, &data.increment, || {
                Fup::with_config(fup_config.clone())
                    .update(&data.db, &baseline, &data.increment, minsup)
                    .expect("baseline matches");
            });
            let (dhp_transactions, _) = both(&data.db, &data.increment, || {
                let whole = ChainSource::new(&data.db, &data.increment);
                dhp.run(&whole, minsup);
            });
            let (apriori_transactions, apriori_items) = both(&data.db, &data.increment, || {
                let whole = ChainSource::new(&data.db, &data.increment);
                apriori.run(&whole, minsup);
            });
            Row {
                minsup_bp: bp,
                fup_transactions,
                dhp_transactions,
                apriori_transactions,
                fup_items,
                apriori_items,
            }
        })
        .collect()
}

/// Renders the scan-volume table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "minsup",
        "txns FUP",
        "txns DHP",
        "txns Apriori",
        "FUP/Apriori txns",
        "FUP/Apriori items",
    ]);
    for r in rows {
        t.push([
            format!("{:.2}%", r.minsup_bp as f64 / 100.0),
            r.fup_transactions.to_string(),
            r.dhp_transactions.to_string(),
            r.apriori_transactions.to_string(),
            format!(
                "{:.3}",
                r.fup_transactions as f64 / r.apriori_transactions.max(1) as f64
            ),
            format!("{:.3}", r.fup_items as f64 / r.apriori_items.max(1) as f64),
        ]);
    }
    t
}

/// Qualitative expectation.
pub const PAPER_SHAPE: &str =
    "extension: FUP reads a fraction of the transactions the re-runs read \
     (DB only while pruned candidates remain; db is small)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fup_reads_no_more_than_baselines() {
        let rows = run(200, 29); // D = 500
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.fup_transactions <= r.apriori_transactions,
                "minsup {}bp: FUP read {} vs Apriori {}",
                r.minsup_bp,
                r.fup_transactions,
                r.apriori_transactions
            );
        }
        // At the smallest support Apriori runs many passes; FUP must read
        // strictly less.
        let last = rows.last().unwrap();
        assert!(last.fup_transactions < last.apriori_transactions);
        assert_eq!(render(&rows).len(), 5);
    }
}

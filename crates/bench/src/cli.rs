//! Small argument-parsing and reporting helpers shared by the bench
//! binaries (`bench_counting`, `bench_gen`), so their CLI conventions
//! cannot drift apart.

/// Parses a comma-separated thread-count list (e.g. `"2,4,8"`).
/// Rejects empty lists and explicit zeros — every bench row needs a
/// concrete worker count.
pub fn parse_thread_list(s: &str) -> Result<Vec<usize>, String> {
    let threads = s
        .split(',')
        .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
        .collect::<Result<Vec<usize>, String>>()?;
    if threads.is_empty() || threads.contains(&0) {
        return Err("--threads needs explicit counts ≥ 1".into());
    }
    Ok(threads)
}

/// Enforces a `--min-speedup`-style floor: when `required > 0` and
/// `actual` falls short, prints a named error and exits 1. A zero
/// `required` disables the check.
pub fn require_min_speedup(bin: &str, what: &str, actual: f64, required: f64) {
    if required > 0.0 && actual < required {
        eprintln!("{bin}: {what} {actual:.2}x below required {required:.2}x");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lists_and_rejects_bad_input() {
        assert_eq!(parse_thread_list("2,4,8").unwrap(), vec![2, 4, 8]);
        assert_eq!(parse_thread_list(" 3 ").unwrap(), vec![3]);
        assert!(parse_thread_list("").is_err());
        assert!(parse_thread_list("2,0").is_err());
        assert!(parse_thread_list("x").is_err());
    }
}

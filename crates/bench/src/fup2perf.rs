//! FUP2 performance across deletion fractions (extension).
//!
//! The paper's §5 reports that deletions and modifications "have been
//! investigated" but gives no numbers. This experiment fills that gap in
//! the same style as Figure 2: a `T10.I4` database takes an update that
//! deletes a fraction of its transactions and inserts an increment of the
//! same size; FUP2 is timed against re-running Apriori and DHP on the
//! updated database.

use crate::harness::timed;
use crate::table::{fmt_duration, Table};
use fup_core::Fup2;
use fup_datagen::{corpus, generate_split};
use fup_mining::{Apriori, Dhp, MinSupport};
use fup_tidb::source::ChainSource;
use fup_tidb::{SegmentedDb, Tid, UpdateBatch};
use std::time::Duration;

/// One deletion-fraction measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Transactions deleted (= transactions inserted).
    pub churn: u64,
    /// Fraction of the database deleted.
    pub delete_fraction: f64,
    /// FUP2 wall-clock time.
    pub t_fup2: Duration,
    /// DHP re-run on the updated database.
    pub t_dhp: Duration,
    /// Apriori re-run on the updated database.
    pub t_apriori: Duration,
}

impl Row {
    /// DHP time / FUP2 time.
    pub fn speedup_vs_dhp(&self) -> f64 {
        self.t_dhp.as_secs_f64() / self.t_fup2.as_secs_f64().max(1e-9)
    }

    /// Apriori time / FUP2 time.
    pub fn speedup_vs_apriori(&self) -> f64 {
        self.t_apriori.as_secs_f64() / self.t_fup2.as_secs_f64().max(1e-9)
    }
}

/// Deletion fractions examined.
pub const FRACTIONS: [f64; 4] = [0.01, 0.05, 0.10, 0.25];

/// The support used.
pub const SUPPORT_BP: u64 = 200;

/// Runs the sweep at `1/scale` of `T10.I4.D100` with churn = fraction × D.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let minsup = MinSupport::basis_points(SUPPORT_BP);
    FRACTIONS
        .iter()
        .map(|&frac| {
            // Generate D + churn transactions from one stream: the first D
            // become the database, the rest the insert side.
            let d = 100_000 / scale;
            let churn = ((d as f64) * frac).round() as u64;
            let params = corpus::t10_i4_d100_d1()
                .with_seed(seed)
                .with_increment(churn);
            let params = fup_datagen::GenParams {
                num_transactions: d,
                ..params
            };
            let data = generate_split(&params);

            let mut store = SegmentedDb::from_transactions(data.db.raw().to_vec());
            let baseline = Apriori::new().run(&store, minsup).large;
            // Delete every k-th transaction (spread churn across the DB).
            let victims: Vec<Tid> = store
                .iter()
                .map(|(tid, _)| tid)
                .step_by((d / churn.max(1)).max(1) as usize)
                .take(churn as usize)
                .collect();
            let staged = store
                .stage(UpdateBatch {
                    inserts: data.increment.raw().to_vec(),
                    deletes: victims,
                })
                .expect("valid tids");

            let (out, t_fup2) = timed(|| {
                Fup2::new()
                    .update(
                        &store,
                        &baseline,
                        staged.deleted(),
                        staged.inserted(),
                        minsup,
                    )
                    .expect("baseline matches")
            });
            let whole = ChainSource::new(&store, staged.inserted());
            let (dhp_out, t_dhp) = timed(|| Dhp::new().run(&whole, minsup));
            let (apriori_out, t_apriori) = timed(|| Apriori::new().run(&whole, minsup));
            debug_assert!(out.large.same_itemsets(&dhp_out.large));
            debug_assert!(out.large.same_itemsets(&apriori_out.large));

            Row {
                churn,
                delete_fraction: frac,
                t_fup2,
                t_dhp,
                t_apriori,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "deleted%",
        "churn",
        "t_FUP2",
        "t_DHP",
        "t_Apriori",
        "DHP/FUP2",
        "Apriori/FUP2",
    ]);
    for r in rows {
        t.push([
            format!("{:.0}%", r.delete_fraction * 100.0),
            r.churn.to_string(),
            fmt_duration(r.t_fup2),
            fmt_duration(r.t_dhp),
            fmt_duration(r.t_apriori),
            format!("{:.2}", r.speedup_vs_dhp()),
            format!("{:.2}", r.speedup_vs_apriori()),
        ]);
    }
    t
}

/// Qualitative expectation.
pub const PAPER_SHAPE: &str = "extension (§5 gives no numbers): FUP2 should beat re-mining across \
     moderate churn, with the gain shrinking as churn grows";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_is_consistent() {
        let rows = run(200, 31); // D = 500
        assert_eq!(rows.len(), FRACTIONS.len());
        for r in &rows {
            assert!(r.churn > 0);
            assert!(r.speedup_vs_dhp() > 0.0);
        }
        assert_eq!(render(&rows).len(), rows.len());
    }
}

//! `bench_shard` — tid-range sharding benchmark, emitting a
//! machine-readable `BENCH_shard.json` for the perf trajectory (CI runs
//! this briefly on every push).
//!
//! Replays one maintenance workload — a `T10.I4` base corpus followed by
//! N update rounds of fresh inserts plus a contiguous window of deletes —
//! through a flat [`Maintainer`] and through sharded sessions at each
//! requested shard count, all on the vertical backend. After **every**
//! round, every sharded session is certified **bit-identical** to the
//! flat reference (itemsets with supports, rules with counts, the live
//! tid view) before any number is reported; the scaling curve never
//! certifies a broken merge.
//!
//! The measured effect is *scan volume*, not thread parallelism, so the
//! curve is meaningful on any CPU count: the delete window is contiguous,
//! so under a coarse stripe it lands on one shard per round — the flat
//! session must rebuild its whole persistent index every round (its base
//! shrank), while a sharded session rebuilds only the touched shard and
//! *extends* the rest. `--min-shard-speedup` gates the best shard count's
//! maintenance-round speedup over flat (0 disables; CI asserts the
//! sharded path wins on the churn workload).
//!
//! A second scenario generates a Zipf-skewed corpus (`--item-skew`, the
//! `fup_datagen` knob added alongside sharding) and certifies one
//! maintenance round bit-identical under skew too, reporting the
//! shard-size balance (striping routes by tid, so shard sizes stay
//! balanced however skewed the *items* are).
//!
//! ```text
//! bench_shard [--out PATH] [--transactions N] [--rounds R]
//!             [--increment D] [--deletes K] [--shards S1,S2,..]
//!             [--stripe W] [--minsup-bp B] [--threads T] [--reps R]
//!             [--seed S] [--item-skew Z] [--min-shard-speedup X]
//! ```

use fup_core::{IndexStats, Maintainer};
use fup_datagen::{corpus, GenParams, QuestGenerator};
use fup_mining::{CountingBackend, LargeItemsets, MinConfidence, MinSupport, RuleSet};
use fup_tidb::{ShardSpec, Tid, Transaction, UpdateBatch};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Options {
    out: String,
    transactions: u64,
    rounds: usize,
    increment: u64,
    deletes: u64,
    shards: Vec<u32>,
    stripe: u64,
    minsup_bp: u64,
    threads: usize,
    reps: usize,
    seed: u64,
    item_skew: f64,
    /// Exit non-zero unless the best shard count beats the flat session's
    /// maintenance-round total by this factor (0.0 disables).
    min_shard_speedup: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_shard.json".to_string(),
        transactions: 50_000,
        rounds: 8,
        increment: 500,
        deletes: 64,
        shards: vec![1, 2, 4, 8],
        stripe: 1024,
        minsup_bp: 200,
        threads: 1,
        reps: 2,
        seed: 1996,
        item_skew: 1.0,
        min_shard_speedup: 0.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--transactions" => {
                opts.transactions = value("--transactions")?
                    .parse()
                    .map_err(|e| format!("--transactions: {e}"))?
            }
            "--rounds" => {
                opts.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--increment" => {
                opts.increment = value("--increment")?
                    .parse()
                    .map_err(|e| format!("--increment: {e}"))?
            }
            "--deletes" => {
                opts.deletes = value("--deletes")?
                    .parse()
                    .map_err(|e| format!("--deletes: {e}"))?
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--shards: {e}")))
                    .collect::<Result<Vec<u32>, String>>()?;
            }
            "--stripe" => {
                opts.stripe = value("--stripe")?
                    .parse()
                    .map_err(|e| format!("--stripe: {e}"))?
            }
            "--minsup-bp" => {
                opts.minsup_bp = value("--minsup-bp")?
                    .parse()
                    .map_err(|e| format!("--minsup-bp: {e}"))?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--item-skew" => {
                opts.item_skew = value("--item-skew")?
                    .parse()
                    .map_err(|e| format!("--item-skew: {e}"))?
            }
            "--min-shard-speedup" => {
                opts.min_shard_speedup = value("--min-shard-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-shard-speedup: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.reps == 0 || opts.threads == 0 || opts.rounds == 0 {
        return Err("--reps, --threads and --rounds must be at least 1".into());
    }
    if opts.shards.is_empty() || opts.shards.contains(&0) {
        return Err("--shards needs explicit counts ≥ 1".into());
    }
    if opts.deletes * opts.rounds as u64 >= opts.transactions {
        return Err("delete schedule would drain the base corpus".into());
    }
    Ok(opts)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The live tid view, sorted, for exact store comparison.
fn live(m: &Maintainer) -> Vec<(Tid, Transaction)> {
    let mut v: Vec<(Tid, Transaction)> = m.store().iter().map(|(t, x)| (t, x.clone())).collect();
    v.sort_unstable_by_key(|&(t, _)| t);
    v
}

/// One round's flat state, snapshotted so every sharded replay can be
/// certified against it without re-running the reference.
struct RefState {
    large: LargeItemsets,
    rules: RuleSet,
    live: Vec<(Tid, Transaction)>,
}

fn snapshot(m: &Maintainer) -> RefState {
    RefState {
        large: m.large_itemsets().clone(),
        rules: m.rules().clone(),
        live: live(m),
    }
}

/// The bit-identity contract the curve is conditioned on.
fn assert_bit_identical(reference: &RefState, sharded: &Maintainer, label: &str) {
    assert!(
        sharded.large_itemsets().same_itemsets(&reference.large),
        "{label}: itemsets/supports diverge: {:?}",
        sharded.large_itemsets().diff(&reference.large)
    );
    assert_eq!(sharded.rules(), &reference.rules, "{label}: rules diverge");
    assert_eq!(live(sharded), reference.live, "{label}: live view diverges");
}

fn builder(opts: &Options) -> fup_core::MaintainerBuilder {
    Maintainer::builder()
        .min_support(MinSupport::basis_points(opts.minsup_bp))
        .min_confidence(MinConfidence::percent(50))
        .backend(CountingBackend::Vertical)
        .threads(opts.threads)
}

/// One timed replay: bootstrap the session, then apply every batch,
/// timing only the `build` and `apply` calls (identity checks and stat
/// collection stay outside the clock).
struct Replay {
    bootstrap: Duration,
    rounds_total: Duration,
    session: Maintainer,
}

fn replay(
    opts: &Options,
    history: &[Transaction],
    batches: &[UpdateBatch],
    spec: Option<ShardSpec>,
    reference: Option<&[RefState]>,
    label: &str,
) -> Replay {
    let mut b = builder(opts);
    if let Some(spec) = spec.clone() {
        b = b.shard_spec(spec);
    }
    let start = Instant::now();
    let mut session = b.build(history.to_vec()).expect("valid shard spec");
    let bootstrap = start.elapsed();
    if let Some(refs) = reference {
        assert_bit_identical(&refs[0], &session, &format!("{label} bootstrap"));
    }
    let mut rounds_total = Duration::ZERO;
    for (round, batch) in batches.iter().enumerate() {
        let start = Instant::now();
        session.apply(batch.clone()).expect("maintenance round");
        rounds_total += start.elapsed();
        if let Some(refs) = reference {
            assert_bit_identical(
                &refs[round + 1],
                &session,
                &format!("{label} round {}", round + 1),
            );
        }
    }
    session.verify_consistency().expect("consistent session");
    Replay {
        bootstrap,
        rounds_total,
        session,
    }
}

struct ShardRow {
    shards: u32,
    bootstrap_ms: f64,
    rounds_ms: f64,
    speedup: f64,
    stats: IndexStats,
    shard_lens: Vec<usize>,
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_shard: {e}");
            std::process::exit(2);
        }
    };
    let params = corpus::t10_i4_d100_d1()
        .with_seed(opts.seed)
        .with_increment(opts.increment);
    let params = GenParams {
        num_transactions: opts.transactions,
        ..params
    };
    eprintln!(
        "generating {} corpus ({} transactions, {} rounds x {} inserts / {} deletes)...",
        params.name(),
        opts.transactions,
        opts.rounds,
        opts.increment,
        opts.deletes,
    );
    let mut gen = QuestGenerator::new(params);
    let history = gen.generate(opts.transactions);
    // Round r inserts a fresh slice of the stream and deletes the next
    // contiguous window of original tids — under the coarse stripe the
    // window lands on one shard, so only that shard's index must rebuild.
    let batches: Vec<UpdateBatch> = (0..opts.rounds)
        .map(|r| UpdateBatch {
            inserts: gen.generate(opts.increment),
            deletes: (r as u64 * opts.deletes..(r as u64 + 1) * opts.deletes)
                .map(Tid)
                .collect(),
        })
        .collect();

    // Flat reference, run once untimed: per-round state snapshots every
    // sharded replay certifies against. (The timed flat replays below
    // re-run the same work; this pass exists only to capture the states.)
    let mut reference: Vec<RefState> = Vec::with_capacity(opts.rounds + 1);
    {
        let mut m = builder(&opts).build(history.clone()).unwrap();
        reference.push(snapshot(&m));
        for batch in &batches {
            m.apply(batch.clone()).unwrap();
            reference.push(snapshot(&m));
        }
    }

    let mut flat_boot = Duration::MAX;
    let mut flat_rounds = Duration::MAX;
    let mut flat_stats = IndexStats {
        builds: 0,
        extends: 0,
        resident: false,
    };
    for rep in 0..opts.reps {
        // Certify only on the first rep; later reps are pure timing.
        let refs = (rep == 0).then_some(reference.as_slice());
        let r = replay(&opts, &history, &batches, None, refs, "flat");
        flat_boot = flat_boot.min(r.bootstrap);
        flat_rounds = flat_rounds.min(r.rounds_total);
        flat_stats = r.session.index_stats();
    }
    eprintln!(
        "flat: bootstrap {:.1} ms, {} rounds in {:.1} ms ({} index builds, {} extends)",
        ms(flat_boot),
        opts.rounds,
        ms(flat_rounds),
        flat_stats.builds,
        flat_stats.extends,
    );

    let mut rows: Vec<ShardRow> = Vec::new();
    for &shards in &opts.shards {
        let spec = ShardSpec::striped_with(shards, opts.stripe);
        let mut boot = Duration::MAX;
        let mut rounds = Duration::MAX;
        let mut stats = flat_stats;
        let mut shard_lens = Vec::new();
        for rep in 0..opts.reps {
            let refs = (rep == 0).then_some(reference.as_slice());
            let r = replay(
                &opts,
                &history,
                &batches,
                Some(spec.clone()),
                refs,
                &format!("{shards} shard(s)"),
            );
            boot = boot.min(r.bootstrap);
            rounds = rounds.min(r.rounds_total);
            stats = r.session.index_stats();
            shard_lens = r.session.store().shard_lens();
        }
        let speedup = flat_rounds.as_secs_f64() / rounds.as_secs_f64().max(1e-9);
        eprintln!(
            "{shards} shard(s): bootstrap {:.1} ms, rounds {:.1} ms -> {speedup:.2}x \
             ({} builds, {} extends, shard lens {:?})",
            ms(boot),
            ms(rounds),
            stats.builds,
            stats.extends,
            shard_lens,
        );
        rows.push(ShardRow {
            shards,
            bootstrap_ms: ms(boot),
            rounds_ms: ms(rounds),
            speedup,
            stats,
            shard_lens,
        });
    }

    // ---- skewed-corpus scenario: identity + shard balance under Zipf --
    // Item popularity is skewed (the datagen knob), tids stay striped, so
    // the shards must remain size-balanced and — far more importantly —
    // the merged mining state must stay bit-identical to flat even when
    // the hot items concentrate on a few ids.
    let skew = {
        let shards = *opts.shards.iter().max().expect("non-empty shard list");
        let skew_params = corpus::t10_i4_d100_d1()
            .with_seed(opts.seed ^ 0x5eed)
            .with_increment(opts.increment)
            .with_item_skew(opts.item_skew);
        let skew_params = GenParams {
            num_transactions: opts.transactions / 4,
            ..skew_params
        };
        let mut gen = QuestGenerator::new(skew_params);
        let history = gen.generate(opts.transactions / 4);
        let batch = UpdateBatch {
            inserts: gen.generate(opts.increment),
            deletes: (0..opts.deletes).map(Tid).collect(),
        };
        let mut flat = builder(&opts).build(history.clone()).unwrap();
        let mut sharded = builder(&opts)
            .shard_spec(ShardSpec::striped_with(shards, opts.stripe))
            .build(history)
            .unwrap();
        flat.apply(batch.clone()).unwrap();
        let start = Instant::now();
        sharded.apply(batch).unwrap();
        let round_ms = ms(start.elapsed());
        assert_bit_identical(&snapshot(&flat), &sharded, "skewed corpus");
        sharded.verify_consistency().unwrap();
        let lens = sharded.store().shard_lens();
        let max = *lens.iter().max().unwrap_or(&0);
        let min = *lens.iter().min().unwrap_or(&0);
        let balance = max as f64 / (min.max(1)) as f64;
        eprintln!(
            "skew {}: {} shard(s) stay balanced ({:?} -> max/min {balance:.2}) and bit-identical",
            opts.item_skew, shards, lens
        );
        (shards, round_ms, lens, balance)
    };

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"shard\",\n",
            "  \"corpus\": \"T10.I4\",\n",
            "  \"transactions\": {},\n",
            "  \"rounds\": {},\n",
            "  \"increment\": {},\n",
            "  \"deletes_per_round\": {},\n",
            "  \"stripe\": {},\n",
            "  \"minsup_bp\": {},\n",
            "  \"threads\": {},\n",
            "  \"reps\": {},\n",
            "  \"note\": \"speedup is scan volume (deletes rebuild only their shard's ",
            "index), so the curve holds on any CPU count; committed baseline recorded ",
            "on the 1-CPU dev container\",\n",
            "  \"flat\": {{ \"bootstrap_ms\": {:.3}, \"rounds_ms\": {:.3}, ",
            "\"index_builds\": {}, \"index_extends\": {} }},\n",
            "  \"rows\": [\n",
        ),
        opts.transactions,
        opts.rounds,
        opts.increment,
        opts.deletes,
        opts.stripe,
        opts.minsup_bp,
        opts.threads,
        opts.reps,
        ms(flat_boot),
        ms(flat_rounds),
        flat_stats.builds,
        flat_stats.extends,
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let lens = r
            .shard_lens
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "    {{ \"shards\": {}, \"bootstrap_ms\": {:.3}, \"rounds_ms\": {:.3}, \
             \"speedup\": {:.3}, \"index_builds\": {}, \"index_extends\": {}, \
             \"shard_lens\": [{lens}] }}{sep}",
            r.shards, r.bootstrap_ms, r.rounds_ms, r.speedup, r.stats.builds, r.stats.extends,
        );
    }
    json.push_str("  ],\n");
    let skew_lens = skew
        .2
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        json,
        concat!(
            "  \"skew\": {{ \"item_skew\": {}, \"shards\": {}, \"round_ms\": {:.3}, ",
            "\"shard_lens\": [{}], \"balance\": {:.3}, \"identical\": true }}\n",
            "}}"
        ),
        opts.item_skew, skew.0, skew.1, skew_lens, skew.3,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bench_shard: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    print!("{json}");

    // Gate: the best shard count must beat the flat session's maintenance
    // rounds — the per-shard index lifecycle is the win the curve claims.
    let best = rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
    fup_bench::cli::require_min_speedup(
        "bench_shard",
        "best shard-count maintenance-round speedup over flat",
        best,
        opts.min_shard_speedup,
    );
}

//! `bench_counting` — smoke benchmark of the parallel support-counting
//! engine, emitting a machine-readable `BENCH_counting.json` for the
//! perf trajectory (CI runs this briefly on every push).
//!
//! Generates a `T10.I4` Quest corpus (default 100 000 transactions, the
//! paper's `D100`), derives the size-2 candidate pool `C₂ =
//! apriori-gen(L₁)` at the given support, and times the same candidate
//! counting pass on the serial engine (`threads = 1`) versus the parallel
//! engine at *every* requested thread count — one invocation emits the
//! complete scaling curve (default 2/4/8), so the CI artifact is the
//! whole record. Counts are asserted identical before any number is
//! reported.
//!
//! ```text
//! bench_counting [--out PATH] [--transactions N] [--threads T1,T2,...]
//!                [--reps R] [--minsup-bp B] [--seed S] [--min-speedup X]
//!                [--assert-threads T]
//! ```

use fup_datagen::{corpus, QuestGenerator};
use fup_mining::counting::ItemCounts;
use fup_mining::engine::{self, EngineConfig};
use fup_mining::gen::apriori_gen;
use fup_mining::{HashTree, Itemset, MinSupport};
use fup_tidb::{TransactionDb, TransactionSource};
use std::time::{Duration, Instant};

struct Options {
    out: String,
    transactions: u64,
    threads: Vec<usize>,
    reps: usize,
    minsup_bp: u64,
    seed: u64,
    /// Exit non-zero unless the gated row's speedup reaches this (0.0
    /// disables; CI multi-core runners assert the ≥2× target with it).
    min_speedup: f64,
    /// Which row `--min-speedup` gates: a thread count from `--threads`
    /// (CI pins 4, matching its 4-vCPU runners), or `None` for the best
    /// row.
    assert_threads: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_counting.json".to_string(),
        transactions: 100_000,
        threads: vec![2, 4, 8],
        reps: 3,
        minsup_bp: 100, // 1 %
        seed: 1996,
        min_speedup: 0.0,
        assert_threads: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--transactions" => {
                opts.transactions = value("--transactions")?
                    .parse()
                    .map_err(|e| format!("--transactions: {e}"))?
            }
            "--threads" => opts.threads = fup_bench::cli::parse_thread_list(&value("--threads")?)?,
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--minsup-bp" => {
                opts.minsup_bp = value("--minsup-bp")?
                    .parse()
                    .map_err(|e| format!("--minsup-bp: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--min-speedup" => {
                opts.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--assert-threads" => {
                opts.assert_threads = Some(
                    value("--assert-threads")?
                        .parse()
                        .map_err(|e| format!("--assert-threads: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    if let Some(t) = opts.assert_threads {
        if !opts.threads.contains(&t) {
            return Err(format!("--assert-threads {t} is not in --threads"));
        }
    }
    Ok(opts)
}

/// Best-of-`reps` wall time for one candidate counting pass. The tree is
/// built (serially) outside the timed region: the benchmark compares the
/// *counting pass* the engine parallelises, not the shared build cost.
fn time_counting(
    db: &TransactionDb,
    candidates: &[Itemset],
    config: &EngineConfig,
    reps: usize,
) -> (Duration, Vec<u64>) {
    let mut best = Duration::MAX;
    let mut counts = Vec::new();
    for _ in 0..reps {
        let mut tree = HashTree::build(candidates.to_vec());
        let start = Instant::now();
        engine::count_source_into(&mut tree, db, config);
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        counts = tree.counts().to_vec();
    }
    (best, counts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_counting: {e}");
            std::process::exit(2);
        }
    };

    // The paper's T10.I4 shape at the requested size.
    let params = corpus::t10_i4_d100_d1()
        .with_seed(opts.seed)
        .with_increment(1);
    let params = fup_datagen::GenParams {
        num_transactions: opts.transactions,
        ..params
    };
    eprintln!(
        "generating {} corpus ({} transactions)...",
        params.name(),
        opts.transactions
    );
    let db = QuestGenerator::new(params).generate_db(opts.transactions);
    let total_items = db.total_items();

    // C₂ from L₁, like pass 2 of every miner.
    let minsup = MinSupport::basis_points(opts.minsup_bp);
    let item_counts = ItemCounts::count_with(&db, &EngineConfig::serial());
    let level: Vec<Itemset> = item_counts
        .iter_nonzero()
        .filter(|&(_, c)| minsup.is_large(c, db.num_transactions()))
        .map(|(item, _)| Itemset::single(item))
        .collect();
    let candidates = apriori_gen(&level);
    eprintln!(
        "|L1| = {}, |C2| = {} at minsup {minsup}",
        level.len(),
        candidates.len()
    );
    if candidates.is_empty() {
        eprintln!("candidate pool is empty; lower --minsup-bp");
        std::process::exit(2);
    }

    let (serial_time, serial_counts) =
        time_counting(&db, &candidates, &EngineConfig::serial(), opts.reps);
    let tps = |d: Duration| opts.transactions as f64 / d.as_secs_f64().max(1e-9);

    // One row per requested thread count: the complete scaling curve in a
    // single invocation (and a single JSON artifact).
    let mut rows = String::new();
    let mut gated_speedup = 0.0f64;
    for (i, &threads) in opts.threads.iter().enumerate() {
        let cfg = EngineConfig::with_threads(threads);
        let (parallel_time, parallel_counts) = time_counting(&db, &candidates, &cfg, opts.reps);
        assert_eq!(
            serial_counts, parallel_counts,
            "{threads}-thread counts diverged from serial"
        );
        let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9);
        match opts.assert_threads {
            // Gate exactly the pinned row (CI pins its core count), so a
            // regression there cannot hide behind a faster sibling row.
            Some(t) if t == threads => gated_speedup = speedup,
            Some(_) => {}
            None => gated_speedup = gated_speedup.max(speedup),
        }
        let sep = if i + 1 < opts.threads.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{ \"threads\": {threads}, \"ms\": {:.3}, \"tps\": {:.0}, \"speedup\": {speedup:.3} }}{sep}\n",
            parallel_time.as_secs_f64() * 1e3,
            tps(parallel_time),
        ));
        eprintln!(
            "serial {:.1} ms vs {threads} threads {:.1} ms -> {speedup:.2}x",
            serial_time.as_secs_f64() * 1e3,
            parallel_time.as_secs_f64() * 1e3,
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"counting\",\n",
            "  \"corpus\": \"T10.I4\",\n",
            "  \"transactions\": {},\n",
            "  \"total_items\": {},\n",
            "  \"minsup_bp\": {},\n",
            "  \"l1\": {},\n",
            "  \"candidates\": {},\n",
            "  \"reps\": {},\n",
            "  \"serial_ms\": {:.3},\n",
            "  \"serial_tps\": {:.0},\n",
            "  \"rows\": [\n{}  ]\n",
            "}}\n"
        ),
        opts.transactions,
        total_items,
        opts.minsup_bp,
        level.len(),
        candidates.len(),
        opts.reps,
        serial_time.as_secs_f64() * 1e3,
        tps(serial_time),
        rows,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bench_counting: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    print!("{json}");
    let gate_label = match opts.assert_threads {
        Some(t) => format!("{t}-thread speedup"),
        None => "best speedup".to_string(),
    };
    fup_bench::cli::require_min_speedup(
        "bench_counting",
        &gate_label,
        gated_speedup,
        opts.min_speedup,
    );
}

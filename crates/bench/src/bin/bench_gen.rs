//! `bench_gen` — smoke benchmark of candidate generation (`apriori-gen`
//! join+prune), emitting a machine-readable `BENCH_gen.json` for the perf
//! trajectory (CI runs this briefly on every push).
//!
//! Synthesises a clustered `L₂` (items partitioned into clusters, all
//! within-cluster pairs minus a deterministic sliver so the prune has
//! real work to reject) and times `C₃` generation three ways:
//!
//! 1. the pre-flat reference (`apriori_gen_reference`: sorted refs +
//!    `HashSet` prune, one allocation per joined pair),
//! 2. the flat prefix-indexed implementation, serial
//!    (`GenConfig::serial()`),
//! 3. the flat implementation at each requested thread count.
//!
//! All outputs are asserted identical (order included) before any number
//! is reported.
//!
//! ```text
//! bench_gen [--out PATH] [--clusters N] [--cluster-size M]
//!           [--threads T1,T2,...] [--reps R]
//!           [--min-speedup X] [--min-flat-speedup Y]
//! ```

use fup_mining::gen::{self, apriori_gen_reference, clustered_l2, GenConfig};
use fup_mining::Itemset;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Options {
    out: String,
    clusters: u32,
    cluster_size: u32,
    drop_mod: u32,
    threads: Vec<usize>,
    reps: usize,
    /// Exit non-zero unless the best parallel speedup over the flat
    /// serial path reaches this (0.0 disables; the CI bench-smoke job
    /// asserts the ISSUE's ≥1.5× @ 4 threads target with it).
    min_speedup: f64,
    /// Exit non-zero unless the flat serial path beats the pre-flat
    /// reference by this factor (0.0 disables).
    min_flat_speedup: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_gen.json".to_string(),
        clusters: 105,
        cluster_size: 40,
        drop_mod: 3,
        threads: vec![2, 4, 8],
        reps: 3,
        min_speedup: 0.0,
        min_flat_speedup: 0.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--clusters" => {
                opts.clusters = value("--clusters")?
                    .parse()
                    .map_err(|e| format!("--clusters: {e}"))?
            }
            "--cluster-size" => {
                opts.cluster_size = value("--cluster-size")?
                    .parse()
                    .map_err(|e| format!("--cluster-size: {e}"))?
            }
            "--drop-mod" => {
                opts.drop_mod = value("--drop-mod")?
                    .parse()
                    .map_err(|e| format!("--drop-mod: {e}"))?
            }
            "--threads" => opts.threads = fup_bench::cli::parse_thread_list(&value("--threads")?)?,
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--min-speedup" => {
                opts.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--min-flat-speedup" => {
                opts.min_flat_speedup = value("--min-flat-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-flat-speedup: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(opts)
}

fn best_of<F: FnMut() -> Vec<Itemset>>(reps: usize, mut f: F) -> (Duration, Vec<Itemset>) {
    let mut best = Duration::MAX;
    let mut out = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let result = f();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        out = result;
    }
    (best, out)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_gen: {e}");
            std::process::exit(2);
        }
    };

    let l2 = clustered_l2(opts.clusters, opts.cluster_size, opts.drop_mod.max(2));
    eprintln!(
        "|L2| = {} ({} clusters of {} items, 1/{} dropped)",
        l2.len(),
        opts.clusters,
        opts.cluster_size,
        opts.drop_mod.max(2)
    );

    let (reference_time, reference_out) = best_of(opts.reps, || apriori_gen_reference(&l2));
    let (flat_time, flat_out) = best_of(opts.reps, || {
        gen::apriori_gen_with(&l2, &GenConfig::serial())
    });
    assert_eq!(
        flat_out, reference_out,
        "flat apriori_gen diverged from the reference"
    );
    let flat_speedup = reference_time.as_secs_f64() / flat_time.as_secs_f64().max(1e-9);

    let mut rows = String::new();
    let mut best_parallel_speedup = 0.0f64;
    for (i, &threads) in opts.threads.iter().enumerate() {
        let (t, out) = best_of(opts.reps, || {
            gen::apriori_gen_with(&l2, &GenConfig::with_threads(threads))
        });
        assert_eq!(out, reference_out, "{threads}-thread output diverged");
        let speedup = flat_time.as_secs_f64() / t.as_secs_f64().max(1e-9);
        best_parallel_speedup = best_parallel_speedup.max(speedup);
        let sep = if i + 1 < opts.threads.len() { "," } else { "" };
        let _ = writeln!(
            rows,
            "    {{ \"threads\": {threads}, \"ms\": {:.3}, \"speedup_vs_flat_serial\": {speedup:.3} }}{sep}",
            t.as_secs_f64() * 1e3,
        );
        eprintln!(
            "flat {threads} threads: {:.1} ms ({speedup:.2}x vs flat serial)",
            t.as_secs_f64() * 1e3
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"gen\",\n",
            "  \"l2\": {},\n",
            "  \"candidates\": {},\n",
            "  \"reps\": {},\n",
            "  \"reference_ms\": {:.3},\n",
            "  \"flat_serial_ms\": {:.3},\n",
            "  \"flat_serial_speedup\": {:.3},\n",
            "  \"rows\": [\n{}  ]\n",
            "}}\n"
        ),
        l2.len(),
        reference_out.len(),
        opts.reps,
        reference_time.as_secs_f64() * 1e3,
        flat_time.as_secs_f64() * 1e3,
        flat_speedup,
        rows,
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bench_gen: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!(
        "reference {:.1} ms vs flat serial {:.1} ms -> {flat_speedup:.2}x ({})",
        reference_time.as_secs_f64() * 1e3,
        flat_time.as_secs_f64() * 1e3,
        opts.out
    );
    fup_bench::cli::require_min_speedup(
        "bench_gen",
        "flat serial speedup",
        flat_speedup,
        opts.min_flat_speedup,
    );
    fup_bench::cli::require_min_speedup(
        "bench_gen",
        "parallel speedup",
        best_parallel_speedup,
        opts.min_speedup,
    );
}

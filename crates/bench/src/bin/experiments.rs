//! `experiments` — regenerates every table and figure of the paper's §4.
//!
//! ```text
//! experiments [ids...] [--scale N] [--seed S]
//!
//!   ids       any of: table1 fig2 fig3 sec4-4a fig4 sec4-5 sec4-6 ablation
//!             scanvol fup2perf all
//!             (default: all)
//!   --scale N run workloads at 1/N of the paper's sizes (default 10;
//!             use --scale 1 for the full published configuration)
//!   --seed S  generator seed (default 1996)
//! ```
//!
//! Build with `--release`; the timed ratios are meaningless in debug.

use fup_bench::{ablation, fig2, fig3, fig4, fup2perf, scanvol, sec4_4, sec4_5, sec4_6, table1};
use fup_datagen::GenParams;

struct Options {
    ids: Vec<String>,
    scale: u64,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut ids = Vec::new();
    let mut scale = 10u64;
    let mut seed = 1996u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if scale == 0 {
                    return Err("scale must be positive".into());
                }
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: experiments [ids...] [--scale N] [--seed S]".into());
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = [
            "table1", "fig2", "fig3", "sec4-4a", "fig4", "sec4-5", "sec4-6", "ablation", "scanvol",
            "fup2perf",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Ok(Options { ids, scale, seed })
}

fn banner(title: &str, shape: &str) {
    println!("\n=== {title} ===");
    if !shape.is_empty() {
        println!("    {shape}");
    }
    println!();
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "FUP experiment harness — scale 1/{} of paper sizes, seed {}",
        opts.scale, opts.seed
    );
    if cfg!(debug_assertions) {
        eprintln!("WARNING: debug build; timing ratios will be distorted. Use --release.");
    }

    for id in &opts.ids {
        match id.as_str() {
            "table1" => {
                banner("Table 1: synthetic workload parameters (paper values)", "");
                println!("{}", table1::run(&GenParams::default()));
            }
            "fig2" => {
                banner(
                    "Figure 2: performance ratio vs minimum support (T10.I4.D100.d1)",
                    fig2::PAPER_SHAPE,
                );
                let rows = fig2::run(opts.scale, opts.seed);
                println!("{}", fig2::render(&rows));
            }
            "fig3" => {
                banner(
                    "Figure 3: candidate-set reduction (T10.I4.D100.d1)",
                    fig3::PAPER_SHAPE,
                );
                let rows = fig3::run(opts.scale, opts.seed);
                println!("{}", fig3::render(&rows));
            }
            "sec4-4a" => {
                banner(
                    "Sec 4.4: speed-up vs increment size (T10.I4.D100.dm, m=1K/5K/10K)",
                    sec4_4::PAPER_SHAPE,
                );
                let rows = sec4_4::run(opts.scale, opts.seed);
                println!("{}", sec4_4::render(&rows));
            }
            "fig4" => {
                banner(
                    "Figure 4: speed-up vs increment size (T10.I4.D100.dm, m=15K..350K)",
                    fig4::PAPER_SHAPE,
                );
                let rows = fig4::run(opts.scale, opts.seed);
                let d_original = 100_000 / opts.scale;
                println!("{}", fig4::render_with_d(&rows, d_original));
            }
            "sec4-5" => {
                banner("Sec 4.5: overhead of FUP", sec4_5::PAPER_SHAPE);
                let rows = sec4_5::run(opts.scale, opts.seed);
                println!("{}", sec4_5::render(&rows));
            }
            "sec4-6" => {
                banner(
                    "Sec 4.6: scale-up to 1M transactions (T10.I4.D1000.d10)",
                    sec4_6::PAPER_SHAPE,
                );
                let rows = sec4_6::run(opts.scale, opts.seed);
                println!("{}", sec4_6::render(&rows));
            }
            "ablation" => {
                banner(
                    "Ablation: contribution of each FUP optimisation (T10.I4.D100.d10, s=1%)",
                    "",
                );
                let rows = ablation::run(opts.scale, opts.seed);
                println!("{}", ablation::render(&rows));
            }
            "scanvol" => {
                banner(
                    "Scan volume: transactions read from DB+db (extension)",
                    scanvol::PAPER_SHAPE,
                );
                let rows = scanvol::run(opts.scale, opts.seed);
                println!("{}", scanvol::render(&rows));
            }
            "fup2perf" => {
                banner(
                    "FUP2: maintenance under deletion churn (extension)",
                    fup2perf::PAPER_SHAPE,
                );
                let rows = fup2perf::run(opts.scale, opts.seed);
                println!("{}", fup2perf::render(&rows));
            }
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
    }
}

//! `bench_cluster` — process-per-shard cluster runtime benchmark,
//! emitting a machine-readable `BENCH_cluster.json` for the perf
//! trajectory (CI runs this briefly on every push).
//!
//! Replays the same churn workload `bench_shard` uses — a `T10.I4` base
//! corpus followed by N update rounds of fresh inserts plus a
//! contiguous window of deletes — through three sessions per shard
//! count: the flat [`Maintainer`] reference, the in-process tid-range
//! sharded session (the `bench_shard` baseline this row is compared
//! against), and the [`Cluster`] runtime, where each shard is a worker
//! thread with its own WAL + checkpoint namespace, candidate counts
//! travel as CRC-framed RPC messages, and every round commits
//! two-phase. After **every** cluster round the published state is
//! certified **bit-identical** to the flat reference (itemsets with
//! supports, rules with counts, live size) before any number is
//! reported — the curve never certifies a broken merge.
//!
//! What the row measures is the *cost of the process seam*: the cluster
//! does the same counting work as the in-process sharded session plus
//! message encode/decode, per-worker WAL appends, and two-phase
//! delivery. `--max-rpc-overhead` gates that multiple (cluster rounds
//! over in-process sharded rounds at the same shard count, best rep
//! each; 0 disables) so a protocol or coordination regression fails the
//! build instead of shipping silently.
//!
//! ```text
//! bench_cluster [--out PATH] [--transactions N] [--rounds R]
//!               [--increment D] [--deletes K] [--shards S1,S2,..]
//!               [--stripe W] [--minsup-bp B] [--reps R] [--seed S]
//!               [--max-rpc-overhead X]
//! ```

use fup_core::{Cluster, FupConfig, Maintainer};
use fup_datagen::{corpus, GenParams, QuestGenerator};
use fup_mining::{CountingBackend, LargeItemsets, MinConfidence, MinSupport, RuleSet};
use fup_tidb::{DurableStorage, MemStorage, ShardSpec, Tid, Transaction, UpdateBatch};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    out: String,
    transactions: u64,
    rounds: usize,
    increment: u64,
    deletes: u64,
    shards: Vec<u32>,
    stripe: u64,
    minsup_bp: u64,
    reps: usize,
    seed: u64,
    /// Exit non-zero if cluster rounds exceed the in-process sharded
    /// rounds by more than this factor at any shard count (0 disables).
    max_rpc_overhead: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_cluster.json".to_string(),
        transactions: 20_000,
        rounds: 6,
        increment: 400,
        deletes: 48,
        shards: vec![1, 2, 4],
        stripe: 1024,
        minsup_bp: 200,
        reps: 2,
        seed: 1996,
        max_rpc_overhead: 0.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--transactions" => {
                opts.transactions = value("--transactions")?
                    .parse()
                    .map_err(|e| format!("--transactions: {e}"))?
            }
            "--rounds" => {
                opts.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--increment" => {
                opts.increment = value("--increment")?
                    .parse()
                    .map_err(|e| format!("--increment: {e}"))?
            }
            "--deletes" => {
                opts.deletes = value("--deletes")?
                    .parse()
                    .map_err(|e| format!("--deletes: {e}"))?
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--shards: {e}")))
                    .collect::<Result<Vec<u32>, String>>()?;
            }
            "--stripe" => {
                opts.stripe = value("--stripe")?
                    .parse()
                    .map_err(|e| format!("--stripe: {e}"))?
            }
            "--minsup-bp" => {
                opts.minsup_bp = value("--minsup-bp")?
                    .parse()
                    .map_err(|e| format!("--minsup-bp: {e}"))?
            }
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-rpc-overhead" => {
                opts.max_rpc_overhead = value("--max-rpc-overhead")?
                    .parse()
                    .map_err(|e| format!("--max-rpc-overhead: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.reps == 0 || opts.rounds == 0 {
        return Err("--reps and --rounds must be at least 1".into());
    }
    if opts.shards.is_empty() || opts.shards.contains(&0) {
        return Err("--shards needs explicit counts ≥ 1".into());
    }
    if opts.deletes * opts.rounds as u64 >= opts.transactions {
        return Err("delete schedule would drain the base corpus".into());
    }
    Ok(opts)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One round's flat state, snapshotted so every replay can be certified
/// against it without re-running the reference.
struct RefState {
    large: LargeItemsets,
    rules: RuleSet,
    live: u64,
}

fn snapshot(m: &Maintainer) -> RefState {
    RefState {
        large: m.large_itemsets().clone(),
        rules: m.rules().clone(),
        live: m.len() as u64,
    }
}

/// The bit-identity contract the curve is conditioned on.
fn assert_cluster_identical(reference: &RefState, cluster: &Cluster, label: &str) {
    let snap = cluster.snapshot();
    assert!(
        snap.large_itemsets().same_itemsets(&reference.large),
        "{label}: itemsets/supports diverge: {:?}",
        snap.large_itemsets().diff(&reference.large)
    );
    assert_eq!(snap.rules(), &reference.rules, "{label}: rules diverge");
    assert_eq!(
        cluster.num_transactions(),
        reference.live,
        "{label}: live size diverges"
    );
}

fn builder(opts: &Options) -> fup_core::MaintainerBuilder {
    Maintainer::builder()
        .min_support(MinSupport::basis_points(opts.minsup_bp))
        .min_confidence(MinConfidence::percent(50))
        .backend(CountingBackend::Vertical)
}

fn mem_storages(n: usize) -> Vec<Arc<dyn DurableStorage>> {
    (0..n)
        .map(|_| Arc::new(MemStorage::new()) as Arc<dyn DurableStorage>)
        .collect()
}

/// One timed in-process replay (flat or sharded), timing only `build`
/// and `apply`.
fn replay_inproc(
    opts: &Options,
    history: &[Transaction],
    batches: &[UpdateBatch],
    spec: Option<ShardSpec>,
) -> (Duration, Duration) {
    let mut b = builder(opts);
    if let Some(spec) = spec {
        b = b.shard_spec(spec);
    }
    let start = Instant::now();
    let mut session = b.build(history.to_vec()).expect("valid shard spec");
    let bootstrap = start.elapsed();
    let mut rounds_total = Duration::ZERO;
    for batch in batches {
        let start = Instant::now();
        session.apply(batch.clone()).expect("maintenance round");
        rounds_total += start.elapsed();
    }
    (bootstrap, rounds_total)
}

/// One timed cluster replay; certifies every round against the flat
/// reference when `reference` is given (first rep), outside the clock.
fn replay_cluster(
    opts: &Options,
    history: &[Transaction],
    batches: &[UpdateBatch],
    shards: u32,
    reference: Option<&[RefState]>,
) -> (Duration, Duration) {
    let spec = ShardSpec::striped_with(shards, opts.stripe);
    let label = format!("{shards} worker(s)");
    let start = Instant::now();
    let mut cluster = Cluster::bootstrap(
        spec,
        mem_storages(shards as usize),
        history.to_vec(),
        MinSupport::basis_points(opts.minsup_bp),
        MinConfidence::percent(50),
        FupConfig::default(),
    )
    .expect("bootstrap cluster");
    let bootstrap = start.elapsed();
    if let Some(refs) = reference {
        assert_cluster_identical(&refs[0], &cluster, &format!("{label} bootstrap"));
    }
    let mut rounds_total = Duration::ZERO;
    for (round, batch) in batches.iter().enumerate() {
        let start = Instant::now();
        cluster.apply(batch.clone()).expect("cluster round");
        rounds_total += start.elapsed();
        if let Some(refs) = reference {
            assert_cluster_identical(
                &refs[round + 1],
                &cluster,
                &format!("{label} round {}", round + 1),
            );
        }
    }
    cluster.shutdown();
    (bootstrap, rounds_total)
}

struct Row {
    shards: u32,
    bootstrap_ms: f64,
    rounds_ms: f64,
    inproc_rounds_ms: f64,
    rpc_overhead: f64,
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_cluster: {e}");
            std::process::exit(2);
        }
    };
    let params = corpus::t10_i4_d100_d1()
        .with_seed(opts.seed)
        .with_increment(opts.increment);
    let params = GenParams {
        num_transactions: opts.transactions,
        ..params
    };
    eprintln!(
        "generating {} corpus ({} transactions, {} rounds x {} inserts / {} deletes)...",
        params.name(),
        opts.transactions,
        opts.rounds,
        opts.increment,
        opts.deletes,
    );
    let mut gen = QuestGenerator::new(params);
    let history = gen.generate(opts.transactions);
    let batches: Vec<UpdateBatch> = (0..opts.rounds)
        .map(|r| UpdateBatch {
            inserts: gen.generate(opts.increment),
            deletes: (r as u64 * opts.deletes..(r as u64 + 1) * opts.deletes)
                .map(Tid)
                .collect(),
        })
        .collect();

    // Flat reference, run once untimed: per-round state snapshots every
    // cluster replay certifies against.
    let mut reference: Vec<RefState> = Vec::with_capacity(opts.rounds + 1);
    {
        let mut m = builder(&opts).build(history.clone()).unwrap();
        reference.push(snapshot(&m));
        for batch in &batches {
            m.apply(batch.clone()).unwrap();
            reference.push(snapshot(&m));
        }
    }

    let mut flat_boot = Duration::MAX;
    let mut flat_rounds = Duration::MAX;
    for _ in 0..opts.reps {
        let (b, r) = replay_inproc(&opts, &history, &batches, None);
        flat_boot = flat_boot.min(b);
        flat_rounds = flat_rounds.min(r);
    }
    eprintln!(
        "flat: bootstrap {:.1} ms, {} rounds in {:.1} ms",
        ms(flat_boot),
        opts.rounds,
        ms(flat_rounds),
    );

    let mut rows: Vec<Row> = Vec::new();
    for &shards in &opts.shards {
        let spec = ShardSpec::striped_with(shards, opts.stripe);
        let mut inproc_rounds = Duration::MAX;
        for _ in 0..opts.reps {
            let (_, r) = replay_inproc(&opts, &history, &batches, Some(spec.clone()));
            inproc_rounds = inproc_rounds.min(r);
        }
        let mut boot = Duration::MAX;
        let mut rounds = Duration::MAX;
        for rep in 0..opts.reps {
            // Certify only on the first rep; later reps are pure timing.
            let refs = (rep == 0).then_some(reference.as_slice());
            let (b, r) = replay_cluster(&opts, &history, &batches, shards, refs);
            boot = boot.min(b);
            rounds = rounds.min(r);
        }
        let rpc_overhead = rounds.as_secs_f64() / inproc_rounds.as_secs_f64().max(1e-9);
        eprintln!(
            "{shards} worker(s): bootstrap {:.1} ms, rounds {:.1} ms \
             (in-process sharded baseline {:.1} ms -> {rpc_overhead:.2}x RPC overhead)",
            ms(boot),
            ms(rounds),
            ms(inproc_rounds),
        );
        rows.push(Row {
            shards,
            bootstrap_ms: ms(boot),
            rounds_ms: ms(rounds),
            inproc_rounds_ms: ms(inproc_rounds),
            rpc_overhead,
        });
    }

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"cluster\",\n",
            "  \"corpus\": \"T10.I4\",\n",
            "  \"transactions\": {},\n",
            "  \"rounds\": {},\n",
            "  \"increment\": {},\n",
            "  \"deletes_per_round\": {},\n",
            "  \"stripe\": {},\n",
            "  \"minsup_bp\": {},\n",
            "  \"reps\": {},\n",
            "  \"note\": \"rpc_overhead is cluster rounds over the in-process sharded ",
            "rounds at the same shard count — the cost of framed messages, per-worker ",
            "WALs and two-phase delivery; every reported cluster round was certified ",
            "bit-identical to the flat session in-run\",\n",
            "  \"flat\": {{ \"bootstrap_ms\": {:.3}, \"rounds_ms\": {:.3} }},\n",
            "  \"rows\": [\n",
        ),
        opts.transactions,
        opts.rounds,
        opts.increment,
        opts.deletes,
        opts.stripe,
        opts.minsup_bp,
        opts.reps,
        ms(flat_boot),
        ms(flat_rounds),
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"shards\": {}, \"bootstrap_ms\": {:.3}, \"rounds_ms\": {:.3}, \
             \"inproc_rounds_ms\": {:.3}, \"rpc_overhead\": {:.3}, \"identical\": true }}{sep}",
            r.shards, r.bootstrap_ms, r.rounds_ms, r.inproc_rounds_ms, r.rpc_overhead,
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bench_cluster: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    print!("{json}");

    // Gate: the process seam must stay a bounded tax over the in-process
    // sharded baseline at every shard count.
    if opts.max_rpc_overhead > 0.0 {
        let worst = rows.iter().map(|r| r.rpc_overhead).fold(0.0, f64::max);
        if worst > opts.max_rpc_overhead {
            eprintln!(
                "bench_cluster: FAIL: worst RPC overhead {worst:.2}x exceeds \
                 --max-rpc-overhead {:.2}x",
                opts.max_rpc_overhead
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_cluster: OK: worst RPC overhead {worst:.2}x within {:.2}x",
            opts.max_rpc_overhead
        );
    }
}

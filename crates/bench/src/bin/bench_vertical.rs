//! `bench_vertical` — backend comparison benchmark, emitting a
//! machine-readable `BENCH_vertical.json` for the perf trajectory (CI
//! runs this briefly on every push).
//!
//! Generates a `T10.I4` Quest corpus and, at each requested support
//! level, walks the Apriori level structure pass by pass (`C₂`, `C₃`, …),
//! timing the same candidate counting three ways:
//!
//! 1. **hash tree** — build + one full counting scan (the per-pass cost
//!    the classic backend pays every level),
//! 2. **vertical** — tid-list intersections over the [`VerticalIndex`];
//!    the one-time index build is timed separately and charged to the
//!    first candidate pass (exactly where a fixed-vertical miner pays
//!    it),
//! 3. **auto** — whichever of the two [`CountingBackend::Auto`] resolves
//!    for the pass's profile, charged like the fixed backend it picks.
//!
//! Counts are asserted identical across backends before any number is
//! reported. `--min-speedup` gates the *deep passes* (k ≥ 3): each must
//! beat the hash tree by the given factor. `--max-auto-loss` gates the
//! adaptive policy: on every pass, auto must stay within the given
//! fraction of the better fixed backend.
//!
//! A second scenario measures **index reuse** — the maintenance-session
//! pattern where one persistent [`VerticalIndex`] is `extend`ed with each
//! of N successive increments, against rebuilding the index from scratch
//! every round. Per-item supports and candidate counts are asserted
//! identical between the two indexes; `--min-reuse-speedup` gates the
//! cumulative ratio (CI asserts 1.0: reuse must never be slower).
//!
//! A third micro-row (`dense_pair` in the JSON) times the pure
//! dense∩dense kernel — every pair of the 40 most frequent items, with
//! all tid-lists forced into the bitset representation — recording the
//! word throughput of the 4-word-unrolled AND+popcount loop.
//!
//! ```text
//! bench_vertical [--out PATH] [--transactions N] [--minsup-bp B1,B2,..]
//!                [--threads T] [--reps R] [--seed S]
//!                [--min-speedup X] [--max-auto-loss F]
//!                [--reuse-rounds N] [--reuse-increment D]
//!                [--min-reuse-speedup X]
//! ```

use fup_datagen::{corpus, QuestGenerator};
use fup_mining::counting::ItemCounts;
use fup_mining::engine::{self, EngineConfig};
use fup_mining::gen::apriori_gen_flat;
use fup_mining::vertical::{self, CountingBackend, PassProfile, ResolvedBackend, VerticalIndex};
use fup_mining::{ItemsetTable, MinSupport};
use fup_tidb::{ItemId, TransactionDb, TransactionSource};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Options {
    out: String,
    transactions: u64,
    minsup_bp: Vec<u64>,
    threads: usize,
    reps: usize,
    seed: u64,
    /// Exit non-zero unless every deep pass (k ≥ 3) beats the hash tree
    /// by this factor (0.0 disables; the ISSUE's acceptance target is 2.0
    /// single-thread).
    min_speedup: f64,
    /// Exit non-zero if auto loses more than this fraction to the better
    /// fixed backend on any pass (negative disables; the acceptance
    /// target is 0.10).
    max_auto_loss: f64,
    /// Rounds of the index-reuse scenario (successive increments applied
    /// to one persistent index vs a per-round rebuild).
    reuse_rounds: usize,
    /// Increment size per reuse round (0 = transactions / 50).
    reuse_increment: u64,
    /// Exit non-zero unless the persistent extend path beats the
    /// per-round rebuild by this factor over the whole scenario (0.0
    /// disables; CI asserts 1.0 — reuse must never be slower).
    min_reuse_speedup: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_vertical.json".to_string(),
        transactions: 100_000,
        minsup_bp: vec![100, 200],
        threads: 1,
        reps: 2,
        seed: 1996,
        min_speedup: 0.0,
        max_auto_loss: -1.0,
        reuse_rounds: 6,
        reuse_increment: 0,
        min_reuse_speedup: 0.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--transactions" => {
                opts.transactions = value("--transactions")?
                    .parse()
                    .map_err(|e| format!("--transactions: {e}"))?
            }
            "--minsup-bp" => {
                opts.minsup_bp = value("--minsup-bp")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--minsup-bp: {e}")))
                    .collect::<Result<Vec<u64>, String>>()?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--min-speedup" => {
                opts.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--max-auto-loss" => {
                opts.max_auto_loss = value("--max-auto-loss")?
                    .parse()
                    .map_err(|e| format!("--max-auto-loss: {e}"))?
            }
            "--reuse-rounds" => {
                opts.reuse_rounds = value("--reuse-rounds")?
                    .parse()
                    .map_err(|e| format!("--reuse-rounds: {e}"))?
            }
            "--reuse-increment" => {
                opts.reuse_increment = value("--reuse-increment")?
                    .parse()
                    .map_err(|e| format!("--reuse-increment: {e}"))?
            }
            "--min-reuse-speedup" => {
                opts.min_reuse_speedup = value("--min-reuse-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-reuse-speedup: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.reps == 0 || opts.threads == 0 {
        return Err("--reps and --threads must be at least 1".into());
    }
    if opts.minsup_bp.is_empty() {
        return Err("--minsup-bp needs at least one level".into());
    }
    Ok(opts)
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if elapsed < best {
            best = elapsed;
        }
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct PassRow {
    minsup_bp: u64,
    k: usize,
    candidates: usize,
    large: usize,
    hash_ms: f64,
    vertical_ms: f64,
    build_ms: f64,
    speedup: f64,
    auto_backend: &'static str,
    auto_ms: f64,
    auto_loss: f64,
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_vertical: {e}");
            std::process::exit(2);
        }
    };
    let params = corpus::t10_i4_d100_d1()
        .with_seed(opts.seed)
        .with_increment(1);
    let params = fup_datagen::GenParams {
        num_transactions: opts.transactions,
        ..params
    };
    eprintln!(
        "generating {} corpus ({} transactions)...",
        params.name(),
        opts.transactions
    );
    let reuse_params = params.clone().with_seed(opts.seed ^ 0x5eed);
    let db: TransactionDb = QuestGenerator::new(params).generate_db(opts.transactions);
    let n = db.num_transactions();
    let cfg = EngineConfig::with_threads(opts.threads);

    let item_counts = ItemCounts::count_with(&db, &cfg);
    let mut rows: Vec<PassRow> = Vec::new();
    let mut index_bytes = (0usize, 0usize);

    for &bp in &opts.minsup_bp {
        let minsup = MinSupport::basis_points(bp);
        let mut level_items: Vec<ItemId> = Vec::new();
        let mut freq_occurrences = 0u64;
        for (item, count) in item_counts.iter_nonzero() {
            if minsup.is_large(count, n) {
                level_items.push(item);
                freq_occurrences += count;
            }
        }
        let residue = freq_occurrences as f64 / n.max(1) as f64;
        let keep = vertical::item_bitmap(level_items.iter().copied());
        let mut level = ItemsetTable::from_flat_rows(1, level_items);
        eprintln!(
            "minsup {minsup}: |L1| = {}, residue {residue:.2}",
            level.len()
        );

        // One index per support level (the L₁ filter depends on it),
        // built when the first pass needs it — its cost lands on that
        // pass's vertical (and auto) totals, as in a real miner run.
        let mut index: Option<VerticalIndex> = None;
        // Remembered so auto is charged the build at whichever pass it
        // first engages, even if that is deeper than the pass the bench
        // built the index on.
        let mut level_build = Duration::ZERO;
        // Auto engagement is sticky in the miners (the index is already
        // paid for); the bench models the same policy.
        let mut auto_engaged = false;
        let mut k = 2;
        while !level.is_empty() {
            let candidates = apriori_gen_flat(&level, &cfg.gen);
            if candidates.is_empty() {
                break;
            }
            let (hash_time, hash_counts) = best_of(opts.reps, || {
                engine::count_table_with(&db, &candidates, &cfg)
            });

            let mut build_time = Duration::ZERO;
            if index.is_none() {
                let (bt, idx) = best_of(opts.reps, || VerticalIndex::build(&db, Some(&keep), &cfg));
                build_time = bt;
                level_build = bt;
                index_bytes = idx.arena_bytes();
                index = Some(idx);
            }
            let idx = index.as_ref().expect("index built above");
            let (vertical_time, vertical_counts) =
                best_of(opts.reps, || idx.count_rows(&candidates, &cfg));
            assert_eq!(
                hash_counts, vertical_counts,
                "backends diverged at {bp}bp k={k}"
            );

            // Auto pays whichever backend it resolves, including the
            // index build on the pass that first engages vertical.
            let auto = if auto_engaged {
                ResolvedBackend::Vertical
            } else {
                CountingBackend::Auto.resolve(&PassProfile {
                    k,
                    candidates: candidates.len(),
                    transactions: n,
                    residue,
                })
            };
            let (auto_backend, auto_choice, auto_time) = match auto {
                ResolvedBackend::HashTree => ("hashtree", hash_time, hash_time),
                ResolvedBackend::Vertical => {
                    // A real Auto run pays the index build at its
                    // engagement pass, wherever that falls.
                    let charged = if auto_engaged {
                        vertical_time
                    } else {
                        vertical_time + level_build
                    };
                    auto_engaged = true;
                    ("vertical", vertical_time, charged)
                }
            };
            // The loss gate grades the per-pass *choice* build-free: the
            // index build is a one-time charge whose pass it lands on
            // depends on the engagement schedule, not on whether the
            // choice was right (the reported ms columns keep the charge).
            let better = hash_time.min(vertical_time);
            let auto_loss =
                (auto_choice.as_secs_f64() - better.as_secs_f64()) / better.as_secs_f64().max(1e-9);
            let speedup = hash_time.as_secs_f64() / vertical_time.as_secs_f64().max(1e-9);

            let mut next_rows: Vec<ItemId> = Vec::new();
            let mut large = 0usize;
            for (i, &count) in hash_counts.iter().enumerate() {
                if minsup.is_large(count, n) {
                    next_rows.extend_from_slice(candidates.row(i));
                    large += 1;
                }
            }
            eprintln!(
                "  k={k}: |C|={} hash {:.1} ms, vertical {:.1} ms (+build {:.1}) -> {speedup:.2}x, auto={auto_backend}",
                candidates.len(),
                ms(hash_time),
                ms(vertical_time),
                ms(build_time),
            );
            rows.push(PassRow {
                minsup_bp: bp,
                k,
                candidates: candidates.len(),
                large,
                hash_ms: ms(hash_time),
                vertical_ms: ms(vertical_time),
                build_ms: ms(build_time),
                speedup,
                auto_backend,
                auto_ms: ms(auto_time),
                auto_loss: auto_loss.max(0.0),
            });
            level = ItemsetTable::from_flat_rows(k, next_rows);
            k += 1;
        }
    }

    // Cross-check: full miner runs agree across all backends at the first
    // support level (the bench must not certify a broken backend).
    {
        let minsup = MinSupport::basis_points(opts.minsup_bp[0]);
        let reference = fup_mining::Apriori::with_config(fup_mining::apriori::AprioriConfig {
            engine: cfg.clone().with_backend(CountingBackend::HashTree),
            ..Default::default()
        })
        .run(&db, minsup)
        .large;
        for backend in [CountingBackend::Vertical, CountingBackend::Auto] {
            let out = fup_mining::Apriori::with_config(fup_mining::apriori::AprioriConfig {
                engine: cfg.clone().with_backend(backend),
                ..Default::default()
            })
            .run(&db, minsup)
            .large;
            assert!(
                out.same_itemsets(&reference),
                "{backend:?} miner diverged: {:?}",
                out.diff(&reference)
            );
        }
        eprintln!("miner cross-check: all backends bit-identical");
    }

    // ---- index-reuse scenario: persistent extend vs per-round rebuild --
    // Models the maintenance session: one index built over the base
    // corpus, then N successive increments either *extend* it in place
    // (one delta scan each — what `Maintainer` does across commits) or
    // force a from-scratch rebuild over the grown corpus (what every
    // round paid before the index persisted).
    let inc_size = if opts.reuse_increment > 0 {
        opts.reuse_increment
    } else {
        (opts.transactions / 50).max(1)
    };
    let reuse_minsup = MinSupport::basis_points(opts.minsup_bp[0]);
    let mut keep_items: Vec<ItemId> = Vec::new();
    for (item, count) in item_counts.iter_nonzero() {
        if reuse_minsup.is_large(count, n) {
            keep_items.push(item);
        }
    }
    let reuse_keep = vertical::item_bitmap(keep_items.iter().copied());
    let mut reuse_gen = QuestGenerator::new(reuse_params);
    let increments: Vec<TransactionDb> = (0..opts.reuse_rounds)
        .map(|_| reuse_gen.generate_db(inc_size))
        .collect();
    eprintln!(
        "index reuse: {} rounds x {} increment transactions over the {}-transaction base",
        opts.reuse_rounds, inc_size, n
    );

    let (base_build, mut persistent) = best_of(opts.reps, || {
        VerticalIndex::build(&db, Some(&reuse_keep), &cfg)
    });
    let mut acc = TransactionDb::new();
    acc.extend(db.raw().iter().cloned());
    let mut extend_total = Duration::ZERO;
    let mut rebuild_total = Duration::ZERO;
    let mut reuse_rows: Vec<(usize, f64, f64)> = Vec::new();
    let mut rebuilt = None;
    for (round, inc) in increments.iter().enumerate() {
        // The extend is stateful, so it is timed once (no best-of) — a
        // conservative handicap against the best-of-reps rebuild.
        let start = Instant::now();
        persistent.extend(inc, &cfg);
        let extend_time = start.elapsed();
        extend_total += extend_time;

        acc.extend(inc.raw().iter().cloned());
        let (rebuild_time, fresh) = best_of(opts.reps, || {
            VerticalIndex::build(&acc, Some(&reuse_keep), &cfg)
        });
        rebuild_total += rebuild_time;

        // The extended index must be indistinguishable from the rebuild.
        assert_eq!(persistent.num_transactions(), fresh.num_transactions());
        for &item in &keep_items {
            assert_eq!(
                persistent.support(item),
                fresh.support(item),
                "reuse round {round}: support of {item:?} diverged"
            );
        }
        eprintln!(
            "  round {}: extend {:.1} ms vs rebuild {:.1} ms",
            round + 1,
            ms(extend_time),
            ms(rebuild_time)
        );
        reuse_rows.push((round + 1, ms(extend_time), ms(rebuild_time)));
        rebuilt = Some(fresh);
    }
    // Deeper equivalence: candidate counts agree on a C₂ sample.
    if let Some(fresh) = &rebuilt {
        let sample: Vec<ItemId> = keep_items.iter().copied().take(100).collect();
        let c2 = apriori_gen_flat(&ItemsetTable::from_flat_rows(1, sample), &cfg.gen);
        assert_eq!(
            persistent.count_rows(&c2, &cfg),
            fresh.count_rows(&c2, &cfg),
            "persistent and rebuilt indexes disagree on C2 counts"
        );
    }
    let reuse_speedup = rebuild_total.as_secs_f64() / extend_total.as_secs_f64().max(1e-9);
    eprintln!(
        "index reuse: extend total {:.1} ms vs rebuild total {:.1} ms -> {reuse_speedup:.2}x",
        ms(extend_total),
        ms(rebuild_total)
    );

    // ---- dense∩dense micro-row: the unrolled AND+popcount kernel ------
    // Every pair of the most frequent items, with every tid-list forced
    // into the dense (bitset) representation, so each candidate count is
    // exactly one dense∩dense intersection over the whole corpus — the
    // kernel the 4-word unroll targets.
    let dense_pair = {
        let minsup = MinSupport::basis_points(opts.minsup_bp[0]);
        let mut freq: Vec<(u64, ItemId)> = item_counts
            .iter_nonzero()
            .filter(|&(_, c)| minsup.is_large(c, n))
            .map(|(item, c)| (c, item))
            .collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let mut items: Vec<ItemId> = freq.iter().take(40).map(|&(_, it)| it).collect();
        items.sort_unstable();
        let keep = vertical::item_bitmap(items.iter().copied());
        let level1 = ItemsetTable::from_flat_rows(1, items);
        let pairs = apriori_gen_flat(&level1, &cfg.gen);
        let all_dense = VerticalIndex::build_with_density(&db, Some(&keep), &cfg, u32::MAX);
        let (dense_time, dense_counts) = best_of(opts.reps, || all_dense.count_rows(&pairs, &cfg));
        // The representation must not change the counts.
        let default_idx = VerticalIndex::build(&db, Some(&keep), &cfg);
        assert_eq!(
            dense_counts,
            default_idx.count_rows(&pairs, &cfg),
            "forced-dense counts diverged from the default representation"
        );
        // Each pair ANDs two bitsets of ceil(n/64) words.
        let words = pairs.len() as f64 * n.div_ceil(64) as f64;
        let mwords_per_sec = words / dense_time.as_secs_f64().max(1e-9) / 1e6;
        eprintln!(
            "dense pair kernel: {} pairs x {} words in {:.2} ms -> {:.0} Mwords/s",
            pairs.len(),
            n.div_ceil(64),
            ms(dense_time),
            mwords_per_sec,
        );
        (pairs.len(), ms(dense_time), mwords_per_sec)
    };

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"vertical\",\n",
            "  \"corpus\": \"T10.I4\",\n",
            "  \"transactions\": {},\n",
            "  \"threads\": {},\n",
            "  \"reps\": {},\n",
            "  \"index_sparse_bytes\": {},\n",
            "  \"index_dense_bytes\": {},\n",
            "  \"rows\": [\n"
        ),
        opts.transactions, opts.threads, opts.reps, index_bytes.0, index_bytes.1,
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"minsup_bp\": {}, \"k\": {}, \"candidates\": {}, \"large\": {}, \"hash_ms\": {:.3}, \"vertical_ms\": {:.3}, \"build_ms\": {:.3}, \"speedup\": {:.3}, \"auto\": \"{}\", \"auto_ms\": {:.3}, \"auto_loss\": {:.4} }}{sep}",
            r.minsup_bp,
            r.k,
            r.candidates,
            r.large,
            r.hash_ms,
            r.vertical_ms,
            r.build_ms,
            r.speedup,
            r.auto_backend,
            r.auto_ms,
            r.auto_loss,
        );
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        concat!(
            "  \"reuse\": {{\n",
            "    \"rounds\": {}, \"increment\": {}, \"minsup_bp\": {},\n",
            "    \"base_build_ms\": {:.3}, \"extend_total_ms\": {:.3}, ",
            "\"rebuild_total_ms\": {:.3}, \"speedup\": {:.3},\n",
            "    \"rows\": [\n"
        ),
        opts.reuse_rounds,
        inc_size,
        opts.minsup_bp[0],
        ms(base_build),
        ms(extend_total),
        ms(rebuild_total),
        reuse_speedup,
    );
    for (i, (round, extend_ms, rebuild_ms)) in reuse_rows.iter().enumerate() {
        let sep = if i + 1 < reuse_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{ \"round\": {round}, \"extend_ms\": {extend_ms:.3}, \"rebuild_ms\": {rebuild_ms:.3} }}{sep}"
        );
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(
        json,
        "  \"dense_pair\": {{ \"pairs\": {}, \"ms\": {:.3}, \"mwords_per_sec\": {:.1} }}\n}}",
        dense_pair.0, dense_pair.1, dense_pair.2
    );
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bench_vertical: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    print!("{json}");

    // Gates.
    let deep_worst = rows
        .iter()
        .filter(|r| r.k >= 3)
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    if deep_worst.is_finite() {
        fup_bench::cli::require_min_speedup(
            "bench_vertical",
            "worst deep-pass (k >= 3) vertical speedup",
            deep_worst,
            opts.min_speedup,
        );
    } else if opts.min_speedup > 0.0 {
        eprintln!(
            "bench_vertical: no deep passes produced candidates; cannot assert --min-speedup"
        );
        std::process::exit(1);
    }
    if opts.max_auto_loss >= 0.0 {
        let worst = rows.iter().map(|r| r.auto_loss).fold(0.0, f64::max);
        if worst > opts.max_auto_loss {
            eprintln!(
                "bench_vertical: auto lost {:.1}% to the better fixed backend (allowed {:.1}%)",
                worst * 100.0,
                opts.max_auto_loss * 100.0
            );
            std::process::exit(1);
        }
    }
    if !reuse_rows.is_empty() {
        fup_bench::cli::require_min_speedup(
            "bench_vertical",
            "persistent index reuse (extend vs per-round rebuild)",
            reuse_speedup,
            opts.min_reuse_speedup,
        );
    } else if opts.min_reuse_speedup > 0.0 {
        eprintln!("bench_vertical: no reuse rounds ran; cannot assert --min-reuse-speedup");
        std::process::exit(1);
    }
}

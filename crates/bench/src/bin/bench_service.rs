//! `bench_service` — concurrent-ingestion throughput of the
//! [`MaintainerService`], emitting a machine-readable
//! `BENCH_service.json` (CI runs this briefly on every push and gates
//! the multi-producer row).
//!
//! Scenario: a `T10.I4` Quest history is mined once into a session, the
//! session is wrapped in a [`MaintainerService`] with a pending-ops
//! commit trigger, and `--batches` update batches of `--batch-size`
//! transactions are staged by P producer threads (one row per entry in
//! `--producers`). The clock runs from the first `stage` to the final
//! `flush` completing, so every row pays for its own commit rounds —
//! staging throughput that outruns the committer is *not* rewarded. The
//! timed run is correctness-checked twice before any number is reported:
//! the final rule set must be bit-identical to staging the same batches
//! serially in one session (supports compared itemset by itemset), and
//! the maintained state must equal a from-scratch re-mine.
//!
//! `--min-concurrent-throughput` exits non-zero unless the *highest*
//! producer-count row sustains the given end-to-end transactions/second
//! — the CI gate for the concurrent staging path.
//!
//! The run also measures the cost of durability: a single-producer
//! WAL-off session against the same workload through a WAL-on session
//! (`build_durable` over a `DiskStorage` temp directory, fsync on every
//! append — the default [`DurabilityPolicy`]), with the recovered-state
//! bit-identity asserted before the pair is reported as the
//! `durability` object in the JSON.
//!
//! `--open-loop` adds the bounded-latency pipeline scenario: one
//! arrival thread offers batches on a fixed schedule — a steady phase at
//! `--arrival-tps`, a burst phase at `--burst-factor` times that rate,
//! and a steady tail — against a service configured with
//! `--staging-cap` (backpressure) and `--round-ops` (chunked rounds).
//! Arrivals never slow down for the service: a full gate is retried with
//! bounded exponential backoff
//! ([`MaintainerService::stage_with_retry`]), and batches that exhaust
//! the budget are *shed* and counted. The run reports p50/p99 per-round commit
//! latency (from [`MaintainerService::round_latencies`]), the backlog
//! high-water mark, and the worst snapshot staleness in rounds; the
//! final state is certified bit-identical to a serial session staging
//! exactly the accepted batches. `--max-p99-commit-ms` and
//! `--max-staleness-rounds` exit non-zero when the observed tail latency
//! or staleness exceeds the bound — the CI gate for the overload path.
//!
//! `--flaky` adds the self-healing scenario: the same workload staged
//! through a durable service whose storage fails **transiently at
//! random** (`FlakyStorage` over in-memory storage, seeded, at
//! `--fault-rate-bp` basis points per operation). The producer rides
//! faults out with `stage_with_retry`; degraded windows must heal; the
//! final state is certified against the serial reference and a recovery
//! from the surviving bytes. The `flaky` JSON object reports the faults
//! injected, retries absorbed, and milliseconds spent degraded. The
//! clean (un-faulted) durability run is health-checked either way: zero
//! committer restarts, zero degraded time.
//!
//! On a single-CPU container the multi-producer rows measure lock-stripe
//! overhead only (producers time-slice one core); the committed JSON
//! notes the caveat, and the CI artifact from the 4-vCPU runners is the
//! multi-core record.
//!
//! ```text
//! bench_service [--out PATH] [--transactions N] [--batches B]
//!               [--batch-size S] [--producers P1,P2,..]
//!               [--pending-trigger OPS] [--minsup-bp B] [--seed S]
//!               [--min-concurrent-throughput TPS]
//!               [--open-loop] [--arrival-tps TPS] [--burst-factor F]
//!               [--round-ops OPS] [--staging-cap OPS]
//!               [--max-p99-commit-ms MS] [--max-staleness-rounds N]
//!               [--flaky] [--fault-rate-bp B]
//! ```

use fup_core::service::{CommitPolicy, MaintainerService, ServiceError};
use fup_core::{DurabilityPolicy, HealthState, Maintainer, RetryPolicy};
use fup_datagen::{corpus, GenParams, QuestGenerator};
use fup_mining::{MinConfidence, MinSupport};
use fup_tidb::{DiskStorage, DurableStorage, FlakyStorage, MemStorage, Transaction, UpdateBatch};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    out: String,
    transactions: u64,
    batches: usize,
    batch_size: u64,
    producers: Vec<usize>,
    pending_trigger: u64,
    minsup_bp: u64,
    seed: u64,
    /// Exit non-zero unless the highest producer-count row reaches this
    /// many staged-and-committed transactions per second (0 disables).
    min_concurrent_throughput: f64,
    /// Run the open-loop overload scenario.
    open_loop: bool,
    /// Steady-phase offered load, transactions per second.
    arrival_tps: f64,
    /// Burst-phase multiplier over the steady rate.
    burst_factor: f64,
    /// `CommitPolicy::ops_per_round` for the open-loop service.
    round_ops: u64,
    /// `CommitPolicy::staging_capacity` for the open-loop service.
    staging_cap: u64,
    /// Exit non-zero if open-loop p99 commit latency exceeds this many
    /// milliseconds (0 disables).
    max_p99_commit_ms: f64,
    /// Exit non-zero if the open-loop snapshot ever falls more than this
    /// many rounds behind (0 disables).
    max_staleness_rounds: u64,
    /// Run the self-healing scenario over randomly failing storage.
    flaky: bool,
    /// Transient-fault probability per storage operation, in basis
    /// points (100 = 1%).
    fault_rate_bp: u32,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_service.json".to_string(),
        transactions: 20_000,
        batches: 120,
        batch_size: 250,
        producers: vec![1, 4, 8],
        pending_trigger: 6_000,
        minsup_bp: 100,
        seed: 1996,
        min_concurrent_throughput: 0.0,
        open_loop: false,
        arrival_tps: 40_000.0,
        burst_factor: 10.0,
        round_ops: 2_000,
        staging_cap: 8_000,
        max_p99_commit_ms: 0.0,
        max_staleness_rounds: 0,
        flaky: false,
        fault_rate_bp: 100,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--transactions" => {
                opts.transactions = value("--transactions")?
                    .parse()
                    .map_err(|e| format!("--transactions: {e}"))?
            }
            "--batches" => {
                opts.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?
            }
            "--batch-size" => {
                opts.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?
            }
            "--producers" => {
                opts.producers = value("--producers")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--producers: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--pending-trigger" => {
                opts.pending_trigger = value("--pending-trigger")?
                    .parse()
                    .map_err(|e| format!("--pending-trigger: {e}"))?
            }
            "--minsup-bp" => {
                opts.minsup_bp = value("--minsup-bp")?
                    .parse()
                    .map_err(|e| format!("--minsup-bp: {e}"))?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--min-concurrent-throughput" => {
                opts.min_concurrent_throughput = value("--min-concurrent-throughput")?
                    .parse()
                    .map_err(|e| format!("--min-concurrent-throughput: {e}"))?
            }
            "--open-loop" => opts.open_loop = true,
            "--arrival-tps" => {
                opts.arrival_tps = value("--arrival-tps")?
                    .parse()
                    .map_err(|e| format!("--arrival-tps: {e}"))?
            }
            "--burst-factor" => {
                opts.burst_factor = value("--burst-factor")?
                    .parse()
                    .map_err(|e| format!("--burst-factor: {e}"))?
            }
            "--round-ops" => {
                opts.round_ops = value("--round-ops")?
                    .parse()
                    .map_err(|e| format!("--round-ops: {e}"))?
            }
            "--staging-cap" => {
                opts.staging_cap = value("--staging-cap")?
                    .parse()
                    .map_err(|e| format!("--staging-cap: {e}"))?
            }
            "--max-p99-commit-ms" => {
                opts.max_p99_commit_ms = value("--max-p99-commit-ms")?
                    .parse()
                    .map_err(|e| format!("--max-p99-commit-ms: {e}"))?
            }
            "--max-staleness-rounds" => {
                opts.max_staleness_rounds = value("--max-staleness-rounds")?
                    .parse()
                    .map_err(|e| format!("--max-staleness-rounds: {e}"))?
            }
            "--flaky" => opts.flaky = true,
            "--fault-rate-bp" => {
                opts.fault_rate_bp = value("--fault-rate-bp")?
                    .parse()
                    .map_err(|e| format!("--fault-rate-bp: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.batches == 0 || opts.batch_size == 0 {
        return Err("--batches and --batch-size must be at least 1".into());
    }
    if opts.producers.is_empty() || opts.producers.contains(&0) {
        return Err("--producers needs at least one non-zero entry".into());
    }
    if opts.pending_trigger == 0 {
        return Err("--pending-trigger must be at least 1".into());
    }
    if opts.open_loop {
        if opts.arrival_tps <= 0.0 || opts.burst_factor <= 0.0 {
            return Err("--arrival-tps and --burst-factor must be positive".into());
        }
        if opts.round_ops == 0 || opts.staging_cap == 0 {
            return Err("--round-ops and --staging-cap must be at least 1".into());
        }
        if opts.staging_cap < opts.batch_size {
            return Err("--staging-cap must admit at least one batch (>= --batch-size)".into());
        }
    }
    if opts.flaky && (opts.fault_rate_bp == 0 || opts.fault_rate_bp > 2_000) {
        return Err(
            "--fault-rate-bp must be in 1..=2000 (above 20% the run cannot converge)".into(),
        );
    }
    Ok(opts)
}

struct Row {
    producers: usize,
    wall_ms: f64,
    throughput_tps: f64,
    rounds: u64,
    commit_ms_total: f64,
    commit_ms_last: f64,
    index_builds: u64,
    index_extends: u64,
}

fn bootstrap(history: Vec<Transaction>, minsup: MinSupport) -> Maintainer {
    Maintainer::builder()
        .min_support(minsup)
        .min_confidence(MinConfidence::percent(60))
        .build(history)
        .expect("valid session configuration")
}

struct OpenLoopResult {
    offered_batches: u64,
    accepted_batches: u64,
    shed_batches: u64,
    rounds: u64,
    p50_commit_ms: f64,
    p99_commit_ms: f64,
    max_round_ops: u64,
    max_backlog_ops: u64,
    max_staleness_rounds: u64,
}

struct FlakyResult {
    fault_rate_bp: u32,
    faults_injected: u64,
    transient_retries: u64,
    degraded_ms: u64,
    committer_restarts: u64,
    wall_ms: f64,
    throughput_tps: f64,
}

/// The self-healing scenario: the single-producer workload staged into
/// a durable service whose storage fails transiently at random
/// (seeded, `fault_rate_bp` basis points per operation). The producer
/// rides faults out with bounded retries; degraded windows must heal;
/// the final state is certified against the serial reference and
/// against a recovery from the bytes the run actually stored.
fn run_flaky(
    opts: &Options,
    history: &[Transaction],
    batches: &[Vec<Transaction>],
    minsup: MinSupport,
    serial: &Maintainer,
) -> FlakyResult {
    eprintln!(
        "flaky: {} batches over storage failing {} bp per op (seed {})...",
        opts.batches, opts.fault_rate_bp, opts.seed
    );
    let mem = Arc::new(MemStorage::new());
    let storage = Arc::new(FlakyStorage::with_fault_rate(
        Arc::clone(&mem) as Arc<dyn DurableStorage>,
        opts.seed,
        opts.fault_rate_bp,
    ));
    let builder = || {
        Maintainer::builder()
            .min_support(minsup)
            .min_confidence(MinConfidence::percent(60))
            .durability(DurabilityPolicy::default())
    };
    let durable = builder()
        .build_durable(
            history.to_vec(),
            Arc::clone(&storage) as Arc<dyn DurableStorage>,
        )
        .expect("flaky bootstrap (build-time faults are absorbed by retries)");
    let policy = CommitPolicy::manual()
        .every_ops(opts.pending_trigger)
        .with_poll_interval(Duration::from_millis(1));
    let service = MaintainerService::launch(durable, policy).expect("valid policy");

    let start = Instant::now();
    let deadline = start + Duration::from_secs(120);
    for batch in batches {
        loop {
            assert!(
                Instant::now() < deadline,
                "flaky producer wedged: the service never healed"
            );
            match service.stage_with_retry(
                UpdateBatch::insert_only(batch.clone()),
                RetryPolicy::attempts(6),
            ) {
                Ok(()) => break,
                Err(ServiceError::RetriesExhausted { .. }) => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("flaky stage: {e}"),
            }
        }
    }
    loop {
        match service.flush() {
            Ok(_) => break,
            Err(ServiceError::Degraded | ServiceError::Commit(_)) => {
                assert!(Instant::now() < deadline, "flaky run never flushed clean");
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("flaky flush: {e}"),
        }
    }
    let wall = start.elapsed();
    while service.health().state != HealthState::Healthy {
        assert!(Instant::now() < deadline, "flaky run never healed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let health = service.health();
    let (maintainer, _metrics) = service.shutdown();
    assert!(
        maintainer
            .large_itemsets()
            .same_itemsets(serial.large_itemsets()),
        "flaky run diverged from serial staging: {:?}",
        maintainer.large_itemsets().diff(serial.large_itemsets())
    );
    // Recovery from the surviving bytes reproduces the final state.
    let image: Arc<dyn DurableStorage> = Arc::new(MemStorage::from_files(mem.files()));
    let (recovered, _report) = builder().recover(image).expect("recover the flaky image");
    assert!(
        recovered
            .large_itemsets()
            .same_itemsets(maintainer.large_itemsets()),
        "recovery from the flaky image diverged from the live state"
    );

    let staged_txns: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let result = FlakyResult {
        fault_rate_bp: opts.fault_rate_bp,
        faults_injected: storage.faults_injected(),
        transient_retries: health.transient_retries,
        degraded_ms: health.degraded_ms,
        committer_restarts: health.committer_restarts,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_tps: staged_txns as f64 / wall.as_secs_f64().max(1e-9),
    };
    eprintln!(
        "flaky: {} faults injected, {} retries absorbed, {} ms degraded, \
         {} committer restarts, {:.0} txn/s",
        result.faults_injected,
        result.transient_retries,
        result.degraded_ms,
        result.committer_restarts,
        result.throughput_tps,
    );
    result
}

/// `p` in [0, 1] over an ascending-sorted series (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The open-loop overload scenario: a fixed arrival schedule (steady /
/// burst / steady) offered against a capacity-gated, round-capped
/// service. Arrivals never slow down for the pipeline; what the bounded
/// retry budget cannot admit is shed and counted. Certifies the final
/// state bit-identical to a serial session staging exactly the accepted
/// batches before reporting.
fn run_open_loop(
    opts: &Options,
    history: &[Transaction],
    batches: &[Vec<Transaction>],
    minsup: MinSupport,
) -> OpenLoopResult {
    let policy = CommitPolicy::manual()
        .every_ops(opts.round_ops)
        .ops_per_round(opts.round_ops)
        .staging_capacity(opts.staging_cap)
        .with_poll_interval(Duration::from_millis(1));
    let service = MaintainerService::launch(bootstrap(history.to_vec(), minsup), policy)
        .expect("valid policy");
    let phase = opts.batches / 3;
    let steady_gap = opts.batch_size as f64 / opts.arrival_tps;
    let burst_gap = steady_gap / opts.burst_factor;
    eprintln!(
        "open-loop: {} batches (steady {:.0} tps / burst x{:.0} / steady), \
         round cap {} ops, staging cap {} ops...",
        opts.batches, opts.arrival_tps, opts.burst_factor, opts.round_ops, opts.staging_cap
    );
    let mut accepted: Vec<usize> = Vec::new();
    let mut shed = 0u64;
    let mut max_staleness = 0u64;
    // Grace for a full gate: ~60 ms of exponential backoff before the
    // batch is shed — the service's own retry discipline, not a
    // hand-rolled deadline loop.
    let grace =
        RetryPolicy::attempts(6).backoff(Duration::from_millis(2), Duration::from_millis(32));
    let mut next_arrival = Instant::now();
    for (i, batch) in batches.iter().enumerate() {
        // The open loop: the schedule is fixed in advance and does not
        // slow down when the pipeline pushes back.
        let gap = if (phase..2 * phase).contains(&i) {
            burst_gap
        } else {
            steady_gap
        };
        let now = Instant::now();
        if now < next_arrival {
            std::thread::sleep(next_arrival - now);
        }
        next_arrival += Duration::from_secs_f64(gap);
        let admitted =
            match service.stage_with_retry(UpdateBatch::insert_only(batch.clone()), grace) {
                Ok(()) => true,
                Err(ServiceError::RetriesExhausted { .. }) => false,
                Err(e) => panic!("open-loop stage_with_retry: {e}"),
            };
        if admitted {
            accepted.push(i);
        } else {
            shed += 1;
        }
        max_staleness = max_staleness.max(service.metrics().snapshot_staleness_rounds);
    }
    service.flush().expect("open-loop flush");
    let mut latencies = service.round_latencies();
    latencies.sort_unstable();
    let (maintainer, metrics) = service.shutdown();

    // The acceptance invariants of the bounded pipeline: staging memory
    // stays under the gate, and no incremental round exceeds the cap
    // (batches are atomic, so a single batch is the floor).
    assert!(
        metrics.max_backlog_ops <= opts.staging_cap,
        "backlog {} exceeded the {}-op staging capacity",
        metrics.max_backlog_ops,
        opts.staging_cap
    );
    assert!(
        metrics.max_round_ops <= opts.round_ops.max(opts.batch_size),
        "round of {} ops exceeded the {}-op cap",
        metrics.max_round_ops,
        opts.round_ops
    );
    assert_eq!(metrics.dropped_rounds, 0, "no round may fail");
    assert_eq!(accepted.len() as u64 + shed, opts.batches as u64);

    // Bit-identity over exactly the accepted batches.
    let mut reference = bootstrap(history.to_vec(), minsup);
    for &i in &accepted {
        reference
            .stage(UpdateBatch::insert_only(batches[i].clone()))
            .expect("valid batch");
    }
    reference.commit().expect("reference commit");
    assert!(
        maintainer
            .large_itemsets()
            .same_itemsets(reference.large_itemsets()),
        "open-loop run diverged from serial staging of the accepted batches: {:?}",
        maintainer.large_itemsets().diff(reference.large_itemsets())
    );
    for (itemset, support) in reference.large_itemsets().iter() {
        assert_eq!(
            maintainer.large_itemsets().support(itemset),
            Some(support),
            "open-loop: support of {itemset:?} diverged"
        );
    }
    assert_eq!(
        maintainer.rules(),
        reference.rules(),
        "open-loop: rule sets diverged"
    );

    let result = OpenLoopResult {
        offered_batches: opts.batches as u64,
        accepted_batches: accepted.len() as u64,
        shed_batches: shed,
        rounds: metrics.committed_rounds,
        p50_commit_ms: percentile(&latencies, 0.50) as f64 / 1e3,
        p99_commit_ms: percentile(&latencies, 0.99) as f64 / 1e3,
        max_round_ops: metrics.max_round_ops,
        max_backlog_ops: metrics.max_backlog_ops,
        max_staleness_rounds: max_staleness.max(metrics.max_backlog_ops.div_ceil(opts.round_ops)),
    };
    eprintln!(
        "open-loop: {}/{} batches accepted ({} shed), {} rounds, \
         commit p50 {:.2} ms / p99 {:.2} ms, backlog peak {} ops, staleness <= {} rounds",
        result.accepted_batches,
        result.offered_batches,
        result.shed_batches,
        result.rounds,
        result.p50_commit_ms,
        result.p99_commit_ms,
        result.max_backlog_ops,
        result.max_staleness_rounds,
    );
    result
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_service: {e}");
            std::process::exit(2);
        }
    };
    let params = corpus::t10_i4_d100_d1()
        .with_seed(opts.seed)
        .with_increment(1);
    let params = GenParams {
        num_transactions: opts.transactions,
        ..params
    };
    eprintln!(
        "generating {} corpus ({} history + {} x {} batch transactions)...",
        params.name(),
        opts.transactions,
        opts.batches,
        opts.batch_size
    );
    let mut generator = QuestGenerator::new(params);
    let history = generator.generate_db(opts.transactions).into_transactions();
    let batches: Vec<Vec<Transaction>> = (0..opts.batches)
        .map(|_| generator.generate_db(opts.batch_size).into_transactions())
        .collect();
    let staged_txns: u64 = opts.batches as u64 * opts.batch_size;
    let minsup = MinSupport::basis_points(opts.minsup_bp);

    // Serial reference for the bit-identity check: one session, every
    // batch staged in order, one commit.
    eprintln!(
        "serial reference (bootstrap + stage x{} + commit)...",
        opts.batches
    );
    let mut serial = bootstrap(history.clone(), minsup);
    for batch in &batches {
        serial
            .stage(UpdateBatch::insert_only(batch.clone()))
            .expect("valid batch");
    }
    serial.commit().expect("serial commit");

    let policy = CommitPolicy::manual()
        .every_ops(opts.pending_trigger)
        .with_poll_interval(Duration::from_millis(1));
    let mut rows: Vec<Row> = Vec::new();
    for &producers in &opts.producers {
        let service = MaintainerService::launch(bootstrap(history.clone(), minsup), policy.clone())
            .expect("valid policy");
        let start = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..producers {
                let (service, batches) = (&service, &batches);
                scope.spawn(move || {
                    for batch in batches.iter().skip(worker).step_by(producers) {
                        service
                            .stage(UpdateBatch::insert_only(batch.clone()))
                            .expect("valid batch");
                    }
                });
            }
        });
        service.flush().expect("flush");
        let wall = start.elapsed();
        let (maintainer, metrics) = service.shutdown();

        // Certify before reporting: concurrent == serial, bit for bit.
        assert_eq!(metrics.staged_inserts, staged_txns);
        assert_eq!(metrics.committed_inserts, staged_txns);
        assert_eq!(metrics.dropped_rounds, 0, "no round may fail");
        assert!(
            maintainer
                .large_itemsets()
                .same_itemsets(serial.large_itemsets()),
            "{producers} producers diverged from serial staging: {:?}",
            maintainer.large_itemsets().diff(serial.large_itemsets())
        );
        for (itemset, support) in serial.large_itemsets().iter() {
            assert_eq!(
                maintainer.large_itemsets().support(itemset),
                Some(support),
                "{producers} producers: support of {itemset:?} diverged"
            );
        }
        assert_eq!(
            maintainer.rules(),
            serial.rules(),
            "{producers} producers: rule sets diverged"
        );
        if producers == opts.producers[0] {
            // The (expensive) re-mine check once per run suffices: every
            // other row is already pinned to the serial state above.
            maintainer
                .verify_consistency()
                .expect("maintained state == re-mine");
        }

        let throughput = staged_txns as f64 / wall.as_secs_f64().max(1e-9);
        eprintln!(
            "{producers} producer(s): {staged_txns} txns in {:.1} ms -> {:.0} txn/s \
             ({} rounds, {:.1} ms committing, index {}b/{}e)",
            wall.as_secs_f64() * 1e3,
            throughput,
            metrics.committed_rounds,
            metrics.total_commit_micros as f64 / 1e3,
            metrics.index_builds,
            metrics.index_extends,
        );
        rows.push(Row {
            producers,
            wall_ms: wall.as_secs_f64() * 1e3,
            throughput_tps: throughput,
            rounds: metrics.committed_rounds,
            commit_ms_total: metrics.total_commit_micros as f64 / 1e3,
            commit_ms_last: metrics.last_commit_micros as f64 / 1e3,
            index_builds: metrics.index_builds,
            index_extends: metrics.index_extends,
        });
    }

    // ---- durability cost: WAL-off vs WAL-on, same workload -------------
    // Single producer so the pair isolates the log discipline (append +
    // fsync per staged batch, boundary + checkpoint per round) from any
    // lock-stripe effects. WAL-on runs over a real directory with the
    // default policy (fsync on every append).
    let wal_pair = {
        let run = |maintainer: Maintainer| {
            let service =
                MaintainerService::launch(maintainer, policy.clone()).expect("valid policy");
            let start = Instant::now();
            for batch in &batches {
                service
                    .stage(UpdateBatch::insert_only(batch.clone()))
                    .expect("valid batch");
            }
            service.flush().expect("flush");
            let wall = start.elapsed();
            // Health sanity on the clean run: no faults were injected,
            // so the self-healing machinery must have stayed idle.
            let health = service.health();
            assert_eq!(
                health.committer_restarts, 0,
                "clean durability run restarted the committer"
            );
            assert_eq!(health.degraded_ms, 0, "clean durability run degraded");
            assert_eq!(health.state, HealthState::Healthy);
            let (maintainer, _) = service.shutdown();
            assert!(
                maintainer
                    .large_itemsets()
                    .same_itemsets(serial.large_itemsets()),
                "durability row diverged from serial staging"
            );
            (wall, maintainer)
        };
        eprintln!("durability pair: WAL off...");
        let (off_wall, _) = run(bootstrap(history.clone(), minsup));
        eprintln!("durability pair: WAL on (DiskStorage, fsync per append)...");
        let wal_dir = std::env::temp_dir().join(format!("fup-bench-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let storage = Arc::new(DiskStorage::open(&wal_dir).expect("open WAL directory"));
        let durable = Maintainer::builder()
            .min_support(minsup)
            .min_confidence(MinConfidence::percent(60))
            .durability(DurabilityPolicy::default())
            .build_durable(
                history.clone(),
                Arc::clone(&storage) as Arc<dyn DurableStorage>,
            )
            .expect("durable bootstrap");
        let (on_wall, _) = run(durable);
        let wal_bytes: u64 = std::fs::read_dir(&wal_dir)
            .expect("list WAL directory")
            .filter_map(|e| e.ok()?.metadata().ok())
            .map(|m| m.len())
            .sum();
        let _ = std::fs::remove_dir_all(&wal_dir);
        let off_tps = staged_txns as f64 / off_wall.as_secs_f64().max(1e-9);
        let on_tps = staged_txns as f64 / on_wall.as_secs_f64().max(1e-9);
        eprintln!(
            "durability: WAL off {:.0} txn/s, WAL on {:.0} txn/s ({:.2}x overhead, {} KiB durable state)",
            off_tps,
            on_tps,
            off_tps / on_tps.max(1e-9),
            wal_bytes / 1024,
        );
        (off_tps, on_tps, wal_bytes)
    };

    let open_loop = opts
        .open_loop
        .then(|| run_open_loop(&opts, &history, &batches, minsup));

    let flaky = opts
        .flaky
        .then(|| run_flaky(&opts, &history, &batches, minsup, &serial));

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"bench\": \"service\",\n",
            "  \"corpus\": \"T10.I4\",\n",
            "  \"transactions\": {},\n",
            "  \"batches\": {},\n",
            "  \"batch_size\": {},\n",
            "  \"staged_txns\": {},\n",
            "  \"pending_trigger\": {},\n",
            "  \"minsup_bp\": {},\n",
            "  \"note\": \"end-to-end stage->commit throughput; on a 1-CPU container \
             multi-producer rows measure lock-stripe overhead only (CI artifact = multi-core record)\",\n",
            "  \"rows\": [\n"
        ),
        opts.transactions,
        opts.batches,
        opts.batch_size,
        staged_txns,
        opts.pending_trigger,
        opts.minsup_bp,
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"producers\": {}, \"wall_ms\": {:.3}, \"throughput_tps\": {:.0}, \
             \"rounds\": {}, \"commit_ms_total\": {:.3}, \"commit_ms_last\": {:.3}, \
             \"index_builds\": {}, \"index_extends\": {} }}{sep}",
            r.producers,
            r.wall_ms,
            r.throughput_tps,
            r.rounds,
            r.commit_ms_total,
            r.commit_ms_last,
            r.index_builds,
            r.index_extends,
        );
    }
    json.push_str("  ],\n");
    let durability_sep = if open_loop.is_some() || flaky.is_some() {
        ","
    } else {
        ""
    };
    let _ = writeln!(
        json,
        "  \"durability\": {{ \"wal_off_tps\": {:.0}, \"wal_on_tps\": {:.0}, \
         \"overhead_factor\": {:.3}, \"durable_bytes\": {} }}{durability_sep}",
        wal_pair.0,
        wal_pair.1,
        wal_pair.0 / wal_pair.1.max(1e-9),
        wal_pair.2,
    );
    if let Some(ol) = &open_loop {
        let sep = if flaky.is_some() { "," } else { "" };
        let _ = writeln!(
            json,
            concat!(
                "  \"open_loop\": {{ \"arrival_tps\": {:.0}, \"burst_factor\": {:.1}, ",
                "\"round_ops\": {}, \"staging_cap\": {}, \"offered_batches\": {}, ",
                "\"accepted_batches\": {}, \"shed_batches\": {}, \"rounds\": {}, ",
                "\"p50_commit_ms\": {:.3}, \"p99_commit_ms\": {:.3}, ",
                "\"max_round_ops\": {}, \"max_backlog_ops\": {}, ",
                "\"max_staleness_rounds\": {} }}{sep}"
            ),
            opts.arrival_tps,
            opts.burst_factor,
            opts.round_ops,
            opts.staging_cap,
            ol.offered_batches,
            ol.accepted_batches,
            ol.shed_batches,
            ol.rounds,
            ol.p50_commit_ms,
            ol.p99_commit_ms,
            ol.max_round_ops,
            ol.max_backlog_ops,
            ol.max_staleness_rounds,
            sep = sep,
        );
    }
    if let Some(f) = &flaky {
        let _ = writeln!(
            json,
            concat!(
                "  \"flaky\": {{ \"fault_rate_bp\": {}, \"faults_injected\": {}, ",
                "\"transient_retries\": {}, \"degraded_ms\": {}, ",
                "\"committer_restarts\": {}, \"wall_ms\": {:.3}, ",
                "\"throughput_tps\": {:.0} }}"
            ),
            f.fault_rate_bp,
            f.faults_injected,
            f.transient_retries,
            f.degraded_ms,
            f.committer_restarts,
            f.wall_ms,
            f.throughput_tps,
        );
    }
    json.push('}');
    json.push('\n');
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("bench_service: writing {}: {e}", opts.out);
        std::process::exit(1);
    }
    print!("{json}");

    if opts.min_concurrent_throughput > 0.0 {
        let gated = rows
            .iter()
            .max_by_key(|r| r.producers)
            .expect("at least one row");
        if gated.throughput_tps < opts.min_concurrent_throughput {
            eprintln!(
                "bench_service: {} producers sustained {:.0} txn/s < required {:.0} txn/s",
                gated.producers, gated.throughput_tps, opts.min_concurrent_throughput
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_service: gate ok ({:.0} txn/s >= {:.0} txn/s at {} producers)",
            gated.throughput_tps, opts.min_concurrent_throughput, gated.producers
        );
    }

    if let Some(ol) = &open_loop {
        if opts.max_p99_commit_ms > 0.0 {
            if ol.p99_commit_ms > opts.max_p99_commit_ms {
                eprintln!(
                    "bench_service: open-loop p99 commit latency {:.2} ms > allowed {:.2} ms",
                    ol.p99_commit_ms, opts.max_p99_commit_ms
                );
                std::process::exit(1);
            }
            eprintln!(
                "bench_service: p99 gate ok ({:.2} ms <= {:.2} ms over {} rounds)",
                ol.p99_commit_ms, opts.max_p99_commit_ms, ol.rounds
            );
        }
        if opts.max_staleness_rounds > 0 {
            if ol.max_staleness_rounds > opts.max_staleness_rounds {
                eprintln!(
                    "bench_service: open-loop staleness {} rounds > allowed {} rounds",
                    ol.max_staleness_rounds, opts.max_staleness_rounds
                );
                std::process::exit(1);
            }
            eprintln!(
                "bench_service: staleness gate ok ({} <= {} rounds)",
                ol.max_staleness_rounds, opts.max_staleness_rounds
            );
        }
    }
}

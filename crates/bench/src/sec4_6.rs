//! §4.6 — performance in the scaled-up database `T10.I4.D1000.d10`
//! (1 million transactions).
//!
//! Paper's shape: the DHP/FUP ratio ranges from 3 to 16 — larger than on
//! the 100K database, i.e. FUP's advantage *grows* with database size.

use crate::harness::{compare, mine_baseline, Comparison};
use crate::table::{fmt_duration, Table};
use fup_datagen::{corpus, generate_split};
use fup_mining::MinSupport;

/// One measured support level.
pub type Row = Comparison;

/// Supports examined (basis points): the small-support end where the
/// paper's 16× shows up, plus a mid value.
pub const SUPPORTS_BP: [u64; 3] = [400, 200, 100];

/// Runs the scale-up experiment at `1/scale` of the paper's 1M size.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let params = corpus::scaled(corpus::t10_i4_d1000_d10().with_seed(seed), scale);
    let data = generate_split(&params);
    SUPPORTS_BP
        .iter()
        .map(|&bp| {
            let minsup = MinSupport::basis_points(bp);
            let baseline = mine_baseline(&data.db, minsup);
            compare(&data.db, &data.increment, &baseline, minsup)
        })
        .collect()
}

/// Renders the scale-up table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(["minsup", "t_FUP", "t_DHP", "DHP/FUP", "Apriori/FUP"]);
    for r in rows {
        t.push([
            format!("{:.2}%", r.minsup_bp as f64 / 100.0),
            fmt_duration(r.t_fup),
            fmt_duration(r.t_dhp),
            format!("{:.2}", r.speedup_vs_dhp()),
            format!("{:.2}", r.speedup_vs_apriori()),
        ]);
    }
    t
}

/// The paper's qualitative expectation.
pub const PAPER_SHAPE: &str =
    "paper: on 1M transactions the DHP/FUP ratio ranges 3-16, larger than at 100K";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaleup_rows_cover_supports() {
        let rows = run(2000, 17); // D = 500
        assert_eq!(rows.len(), SUPPORTS_BP.len());
        assert_eq!(render(&rows).len(), rows.len());
    }
}

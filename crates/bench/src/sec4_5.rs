//! §4.5 — the overhead of FUP.
//!
//! Overhead = `[t(mine DB) + t(FUP)] − t(mine DB ∪ db)`, as a percentage
//! of `t(mine DB ∪ db)`, with DHP as the miner (the paper's strongest
//! baseline).
//!
//! Paper's shape: 10–15 % when the increment is much smaller than the
//! database, dropping rapidly to 5–10 % once the increment exceeds the
//! original size.

use crate::harness::timed;
use crate::table::Table;
use fup_core::Fup;
use fup_datagen::{corpus, generate_split};
use fup_mining::{Dhp, MinSupport};
use fup_tidb::source::ChainSource;
use std::time::Duration;

/// One increment-size measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Increment size in transactions (after scaling).
    pub increment: u64,
    /// `t(mine DB)` with DHP.
    pub t_mine_original: Duration,
    /// `t(FUP)` given the mined baseline.
    pub t_fup: Duration,
    /// `t(mine DB ∪ db)` with DHP.
    pub t_mine_whole: Duration,
}

impl Row {
    /// The §4.5 overhead percentage.
    pub fn overhead_pct(&self) -> f64 {
        let combined = self.t_mine_original.as_secs_f64() + self.t_fup.as_secs_f64();
        let direct = self.t_mine_whole.as_secs_f64().max(1e-9);
        (combined - direct) / direct * 100.0
    }
}

/// Increment sizes examined, in thousands (small → larger than `D`).
pub const INCREMENTS_K: [u64; 5] = [1, 10, 50, 100, 200];

/// The support used for the sweep.
pub const SUPPORT_BP: u64 = 200;

/// Runs the overhead sweep at `1/scale` of the paper's sizes.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let minsup = MinSupport::basis_points(SUPPORT_BP);
    INCREMENTS_K
        .iter()
        .map(|&m| {
            let params = corpus::scaled(corpus::t10_i4_d100_dm(m).with_seed(seed), scale);
            let data = generate_split(&params);
            let (baseline_out, t_mine_original) = timed(|| Dhp::new().run(&data.db, minsup));
            // FUP reuses Apriori-compatible support counts; DHP's are the
            // same numbers (both are exact).
            let (fup_out, t_fup) = timed(|| {
                Fup::new()
                    .update(&data.db, &baseline_out.large, &data.increment, minsup)
                    .expect("baseline matches db")
            });
            let whole = ChainSource::new(&data.db, &data.increment);
            let (whole_out, t_mine_whole) = timed(|| Dhp::new().run(&whole, minsup));
            debug_assert!(fup_out.large.same_itemsets(&whole_out.large));
            Row {
                increment: data.d_increment(),
                t_mine_original,
                t_fup,
                t_mine_whole,
            }
        })
        .collect()
}

/// Renders the overhead table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "increment",
        "t(mine DB)",
        "t(FUP)",
        "t(mine DB+db)",
        "overhead %",
    ]);
    for r in rows {
        t.push([
            r.increment.to_string(),
            crate::table::fmt_duration(r.t_mine_original),
            crate::table::fmt_duration(r.t_fup),
            crate::table::fmt_duration(r.t_mine_whole),
            format!("{:.1}", r.overhead_pct()),
        ]);
    }
    t
}

/// The paper's qualitative expectation.
pub const PAPER_SHAPE: &str =
    "paper: overhead 10-15% for small increments, dropping to 5-10% once \
     the increment exceeds the original database";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_rows_cover_sweep() {
        let rows = run(500, 13); // D = 200
        assert_eq!(rows.len(), INCREMENTS_K.len());
        for r in &rows {
            // Overhead is finite and the render doesn't panic.
            assert!(r.overhead_pct().is_finite());
        }
        assert_eq!(render(&rows).len(), rows.len());
    }

    #[test]
    fn overhead_formula() {
        let r = Row {
            increment: 10,
            t_mine_original: Duration::from_millis(100),
            t_fup: Duration::from_millis(20),
            t_mine_whole: Duration::from_millis(110),
        };
        // (120 − 110) / 110 ≈ 9.09 %
        assert!((r.overhead_pct() - 9.0909).abs() < 0.01);
    }
}

//! Figure 3 — reduction in the number of candidate sets:
//! `|C(FUP)| / |C(DHP)|` and `|C(FUP)| / |C(Apriori)|` on `T10.I4.D100.d1`.
//!
//! Paper's shape: FUP generates 2–5 % of DHP's candidates (a 95–98 %
//! reduction) and even less relative to Apriori.

use crate::harness::{compare, mine_baseline, workload, Comparison};
use crate::table::Table;
use fup_datagen::corpus;
use fup_mining::MinSupport;

/// One measured support level.
pub type Row = Comparison;

/// Runs the Figure 3 sweep at `1/scale` of the paper's database size.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let data = workload(corpus::t10_i4_d100_d1().with_seed(seed), scale);
    corpus::FIG2_SUPPORTS_BP
        .iter()
        .map(|&bp| {
            let minsup = MinSupport::basis_points(bp);
            let baseline = mine_baseline(&data.db, minsup);
            compare(&data.db, &data.increment, &baseline, minsup)
        })
        .collect()
}

/// Renders the candidate-count table.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "minsup",
        "|C| FUP",
        "|C| DHP",
        "|C| Apriori",
        "FUP/DHP",
        "FUP/Apriori",
    ]);
    for r in rows {
        t.push([
            format!("{:.2}%", r.minsup_bp as f64 / 100.0),
            r.cand_fup.to_string(),
            r.cand_dhp.to_string(),
            r.cand_apriori.to_string(),
            format!("{:.4}", r.candidate_ratio_vs_dhp()),
            format!("{:.4}", r.candidate_ratio_vs_apriori()),
        ]);
    }
    t
}

/// The paper's qualitative expectation for this figure.
pub const PAPER_SHAPE: &str =
    "paper: FUP's candidate pool is 1.5-5% of DHP's (95-98% reduction), smaller still vs Apriori";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_ratios_are_fractions_below_one() {
        let rows = run(200, 11); // D = 500
        for r in &rows {
            assert!(
                r.candidate_ratio_vs_apriori() <= 1.0,
                "minsup {}bp: ratio {}",
                r.minsup_bp,
                r.candidate_ratio_vs_apriori()
            );
        }
        // At the smallest support the reduction must be pronounced.
        let last = rows.last().unwrap();
        assert!(
            last.candidate_ratio_vs_apriori() < 0.5,
            "expected strong reduction, got {}",
            last.candidate_ratio_vs_apriori()
        );
        assert!(render(&rows).to_string().contains("FUP/DHP"));
    }
}

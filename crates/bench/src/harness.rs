//! Shared measurement harness: FUP vs re-running Apriori/DHP.

use fup_core::{Fup, FupConfig, FupOutcome};
use fup_datagen::{generate_split, DbAndIncrement, GenParams};
use fup_mining::{Apriori, Dhp, LargeItemsets, MinSupport, MiningOutcome};
use fup_tidb::source::ChainSource;
use fup_tidb::TransactionDb;
use std::time::{Duration, Instant};

/// The head-to-head result at one support level — the raw material of
/// Figures 2–4.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Minimum support in basis points (75 = 0.75 %).
    pub minsup_bp: u64,
    /// FUP wall-clock time (given the old large itemsets).
    pub t_fup: Duration,
    /// Time to re-run DHP on `DB ∪ db`.
    pub t_dhp: Duration,
    /// Time to re-run Apriori on `DB ∪ db`.
    pub t_apriori: Duration,
    /// Candidates FUP counted against `DB` (summed over passes).
    pub cand_fup: u64,
    /// Candidates DHP counted (summed over passes).
    pub cand_dhp: u64,
    /// Candidates Apriori counted (summed over passes).
    pub cand_apriori: u64,
    /// `|L'|` — large itemsets in the updated database.
    pub num_large: u64,
}

impl Comparison {
    /// DHP time / FUP time — the paper's headline ratio.
    pub fn speedup_vs_dhp(&self) -> f64 {
        ratio(self.t_dhp, self.t_fup)
    }

    /// Apriori time / FUP time.
    pub fn speedup_vs_apriori(&self) -> f64 {
        ratio(self.t_apriori, self.t_fup)
    }

    /// FUP candidates / DHP candidates — the Figure 3 quantity.
    pub fn candidate_ratio_vs_dhp(&self) -> f64 {
        self.cand_fup as f64 / (self.cand_dhp.max(1)) as f64
    }

    /// FUP candidates / Apriori candidates.
    pub fn candidate_ratio_vs_apriori(&self) -> f64 {
        self.cand_fup as f64 / (self.cand_apriori.max(1)) as f64
    }
}

fn ratio(num: Duration, den: Duration) -> f64 {
    num.as_secs_f64() / den.as_secs_f64().max(1e-9)
}

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs the full head-to-head at one support level.
///
/// `baseline` must be the large itemsets of `db` at `minsup` (mine once
/// via [`mine_baseline`], reuse across calls).
pub fn compare(
    db: &TransactionDb,
    increment: &TransactionDb,
    baseline: &LargeItemsets,
    minsup: MinSupport,
) -> Comparison {
    // Warm-up: first touch of freshly generated pages and allocator pools
    // otherwise lands entirely on the first (FUP) measurement.
    let _ = Fup::with_config(FupConfig::full())
        .update(db, baseline, increment, minsup)
        .expect("baseline matches db");
    let (fup_out, t_fup): (FupOutcome, _) = timed(|| {
        Fup::with_config(FupConfig::full())
            .update(db, baseline, increment, minsup)
            .expect("baseline matches db")
    });
    let whole = ChainSource::new(db, increment);
    let (dhp_out, t_dhp): (MiningOutcome, _) = timed(|| Dhp::new().run(&whole, minsup));
    let (apriori_out, t_apriori): (MiningOutcome, _) = timed(|| Apriori::new().run(&whole, minsup));

    debug_assert!(
        fup_out.large.same_itemsets(&dhp_out.large)
            && fup_out.large.same_itemsets(&apriori_out.large),
        "algorithms disagree: {:?}",
        fup_out.large.diff(&apriori_out.large)
    );

    Comparison {
        minsup_bp: (minsup.as_f64() * 10_000.0).round() as u64,
        t_fup,
        t_dhp,
        t_apriori,
        cand_fup: fup_out.stats.total_candidates_checked(),
        cand_dhp: dhp_out.stats.total_candidates_checked(),
        cand_apriori: apriori_out.stats.total_candidates_checked(),
        num_large: fup_out.large.len() as u64,
    }
}

/// Mines the FUP baseline (the "old" large itemsets over `DB`).
pub fn mine_baseline(db: &TransactionDb, minsup: MinSupport) -> LargeItemsets {
    Apriori::new().run(db, minsup).large
}

/// Generates a workload at `1/scale` of the paper's size (`scale = 1` is
/// the full paper configuration).
pub fn workload(params: GenParams, scale: u64) -> DbAndIncrement {
    generate_split(&fup_datagen::corpus::scaled(params, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fup_datagen::corpus;

    #[test]
    fn compare_produces_consistent_row() {
        let data = workload(corpus::t10_i4_d100_d1(), 200); // D = 500
        let minsup = MinSupport::percent(2);
        let baseline = mine_baseline(&data.db, minsup);
        let c = compare(&data.db, &data.increment, &baseline, minsup);
        assert_eq!(c.minsup_bp, 200);
        assert!(c.num_large > 0);
        assert!(c.cand_fup <= c.cand_apriori);
        assert!(c.speedup_vs_dhp() > 0.0);
        assert!(c.candidate_ratio_vs_dhp() <= 1.0);
    }

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }
}

//! Figure 4 — speed-up ratio vs increment size, `T10.I4.D100.dm` with
//! `m` from 15K to 350K (up to 3.5× the original database).
//!
//! Paper's shape: the ratio declines with increment size and only levels
//! off near `d ≈ 3.5 × D`, remaining above 1 throughout — FUP wins even
//! when the increment dwarfs the original database.

use crate::harness::{compare, mine_baseline, Comparison};
use crate::table::Table;
use fup_datagen::{corpus, generate_split};
use fup_mining::MinSupport;

/// One increment-size measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Increment size in transactions (after scaling).
    pub increment: u64,
    /// The underlying comparison.
    pub comparison: Comparison,
}

/// The support used for the sweep (the paper plots a single series;
/// s = 2 % sits in the middle of its studied range).
pub const SUPPORT_BP: u64 = 200;

/// Runs the Figure 4 sweep at `1/scale` of the paper's sizes.
pub fn run(scale: u64, seed: u64) -> Vec<Row> {
    let minsup = MinSupport::basis_points(SUPPORT_BP);
    corpus::FIG4_INCREMENTS_K
        .iter()
        .map(|&m| {
            let params = corpus::scaled(corpus::t10_i4_d100_dm(m).with_seed(seed), scale);
            let data = generate_split(&params);
            let baseline = mine_baseline(&data.db, minsup);
            Row {
                increment: data.d_increment(),
                comparison: compare(&data.db, &data.increment, &baseline, minsup),
            }
        })
        .collect()
}

/// Renders the series with the original database size for the `d/D` column.
pub fn render_with_d(rows: &[Row], d_original: u64) -> Table {
    let mut t = Table::new(["increment", "d/D", "DHP/FUP", "Apriori/FUP"]);
    for r in rows {
        t.push([
            r.increment.to_string(),
            format!("{:.2}", r.increment as f64 / d_original.max(1) as f64),
            format!("{:.2}", r.comparison.speedup_vs_dhp()),
            format!("{:.2}", r.comparison.speedup_vs_apriori()),
        ]);
    }
    t
}

/// The paper's qualitative expectation.
pub const PAPER_SHAPE: &str = "paper: speed-up declines with increment size, levelling off only \
     around d = 3.5 x D, and stays above 1 throughout";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_increments() {
        let rows = run(1000, 5); // D = 100; increments 15..350
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].increment, 15);
        assert_eq!(rows[6].increment, 350);
        assert_eq!(render_with_d(&rows, 100).len(), 7);
    }
}

//! Property tests for the workload generator: structural invariants and
//! determinism under arbitrary (valid) parameters.

use fup_datagen::{generate_split, GenParams, QuestGenerator};
use fup_tidb::stats::DbStats;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = GenParams> {
    (
        50u64..400,   // D
        1u64..100,    // d
        2.0f64..12.0, // |T|
        1.0f64..5.0,  // |I|
        10u32..120,   // |L|
        20u32..300,   // N
        1u32..8,      // S_c
        2u32..10,     // P_s (≤ |L| guaranteed below)
        any::<u64>(), // seed
    )
        .prop_map(
            |(d_big, d_inc, t, i, patterns, items, sc, ps, seed)| GenParams {
                num_transactions: d_big,
                increment_size: d_inc,
                avg_transaction_len: t,
                avg_pattern_len: i,
                num_patterns: patterns,
                num_items: items,
                clustering_size: sc,
                pool_size: ps.min(patterns),
                seed,
                ..GenParams::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_transactions_are_well_formed(params in arb_params()) {
        let mut g = QuestGenerator::new(params.clone());
        let txs = g.generate(120);
        prop_assert_eq!(txs.len(), 120);
        for t in &txs {
            prop_assert!(!t.is_empty());
            prop_assert!(t.items().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(t.items().iter().all(|i| i.raw() < params.num_items));
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed(params in arb_params()) {
        let a = QuestGenerator::new(params.clone()).generate(60);
        let b = QuestGenerator::new(params.clone()).generate(60);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn split_partitions_one_stream(params in arb_params()) {
        let data = generate_split(&params);
        prop_assert_eq!(data.d_original(), params.num_transactions);
        prop_assert_eq!(data.d_increment(), params.increment_size);
        let full = QuestGenerator::new(params.clone())
            .generate(params.num_transactions + params.increment_size);
        prop_assert_eq!(data.db.raw(), &full[..params.num_transactions as usize]);
        prop_assert_eq!(data.increment.raw(), &full[params.num_transactions as usize..]);
    }

    #[test]
    fn mean_length_is_bounded_by_parameter(params in arb_params()) {
        // The assembly loop closes transactions at the Poisson target, so
        // the realised mean cannot exceed ~|T| + one pattern's width, and
        // must be at least 1.
        let mut g = QuestGenerator::new(params.clone());
        let db = g.generate_db(300);
        let stats = DbStats::collect(&db);
        prop_assert!(stats.mean_len() >= 1.0);
        prop_assert!(
            stats.mean_len() <= params.avg_transaction_len + params.avg_pattern_len + 3.0,
            "mean {} vs |T| {}",
            stats.mean_len(),
            params.avg_transaction_len
        );
    }
}

//! Generator parameters and the paper's `Tx.Iy.Dm.dn` naming scheme.

use std::fmt;

/// Parameters of the synthetic workload generator — Table 1 of the paper
/// plus the secondary parameters of §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// `D`: number of transactions in the original database.
    pub num_transactions: u64,
    /// `d`: number of transactions in the increment.
    pub increment_size: u64,
    /// `|T|`: mean transaction size (paper: 10).
    pub avg_transaction_len: f64,
    /// `|I|`: mean size of the maximal potentially large itemsets
    /// (paper: 4).
    pub avg_pattern_len: f64,
    /// `|L|`: number of potentially large itemsets (paper: 2000).
    pub num_patterns: u32,
    /// `N`: number of items (paper: 1000).
    pub num_items: u32,
    /// `S_c`: clustering size — patterns are generated in clusters of this
    /// many; correlation chains reset at cluster boundaries (paper: 5).
    pub clustering_size: u32,
    /// `P_s`: pool size — transactions draw patterns from a rotating pool
    /// of this many (paper: 50).
    pub pool_size: u32,
    /// `M_f`: multiplying factor scaling per-pattern usage quotas in the
    /// pool (paper: 2000).
    pub multiplying_factor: u32,
    /// Mean of the exponentially-distributed correlation level between
    /// consecutive patterns in a cluster (AS94 uses 0.5).
    pub correlation_mean: f64,
    /// Mean/std-dev of the normally-distributed per-pattern corruption
    /// level (AS94 uses 0.5 / 0.1).
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level.
    pub corruption_sdev: f64,
    /// Zipf exponent for item popularity: pattern filler items (and the
    /// empty-transaction fallback) draw item `k` with probability
    /// ∝ 1/(k+1)^skew, so low-numbered items dominate realistically
    /// skewed corpora. `0.0` (the default) is **exactly** the historical
    /// uniform draw — same PRNG consumption, byte-identical corpora.
    pub item_skew: f64,
    /// Seed for the deterministic PRNG.
    pub seed: u64,
}

impl Default for GenParams {
    /// The paper's fixed setting: `|L| = 2000`, `N = 1000`, `S_c = 5`,
    /// `P_s = 50`, `M_f = 2000`, with `T10.I4.D100.d1` sizes.
    fn default() -> Self {
        GenParams {
            num_transactions: 100_000,
            increment_size: 1_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 2_000,
            num_items: 1_000,
            clustering_size: 5,
            pool_size: 50,
            multiplying_factor: 2_000,
            correlation_mean: 0.5,
            corruption_mean: 0.5,
            corruption_sdev: 0.1,
            item_skew: 0.0,
            seed: 0x5eed_f00d,
        }
    }
}

impl GenParams {
    /// Builds the paper's `Tx.Iy.Dm.dn` parameter set: `|T| = x`,
    /// `|I| = y`, `D = m` thousand, `d = n` thousand (all other parameters
    /// at the paper's defaults).
    pub fn notation(t: u32, i: u32, d_thousands: u64, inc_thousands: u64) -> Self {
        GenParams {
            avg_transaction_len: f64::from(t),
            avg_pattern_len: f64::from(i),
            num_transactions: d_thousands * 1_000,
            increment_size: inc_thousands * 1_000,
            ..GenParams::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different increment size (in transactions).
    pub fn with_increment(mut self, d: u64) -> Self {
        self.increment_size = d;
        self
    }

    /// Returns a copy with a different item-popularity Zipf exponent
    /// (see [`item_skew`](Self::item_skew); `0.0` restores the uniform
    /// draw).
    pub fn with_item_skew(mut self, skew: f64) -> Self {
        self.item_skew = skew;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (zero items/patterns, means ≤ 0,
    /// pool larger than pattern count).
    pub fn validate(&self) {
        assert!(self.num_items > 0, "need at least one item");
        assert!(self.num_patterns > 0, "need at least one pattern");
        assert!(self.avg_transaction_len > 0.0, "|T| must be positive");
        assert!(self.avg_pattern_len > 0.0, "|I| must be positive");
        assert!(self.clustering_size > 0, "S_c must be positive");
        assert!(self.pool_size > 0, "P_s must be positive");
        assert!(
            self.pool_size <= self.num_patterns,
            "pool cannot exceed the pattern count"
        );
        assert!(self.multiplying_factor > 0, "M_f must be positive");
        assert!(
            (0.0..=1.0).contains(&self.corruption_mean),
            "corruption mean in [0,1]"
        );
        assert!(
            self.item_skew.is_finite() && self.item_skew >= 0.0,
            "item skew must be a finite non-negative exponent"
        );
    }

    /// The `Tx.Iy.Dm.dn` name of this configuration.
    pub fn name(&self) -> String {
        format!(
            "T{}.I{}.D{}.d{}",
            self.avg_transaction_len as u64,
            self.avg_pattern_len as u64,
            self.num_transactions / 1_000,
            self.increment_size / 1_000
        )
    }
}

impl fmt::Display for GenParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (|L|={}, N={}, S_c={}, P_s={}, M_f={}, skew={}, seed={:#x})",
            self.name(),
            self.num_patterns,
            self.num_items,
            self.clustering_size,
            self.pool_size,
            self.multiplying_factor,
            self.item_skew,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table1() {
        let p = GenParams::default();
        assert_eq!(p.num_patterns, 2000);
        assert_eq!(p.num_items, 1000);
        assert_eq!(p.clustering_size, 5);
        assert_eq!(p.pool_size, 50);
        assert_eq!(p.multiplying_factor, 2000);
        p.validate();
    }

    #[test]
    fn notation_builds_paper_configs() {
        let p = GenParams::notation(10, 4, 100, 1);
        assert_eq!(p.name(), "T10.I4.D100.d1");
        assert_eq!(p.num_transactions, 100_000);
        assert_eq!(p.increment_size, 1_000);
        let p = GenParams::notation(10, 4, 1000, 10);
        assert_eq!(p.name(), "T10.I4.D1000.d10");
    }

    #[test]
    fn with_helpers() {
        let p = GenParams::default()
            .with_seed(9)
            .with_increment(5_000)
            .with_item_skew(0.8);
        assert_eq!(p.seed, 9);
        assert_eq!(p.increment_size, 5_000);
        assert_eq!(p.item_skew, 0.8);
        p.validate();
    }

    #[test]
    fn default_item_skew_is_uniform() {
        assert_eq!(GenParams::default().item_skew, 0.0);
    }

    #[test]
    #[should_panic(expected = "item skew")]
    fn negative_item_skew_rejected() {
        GenParams::default().with_item_skew(-0.5).validate();
    }

    #[test]
    #[should_panic(expected = "item skew")]
    fn nan_item_skew_rejected() {
        GenParams::default().with_item_skew(f64::NAN).validate();
    }

    #[test]
    #[should_panic(expected = "pool cannot exceed")]
    fn oversized_pool_rejected() {
        let p = GenParams {
            pool_size: 5000,
            ..GenParams::default()
        };
        p.validate();
    }

    #[test]
    fn display_mentions_secondary_parameters() {
        let text = GenParams::default().to_string();
        assert!(text.contains("T10.I4.D100.d1"));
        assert!(text.contains("S_c=5"));
    }
}

//! Self-contained deterministic PRNG and distribution samplers.
//!
//! The experiments must be reproducible bit-for-bit across machines and
//! dependency upgrades, so the generator carries its own PCG32
//! implementation (O'Neill 2014) instead of depending on `rand`'s
//! version-dependent streams.

/// PCG32 (XSH-RR variant): 64-bit state, 32-bit output.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seeds the generator; `seed` selects the state, `stream` the
    /// increment sequence (two generators with different streams are
    /// independent even with equal seeds).
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Seeds with the default stream.
    pub fn seed_from(seed: u64) -> Self {
        Self::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform integer in `[0, bound)` via Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = u64::from(r) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 32 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        f64::from(self.next_u32()) / (u32::MAX as f64 + 1.0)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // 1 − U ∈ (0, 1] avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Poisson variate with mean `lambda` (Knuth's product method; fine
    /// for the small means — |T| = 10, |I| = 4 — the workloads use).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda > 0.0 && lambda < 60.0, "Knuth method range");
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Normal variate via Box–Muller (one value per call; the pair's
    /// second half is discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }
}

/// Zipf-distributed rank sampler over `[0, n)`: rank `k` is drawn with
/// probability ∝ `1/(k+1)^skew` via a precomputed inverse CDF.
///
/// A skew of `0` delegates to the uniform [`Pcg32::below`] draw — the
/// *same* call, consuming the PRNG stream identically — so workloads
/// configured without skew stay byte-identical to those generated before
/// this sampler existed.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u32,
    /// Cumulative probabilities; empty on the uniform (skew 0) path.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skew` is negative or non-finite.
    pub fn new(n: u32, skew: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            skew.is_finite() && skew >= 0.0,
            "skew must be a finite non-negative exponent"
        );
        if skew == 0.0 {
            return Zipf { n, cdf: Vec::new() };
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += f64::from(k + 1).powf(skew).recip();
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { n, cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u32 {
        self.n
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Pcg32) -> u32 {
        if self.cdf.is_empty() {
            return rng.below(self.n);
        }
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.n as usize - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed_from(42);
        let mut b = Pcg32::seed_from(42);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
        let mut c = Pcg32::seed_from(43);
        let vc: Vec<u32> = (0..16).map(|_| c.next_u32()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::new(1, 1);
        let mut b = Pcg32::new(1, 2);
        assert_ne!(
            (0..8).map(|_| a.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u32()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed_from(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should occur");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        Pcg32::seed_from(1).below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from(9);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = Pcg32::seed_from(11);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(10.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "poisson mean {mean}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Pcg32::seed_from(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "exponential mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = Pcg32::seed_from(17);
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| rng.normal(0.5, 0.1)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "normal mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "normal sd {}", var.sqrt());
    }

    #[test]
    fn zipf_zero_skew_is_the_uniform_draw_bit_for_bit() {
        let zipf = Zipf::new(100, 0.0);
        let mut a = Pcg32::seed_from(23);
        let mut b = Pcg32::seed_from(23);
        let via_zipf: Vec<u32> = (0..512).map(|_| zipf.sample(&mut a)).collect();
        let via_below: Vec<u32> = (0..512).map(|_| b.below(100)).collect();
        assert_eq!(via_zipf, via_below, "skew 0 must not perturb the stream");
        // The streams themselves stay aligned afterwards too.
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = Pcg32::seed_from(29);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(
            head > 20 * tail.max(1),
            "head {head} should dwarf tail {tail}"
        );
        assert!(counts[0] > counts[99].max(1) * 10, "rank 0 dominates");
    }

    #[test]
    fn zipf_sampling_is_deterministic_and_in_range() {
        let zipf = Zipf::new(64, 1.3);
        assert_eq!(zipf.ranks(), 64);
        let a: Vec<u32> = {
            let mut rng = Pcg32::seed_from(31);
            (0..256).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = Pcg32::seed_from(31);
            (0..256).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| r < 64));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn zipf_rejects_negative_skew() {
        Zipf::new(10, -1.0);
    }

    #[test]
    fn chance_probability_is_close() {
        let mut rng = Pcg32::seed_from(19);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2300..2700).contains(&hits), "hits {hits}");
    }
}

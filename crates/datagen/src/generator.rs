//! Transaction synthesis.

use crate::params::GenParams;
use crate::pool::{PatternPool, PatternSet};
use crate::rng::{Pcg32, Zipf};
use fup_tidb::{ItemId, Transaction, TransactionDb};

/// Streaming generator of synthetic transactions for one parameter set.
///
/// Assembly follows AS94: each transaction targets a Poisson-distributed
/// size; patterns are drawn (from the rotating pool), *corrupted* by
/// dropping items while a uniform draw stays below the pattern's corruption
/// level, and unioned into the transaction. A pattern that would overflow
/// the target size is added anyway in half of the cases, otherwise the
/// transaction is closed.
pub struct QuestGenerator {
    params: GenParams,
    patterns: PatternSet,
    rng: Pcg32,
}

impl QuestGenerator {
    /// Creates a generator; the pattern set is derived deterministically
    /// from `params.seed`.
    pub fn new(params: GenParams) -> Self {
        params.validate();
        let mut rng = Pcg32::new(params.seed, 0x1234_5678_9abc_def0);
        let patterns = PatternSet::generate(&params, &mut rng);
        QuestGenerator {
            params,
            patterns,
            rng,
        }
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// The underlying pattern set (exposed for analysis/tests).
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Generates exactly `n` transactions.
    pub fn generate(&mut self, n: u64) -> Vec<Transaction> {
        let QuestGenerator {
            params,
            patterns,
            rng,
        } = self;
        let mut pool = PatternPool::new(patterns, params, rng);
        let items_dist = Zipf::new(params.num_items, params.item_skew);
        let mut out = Vec::with_capacity(n as usize);
        let mut scratch: Vec<ItemId> = Vec::new();
        for _ in 0..n {
            out.push(one_transaction(
                params,
                rng,
                &mut pool,
                &items_dist,
                &mut scratch,
            ));
        }
        out
    }

    /// Generates `n` transactions directly into a [`TransactionDb`].
    pub fn generate_db(&mut self, n: u64) -> TransactionDb {
        TransactionDb::from_transactions(self.generate(n))
    }
}

/// Pushes every item of `kept` not already present into `scratch`.
fn merge_new(scratch: &mut Vec<ItemId>, kept: &[ItemId]) {
    for &i in kept {
        if !scratch.contains(&i) {
            scratch.push(i);
        }
    }
}

fn one_transaction(
    params: &GenParams,
    rng: &mut Pcg32,
    pool: &mut PatternPool<'_>,
    items_dist: &Zipf,
    scratch: &mut Vec<ItemId>,
) -> Transaction {
    let target =
        (rng.poisson(params.avg_transaction_len).max(1) as usize).min(params.num_items as usize);
    scratch.clear();
    // Cap attempts so pathological corruption cannot loop forever.
    let max_attempts = 4 * target + 16;
    for _ in 0..max_attempts {
        if scratch.len() >= target {
            break;
        }
        let pattern = pool.draw(rng);
        // Corrupt: drop items while uniform < corruption level.
        let mut kept: Vec<ItemId> = Vec::with_capacity(pattern.items.len());
        for &item in &pattern.items {
            if !rng.chance(pattern.corruption) {
                kept.push(item);
            }
        }
        if kept.is_empty() {
            continue;
        }
        let new_items = kept.iter().filter(|i| !scratch.contains(i)).count();
        if scratch.len() + new_items > target {
            // Overflow: keep it anyway half the time, else close.
            if rng.chance(0.5) {
                merge_new(scratch, &kept);
            }
            break;
        }
        merge_new(scratch, &kept);
    }
    if scratch.is_empty() {
        // Ensure non-empty output: fall back to one random item.
        scratch.push(ItemId(items_dist.sample(rng)));
    }
    Transaction::from_items(scratch.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GenParams {
        GenParams {
            num_transactions: 1_000,
            increment_size: 100,
            num_patterns: 200,
            num_items: 100,
            pool_size: 20,
            ..GenParams::default()
        }
    }

    #[test]
    fn generates_requested_count() {
        let mut g = QuestGenerator::new(small_params());
        let txs = g.generate(500);
        assert_eq!(txs.len(), 500);
        assert!(txs.iter().all(|t| !t.is_empty()));
        assert!(txs.iter().all(|t| t.items().iter().all(|i| i.raw() < 100)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = QuestGenerator::new(small_params()).generate(200);
        let b = QuestGenerator::new(small_params()).generate(200);
        assert_eq!(a, b);
        let c = QuestGenerator::new(small_params().with_seed(99)).generate(200);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_transaction_length_tracks_parameter() {
        let params = GenParams {
            num_items: 1000,
            num_patterns: 2000,
            pool_size: 50,
            ..GenParams::default()
        };
        let mut g = QuestGenerator::new(params);
        let txs = g.generate(3_000);
        let mean: f64 = txs.iter().map(|t| t.len() as f64).sum::<f64>() / txs.len() as f64;
        // Target |T| = 10; pattern-overflow closing biases slightly low.
        assert!(
            (6.0..=12.0).contains(&mean),
            "mean transaction length {mean}"
        );
    }

    #[test]
    fn workload_contains_frequent_patterns() {
        // The generator's whole point: some itemsets occur far more often
        // than independence would allow. Check the heaviest pattern's top-2
        // items co-occur noticeably.
        let params = GenParams {
            num_items: 1000,
            num_patterns: 50,
            pool_size: 10,
            corruption_mean: 0.2,
            ..GenParams::default()
        };
        let mut g = QuestGenerator::new(params);
        let txs = g.generate(2_000);
        let heavy = g
            .patterns()
            .patterns()
            .iter()
            .filter(|p| p.items.len() >= 2)
            .max_by(|a, b| a.weight.total_cmp(&b.weight))
            .unwrap()
            .clone();
        let pair = [heavy.items[0], heavy.items[1]];
        let co = txs.iter().filter(|t| t.contains_itemset(&pair)).count() as f64 / txs.len() as f64;
        // Independent 2 items out of 1000 in 10-item transactions would
        // co-occur with probability ~1e-4; the pattern should beat that by
        // orders of magnitude.
        assert!(co > 0.005, "co-occurrence too low: {co}");
    }

    #[test]
    fn generate_db_wraps_transactions() {
        let mut g = QuestGenerator::new(small_params());
        let db = g.generate_db(50);
        assert_eq!(db.len(), 50);
    }

    #[test]
    fn skewed_corpus_is_deterministic_per_seed() {
        let params = small_params().with_item_skew(1.2);
        let a = QuestGenerator::new(params.clone()).generate(300);
        let b = QuestGenerator::new(params.clone()).generate(300);
        assert_eq!(a, b, "same seed, same skew, same corpus");
        let c = QuestGenerator::new(params.with_seed(77)).generate(300);
        assert_ne!(a, c);
    }

    #[test]
    fn item_skew_concentrates_popularity_on_low_ids() {
        let uniform = QuestGenerator::new(small_params()).generate(1_000);
        let skewed = QuestGenerator::new(small_params().with_item_skew(1.5)).generate(1_000);
        // Fraction of item occurrences landing in the low half of the
        // item space (ids < 50 of 100).
        let low_share = |txs: &[Transaction]| {
            let mut low = 0usize;
            let mut all = 0usize;
            for t in txs {
                for i in t.items() {
                    all += 1;
                    low += usize::from(i.raw() < 50);
                }
            }
            low as f64 / all as f64
        };
        let u = low_share(&uniform);
        let s = low_share(&skewed);
        assert!(s > u + 0.1, "skewed low-id share {s} vs uniform {u}");
        assert!(s > 0.7, "Zipf 1.5 should concentrate hard: {s}");
    }

    #[test]
    fn zero_skew_matches_the_default_corpus_exactly() {
        // `with_item_skew(0.0)` must be a no-op on the byte level.
        let a = QuestGenerator::new(small_params()).generate(200);
        let b = QuestGenerator::new(small_params().with_item_skew(0.0)).generate(200);
        assert_eq!(a, b);
    }

    #[test]
    fn successive_batches_differ() {
        let mut g = QuestGenerator::new(small_params());
        let a = g.generate(100);
        let b = g.generate(100);
        assert_ne!(a, b, "stream should advance between batches");
    }
}

//! Named workload presets for every experiment in the paper's §4.

use crate::params::GenParams;

/// `T10.I4.D100.d1` — the workload of Figures 2 and 3 (§4.2, §4.3).
pub fn t10_i4_d100_d1() -> GenParams {
    GenParams::notation(10, 4, 100, 1)
}

/// `T10.I4.D100.dm` — the increment-size sweeps of §4.4 and Figure 4,
/// parameterised by the increment size in thousands.
pub fn t10_i4_d100_dm(m_thousands: u64) -> GenParams {
    GenParams::notation(10, 4, 100, m_thousands)
}

/// `T10.I4.D1000.d10` — the 1M-transaction scale-up workload of §4.6.
pub fn t10_i4_d1000_d10() -> GenParams {
    GenParams::notation(10, 4, 1000, 10)
}

/// The increment sizes (in thousands) of Figure 4's sweep.
pub const FIG4_INCREMENTS_K: [u64; 7] = [15, 25, 75, 125, 175, 250, 350];

/// The minimum supports (in basis points) used by Figures 2 and 3:
/// 6 %, 4 %, 2 %, 1 %, 0.75 %.
pub const FIG2_SUPPORTS_BP: [u64; 5] = [600, 400, 200, 100, 75];

/// A laptop-scale variant of a paper workload, shrinking `D` (and the
/// pattern/item universe proportionally is *not* needed — only size) so
/// unit tests and examples run in milliseconds. Shapes are preserved
/// because all parameters except `D`/`d` stay at the paper's values.
pub fn scaled(params: GenParams, factor: u64) -> GenParams {
    assert!(factor > 0, "scale factor must be positive");
    GenParams {
        num_transactions: (params.num_transactions / factor).max(1),
        increment_size: (params.increment_size / factor).max(1),
        ..params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_names() {
        assert_eq!(t10_i4_d100_d1().name(), "T10.I4.D100.d1");
        assert_eq!(t10_i4_d100_dm(10).name(), "T10.I4.D100.d10");
        assert_eq!(t10_i4_d1000_d10().name(), "T10.I4.D1000.d10");
    }

    #[test]
    fn fig_constants_match_paper() {
        assert_eq!(FIG4_INCREMENTS_K.len(), 7);
        assert_eq!(FIG2_SUPPORTS_BP, [600, 400, 200, 100, 75]);
    }

    #[test]
    fn scaled_divides_sizes_only() {
        let p = scaled(t10_i4_d100_d1(), 100);
        assert_eq!(p.num_transactions, 1_000);
        assert_eq!(p.increment_size, 10);
        assert_eq!(p.num_items, 1_000);
        assert_eq!(p.num_patterns, 2_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = scaled(t10_i4_d100_d1(), 0);
    }
}

//! Database + increment generation by the paper's split method.
//!
//! §4.1: "A database of size `(D + d)` is first generated and then the
//! first `D` transactions are stored in the database `DB` and the
//! remaining `d` transactions is stored in the increment `db`. Since all
//! the transactions are generated from the same statistical pattern, it
//! models very well real life updates."

use crate::generator::QuestGenerator;
use crate::params::GenParams;
use fup_tidb::{Transaction, TransactionDb};

/// The result of one generation run: the original database and the
/// increment, drawn from the same statistical stream.
#[derive(Debug)]
pub struct DbAndIncrement {
    /// The original database `DB` (`D` transactions).
    pub db: TransactionDb,
    /// The increment `db` (`d` transactions).
    pub increment: TransactionDb,
}

impl DbAndIncrement {
    /// `D`: size of the original database.
    pub fn d_original(&self) -> u64 {
        self.db.len() as u64
    }

    /// `d`: size of the increment.
    pub fn d_increment(&self) -> u64 {
        self.increment.len() as u64
    }
}

/// Generates `D + d` transactions and splits them per the paper.
pub fn generate_split(params: &GenParams) -> DbAndIncrement {
    let d_orig = params.num_transactions;
    let d_inc = params.increment_size;
    let mut generator = QuestGenerator::new(params.clone());
    let mut all: Vec<Transaction> = generator.generate(d_orig + d_inc);
    let inc: Vec<Transaction> = all.split_off(d_orig as usize);
    DbAndIncrement {
        db: TransactionDb::from_transactions(all),
        increment: TransactionDb::from_transactions(inc),
    }
}

/// Generates a database plus a *sequence* of increments of the given
/// sizes, all from one statistical stream — used by multi-update
/// maintenance scenarios and examples.
pub fn generate_multi_split(
    params: &GenParams,
    increment_sizes: &[u64],
) -> (TransactionDb, Vec<TransactionDb>) {
    let total_inc: u64 = increment_sizes.iter().sum();
    let mut generator = QuestGenerator::new(params.clone());
    let mut all = generator.generate(params.num_transactions + total_inc);
    let mut increments = Vec::with_capacity(increment_sizes.len());
    // Split from the back so indices stay valid.
    let mut cut = all.len();
    for &size in increment_sizes.iter().rev() {
        cut -= size as usize;
        increments.push(all.split_off(cut));
    }
    increments.reverse();
    (
        TransactionDb::from_transactions(all),
        increments
            .into_iter()
            .map(TransactionDb::from_transactions)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GenParams {
        GenParams {
            num_transactions: 800,
            increment_size: 200,
            num_patterns: 100,
            num_items: 100,
            pool_size: 20,
            ..GenParams::default()
        }
    }

    #[test]
    fn split_sizes_match_parameters() {
        let data = generate_split(&small_params());
        assert_eq!(data.d_original(), 800);
        assert_eq!(data.d_increment(), 200);
    }

    #[test]
    fn split_is_prefix_suffix_of_one_stream() {
        let params = small_params();
        let data = generate_split(&params);
        // Regenerate the full stream and compare.
        let mut g = QuestGenerator::new(params);
        let full = g.generate(1_000);
        assert_eq!(data.db.raw(), &full[..800]);
        assert_eq!(data.increment.raw(), &full[800..]);
    }

    #[test]
    fn multi_split_partitions_the_stream() {
        let params = small_params();
        let (db, incs) = generate_multi_split(&params, &[50, 100, 50]);
        assert_eq!(db.len(), 800);
        assert_eq!(incs.len(), 3);
        assert_eq!(incs[0].len(), 50);
        assert_eq!(incs[1].len(), 100);
        assert_eq!(incs[2].len(), 50);
        // Concatenation reproduces the single stream.
        let mut g = QuestGenerator::new(params);
        let full = g.generate(1_000);
        let mut reassembled: Vec<_> = db.raw().to_vec();
        for inc in &incs {
            reassembled.extend(inc.raw().iter().cloned());
        }
        assert_eq!(reassembled, full);
    }

    #[test]
    fn multi_split_with_no_increments() {
        let params = small_params();
        let (db, incs) = generate_multi_split(&params, &[]);
        assert_eq!(db.len(), 800);
        assert!(incs.is_empty());
    }
}

//! # fup-datagen — synthetic transaction workloads
//!
//! Reimplementation of the IBM Quest synthetic data generator as used by
//! the FUP paper's evaluation (§4.1): "The databases used in our
//! experiments are synthetic data generated using the same technique
//! introduced in \[Agrawal–Srikant\] and modified in \[Park–Chen–Yu\]."
//!
//! The generator first draws a pool of *potentially large itemsets*
//! (patterns) — sizes Poisson-distributed around `|I|`, items correlated
//! with the previous pattern inside a cluster of `S_c` patterns, weights
//! exponentially distributed — and then assembles transactions (sizes
//! Poisson around `|T|`) by unioning corrupted patterns drawn from a
//! rotating pool of `P_s` patterns with per-pattern quotas scaled by `M_f`.
//!
//! Increments are produced exactly as in the paper: "A database of size
//! `(D + d)` is first generated and then the first `D` transactions are
//! stored in the database `DB` and the remaining `d` transactions is
//! stored in the increment `db`. Since all the transactions are generated
//! from the same statistical pattern, it models very well real life
//! updates." See [`split`].
//!
//! Everything is deterministic in the seed ([`rng::Pcg32`] is a
//! self-contained PCG so results do not depend on external crate
//! versions).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod generator;
pub mod params;
pub mod pool;
pub mod rng;
pub mod split;

pub use generator::QuestGenerator;
pub use params::GenParams;
pub use split::{generate_multi_split, generate_split, DbAndIncrement};

//! Potentially large itemsets ("patterns") and the rotating pattern pool.

use crate::params::GenParams;
use crate::rng::{Pcg32, Zipf};
use fup_tidb::ItemId;

/// One potentially large itemset.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// The items, sorted ascending.
    pub items: Vec<ItemId>,
    /// Relative sampling weight (exponentially distributed, normalised).
    pub weight: f64,
    /// Corruption level: when a pattern is placed into a transaction,
    /// items are dropped while a uniform draw stays below this level.
    pub corruption: f64,
}

/// The full set of `|L|` patterns.
#[derive(Debug, Clone)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
    /// Cumulative weights for O(log n) weighted sampling.
    cumulative: Vec<f64>,
}

impl PatternSet {
    /// Generates the pattern set per AS94 §"synthetic data", with the
    /// DHP-style clustering of `S_c` consecutive patterns: inside a
    /// cluster each pattern inherits an exponentially-distributed fraction
    /// of the previous pattern's items; chains reset at cluster
    /// boundaries.
    pub fn generate(params: &GenParams, rng: &mut Pcg32) -> Self {
        params.validate();
        // Item popularity: Zipf over item ids (skew 0 = the historical
        // uniform draw, bit-for-bit).
        let items_dist = Zipf::new(params.num_items, params.item_skew);
        let n = params.num_patterns as usize;
        let mut patterns = Vec::with_capacity(n);
        let mut prev_items: Vec<ItemId> = Vec::new();

        for idx in 0..n {
            // Pattern size: Poisson around |I|, at least 1.
            let size = (rng.poisson(params.avg_pattern_len).max(1) as usize)
                .min(params.num_items as usize);

            let cluster_start = (idx as u32).is_multiple_of(params.clustering_size);
            let mut items: Vec<ItemId> = Vec::with_capacity(size);
            if !cluster_start && !prev_items.is_empty() {
                // Correlated part: an exponentially-distributed fraction of
                // items comes from the previous pattern.
                let frac = rng.exponential(params.correlation_mean).min(1.0);
                let take = ((size as f64) * frac).round() as usize;
                let take = take.min(prev_items.len()).min(size);
                // Sample `take` distinct positions from the previous pattern
                // (partial Fisher–Yates on a copy).
                let mut source = prev_items.clone();
                for i in 0..take {
                    let j = i + rng.below((source.len() - i) as u32) as usize;
                    source.swap(i, j);
                }
                items.extend_from_slice(&source[..take]);
            }
            // Fill the remainder with random items, avoiding duplicates.
            while items.len() < size {
                let candidate = ItemId(items_dist.sample(rng));
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            items.sort_unstable();

            let weight = rng.exponential(1.0);
            let corruption = rng
                .normal(params.corruption_mean, params.corruption_sdev)
                .clamp(0.0, 1.0);
            prev_items.clone_from(&items);
            patterns.push(Pattern {
                items,
                weight,
                corruption,
            });
        }

        // Normalise weights and build the cumulative table.
        let total: f64 = patterns.iter().map(|p| p.weight).sum();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for p in &mut patterns {
            p.weight /= total;
            acc += p.weight;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        PatternSet {
            patterns,
            cumulative,
        }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` if the set has no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Samples a pattern index proportionally to weight.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.patterns.len() - 1)
    }
}

/// The rotating pool of `P_s` patterns transactions draw from.
///
/// Each slot holds a weighted-sampled pattern with a usage quota of
/// `⌈weight × M_f⌉`; once exhausted, the slot is refilled with a fresh
/// sample. This reproduces the locality the DHP-modified generator
/// introduces over plain AS94 sampling.
#[derive(Debug)]
pub struct PatternPool<'a> {
    set: &'a PatternSet,
    slots: Vec<(usize, u32)>, // (pattern index, remaining quota)
    multiplying_factor: u32,
}

impl<'a> PatternPool<'a> {
    /// Builds a pool of `pool_size` slots.
    pub fn new(set: &'a PatternSet, params: &GenParams, rng: &mut Pcg32) -> Self {
        let mut pool = PatternPool {
            set,
            slots: Vec::with_capacity(params.pool_size as usize),
            multiplying_factor: params.multiplying_factor,
        };
        for _ in 0..params.pool_size {
            let slot = pool.fresh_slot(rng);
            pool.slots.push(slot);
        }
        pool
    }

    fn fresh_slot(&self, rng: &mut Pcg32) -> (usize, u32) {
        let idx = self.set.sample(rng);
        let quota = (self.set.patterns()[idx].weight * f64::from(self.multiplying_factor))
            .ceil()
            .max(1.0) as u32;
        (idx, quota)
    }

    /// Draws a pattern from a uniformly random pool slot, decrementing its
    /// quota and refilling the slot when exhausted.
    pub fn draw(&mut self, rng: &mut Pcg32) -> &'a Pattern {
        let s = rng.below(self.slots.len() as u32) as usize;
        let (idx, quota) = self.slots[s];
        if quota <= 1 {
            self.slots[s] = self.fresh_slot(rng);
        } else {
            self.slots[s].1 = quota - 1;
        }
        &self.set.patterns()[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GenParams {
        GenParams {
            num_patterns: 100,
            num_items: 50,
            pool_size: 10,
            ..GenParams::default()
        }
    }

    #[test]
    fn patterns_are_sorted_unique_and_sized() {
        let params = small_params();
        let mut rng = Pcg32::seed_from(1);
        let set = PatternSet::generate(&params, &mut rng);
        assert_eq!(set.len(), 100);
        for p in set.patterns() {
            assert!(!p.items.is_empty());
            assert!(p.items.windows(2).all(|w| w[0] < w[1]), "sorted+unique");
            assert!(p.items.iter().all(|i| i.raw() < 50));
            assert!((0.0..=1.0).contains(&p.corruption));
        }
    }

    #[test]
    fn weights_are_normalised() {
        let params = small_params();
        let mut rng = Pcg32::seed_from(2);
        let set = PatternSet::generate(&params, &mut rng);
        let total: f64 = set.patterns().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "total weight {total}");
    }

    #[test]
    fn generation_is_deterministic() {
        let params = small_params();
        let a = PatternSet::generate(&params, &mut Pcg32::seed_from(3));
        let b = PatternSet::generate(&params, &mut Pcg32::seed_from(3));
        for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
            assert_eq!(pa.items, pb.items);
            assert_eq!(pa.weight, pb.weight);
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let params = small_params();
        let mut rng = Pcg32::seed_from(4);
        let set = PatternSet::generate(&params, &mut rng);
        let mut counts = vec![0u32; set.len()];
        for _ in 0..50_000 {
            counts[set.sample(&mut rng)] += 1;
        }
        // The heaviest pattern should be sampled notably more often than
        // the lightest.
        let (hi, _) = set
            .patterns()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
            .unwrap();
        let (lo, _) = set
            .patterns()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
            .unwrap();
        assert!(counts[hi] > counts[lo], "weighted sampling inverted");
    }

    #[test]
    fn correlation_within_clusters() {
        // With clustering, consecutive patterns inside a cluster share
        // items more often than patterns across independent positions.
        let params = GenParams {
            num_patterns: 500,
            num_items: 1000,
            clustering_size: 5,
            ..GenParams::default()
        };
        let set = PatternSet::generate(&params, &mut Pcg32::seed_from(5));
        let overlap =
            |a: &Pattern, b: &Pattern| a.items.iter().filter(|i| b.items.contains(i)).count();
        let mut intra = 0usize;
        let mut pairs = 0usize;
        for (i, w) in set.patterns().windows(2).enumerate() {
            if !(i as u32 + 1).is_multiple_of(params.clustering_size) {
                intra += overlap(&w[0], &w[1]);
                pairs += 1;
            }
        }
        // Random 4-item sets over 1000 items almost never overlap; with
        // correlation the average intra-cluster overlap is substantial.
        let avg = intra as f64 / pairs as f64;
        assert!(avg > 0.5, "intra-cluster overlap too low: {avg}");
    }

    #[test]
    fn pool_draw_and_rotation() {
        let params = small_params();
        let mut rng = Pcg32::seed_from(6);
        let set = PatternSet::generate(&params, &mut rng);
        let mut pool = PatternPool::new(&set, &params, &mut rng);
        for _ in 0..10_000 {
            let p = pool.draw(&mut rng);
            assert!(!p.items.is_empty());
        }
    }
}

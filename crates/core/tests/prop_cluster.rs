//! The cluster runtime is invisible: a process-per-shard [`Cluster`]
//! must publish **bit-identical** itemsets and rules to a flat
//! [`Maintainer`] over the same history and update stream — per-shard
//! support splits are summed by the coordinator, and supports are
//! additive over disjoint tid ranges, so reassociating the sums cannot
//! change any count (count distribution, exactly as in-process
//! sharding).
//!
//! * **Across shard counts:** the same workload replayed under 1, 2,
//!   and 4 shard workers matches one flat reference after every round.
//! * **Across engines:** the flat reference runs backends {HashTree,
//!   Vertical, Auto} — the cluster always counts through the per-shard
//!   vertical indexes, so identity across backends is exactly the
//!   engine-equivalence contract applied over RPC.
//! * **Cross-shard deletes:** stripes of 1 spread consecutive tids, so
//!   deletes routinely land on shards the round's inserts never touch.
//! * **Crash/recovery:** a scripted case kills one worker, shows the
//!   survivors still serving probes and snapshots, then recovers the
//!   worker from its checkpoint + WAL and commits the held backlog —
//!   with no acknowledged commit lost and the final state still
//!   bit-identical to flat.

use std::sync::Arc;

use fup_core::{Cluster, Error, FupConfig, Maintainer};
use fup_mining::{CountingBackend, MinConfidence, MinSupport};
use fup_tidb::{DurableStorage, MemStorage, ShardSpec, Tid, Transaction, UpdateBatch};
use proptest::prelude::*;

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

/// A random transaction over a small item alphabet (1–6 items of 0..12).
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..12, 1..6).prop_map(Transaction::from_items)
}

fn arb_db(max: usize) -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_transaction(), 0..max)
}

fn arb_minsup() -> impl Strategy<Value = MinSupport> {
    (1u64..=100).prop_map(MinSupport::percent)
}

fn arb_backend() -> impl Strategy<Value = CountingBackend> {
    (0usize..3).prop_map(|i| {
        [
            CountingBackend::HashTree,
            CountingBackend::Vertical,
            CountingBackend::Auto,
        ][i]
    })
}

fn mem_storages(n: usize) -> Vec<Arc<dyn DurableStorage>> {
    (0..n)
        .map(|_| Arc::new(MemStorage::new()) as Arc<dyn DurableStorage>)
        .collect()
}

fn boot_cluster(shards: u32, history: Vec<Transaction>, minsup: MinSupport) -> Cluster {
    Cluster::bootstrap(
        ShardSpec::striped_with(shards, 1),
        mem_storages(shards as usize),
        history,
        minsup,
        MinConfidence::percent(60),
        FupConfig::default(),
    )
    .unwrap()
}

fn flat_reference(
    history: Vec<Transaction>,
    minsup: MinSupport,
    backend: CountingBackend,
) -> Maintainer {
    Maintainer::builder()
        .min_support(minsup)
        .min_confidence(MinConfidence::percent(60))
        .backend(backend)
        .build(history)
        .unwrap()
}

/// Distinct delete targets drawn from `tids` by index.
fn pick_deletes(tids: &[Tid], seed: &[proptest::sample::Index]) -> Vec<Tid> {
    let mut deletes: Vec<Tid> = seed
        .iter()
        .filter(|_| !tids.is_empty())
        .map(|ix| tids[ix.index(tids.len())])
        .collect();
    deletes.sort();
    deletes.dedup();
    deletes
}

/// The bit-identity contract: itemsets with their support counts, and
/// strong rules with their exact counts, match the flat reference.
fn assert_bit_identical(cluster: &Cluster, flat: &Maintainer, label: &str) {
    let cs = cluster.snapshot();
    let fs = flat.snapshot();
    assert_eq!(
        cluster.num_transactions(),
        flat.len() as u64,
        "{label}: live size diverges"
    );
    assert_eq!(
        cs.large_itemsets(),
        fs.large_itemsets(),
        "{label}: itemsets/supports diverge"
    );
    assert_eq!(cs.rules(), fs.rules(), "{label}: rules diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random histories and rounds (mixed inserts and cross-shard
    /// deletes), replayed round-for-round under every shard count
    /// against one flat reference per backend.
    #[test]
    fn cluster_sessions_are_bit_identical_to_flat(
        history in arb_db(12),
        rounds in proptest::collection::vec(
            (arb_db(5), proptest::collection::vec(any::<prop::sample::Index>(), 0..4)),
            0..3,
        ),
        minsup in arb_minsup(),
        backend in arb_backend(),
    ) {
        let mut flat = flat_reference(history.clone(), minsup, backend);
        let mut clusters: Vec<Cluster> = SHARD_COUNTS
            .iter()
            .map(|&s| boot_cluster(s, history.clone(), minsup))
            .collect();
        for c in &clusters {
            assert_bit_identical(c, &flat, "bootstrap");
        }

        let mut live: Vec<Tid> = (0..history.len() as u64).map(Tid).collect();
        let mut next_tid = history.len() as u64;
        for (round, (inserts, delete_seed)) in rounds.into_iter().enumerate() {
            let batch = UpdateBatch {
                inserts,
                deletes: pick_deletes(&live, &delete_seed),
            };
            live.retain(|t| !batch.deletes.contains(t));
            live.extend((0..batch.inserts.len() as u64).map(|i| Tid(next_tid + i)));
            next_tid += batch.inserts.len() as u64;

            let reference = flat.apply(batch.clone()).unwrap();
            for (c, &shards) in clusters.iter_mut().zip(&SHARD_COUNTS) {
                let report = c.apply(batch.clone()).unwrap();
                let label = format!("round {round}, {shards} shard worker(s)");
                prop_assert_eq!(report.algorithm, reference.algorithm, "{}", &label);
                prop_assert_eq!(
                    &report.inserted_tids, &reference.inserted_tids, "{}", &label
                );
                prop_assert_eq!(
                    report.num_transactions, reference.num_transactions, "{}", &label
                );
                assert_bit_identical(c, &flat, &label);
            }
        }
        for c in clusters {
            c.shutdown();
        }
    }
}

/// The issue's crash script, end to end through the public API: one
/// worker is killed mid-stream. The cluster fails rounds fast while
/// holding the staged work, the surviving shard keeps answering probes
/// and the published snapshot keeps serving reads; after a restart the
/// worker recovers everything it acknowledged from its checkpoint + WAL
/// (the bootstrap load **and** a post-checkpoint committed round), the
/// held backlog commits, and the result is bit-identical to flat.
#[test]
fn kill_one_worker_recovery_loses_nothing() {
    let tx = |items: &[u32]| Transaction::from_items(items.iter().copied());
    let history: Vec<Transaction> = (0..8u32).map(|i| tx(&[i % 3, 3 + (i % 4), 10])).collect();
    let minsup = MinSupport::percent(25);
    let mut cluster = boot_cluster(2, history.clone(), minsup);
    let mut flat = flat_reference(history.clone(), minsup, CountingBackend::Auto);

    // An acknowledged round after the bootstrap checkpoint: it exists
    // only in the workers' WALs, so recovery must replay it.
    let committed = UpdateBatch {
        inserts: vec![tx(&[0, 3, 10]), tx(&[1, 4])],
        deletes: vec![Tid(2), Tid(7)],
    };
    cluster.apply(committed.clone()).unwrap();
    flat.apply(committed).unwrap();
    let acknowledged = cluster.snapshot();
    let probe_before = cluster.probe(1).unwrap();

    cluster.kill_worker(1);
    assert!(!cluster.worker_up(1));

    // Staged work is held, not lost: the commit fails fast.
    cluster
        .stage(UpdateBatch::insert_only(vec![tx(&[0, 1, 10])]))
        .unwrap();
    let err = cluster.commit().unwrap_err();
    assert!(matches!(err, Error::WorkerDown { shard: 1, .. }), "{err}");

    // Surviving shard serves probes; snapshots serve reads throughout.
    assert!(cluster.probe(0).unwrap().live > 0);
    assert_eq!(cluster.snapshot().rules(), acknowledged.rules());

    // Rejoin from checkpoint + WAL: the acknowledged round is intact.
    cluster.restart_worker(1).unwrap();
    assert_eq!(cluster.probe(1).unwrap(), probe_before);

    // The held backlog commits now, and identity with flat still holds.
    cluster.commit().unwrap();
    flat.apply(UpdateBatch::insert_only(vec![tx(&[0, 1, 10])]))
        .unwrap();
    let (cs, fs) = (cluster.snapshot(), flat.snapshot());
    assert_eq!(cs.large_itemsets(), fs.large_itemsets());
    assert_eq!(cs.rules(), fs.rules());
    assert_eq!(cluster.num_transactions(), flat.len() as u64);
    cluster.shutdown();
}

//! Property-based equivalence: the correctness theorem of the paper.
//!
//! For arbitrary databases, increments, deletions, and thresholds:
//!
//! * `FUP(DB, L, db)` equals Apriori and DHP re-run on `DB ∪ db`,
//! * `FUP2(DB⁻, L, db⁻, db⁺)` equals a re-mine of `(DB − db⁻) ∪ db⁺`,
//! * every optimisation configuration produces identical results.

use fup_core::{Fup, Fup2, FupConfig};
use fup_mining::{Apriori, CountingBackend, Dhp, MinSupport};
use fup_tidb::source::ChainSource;
use fup_tidb::{SegmentedDb, Transaction, TransactionDb, UpdateBatch};
use proptest::prelude::*;

/// A random transaction over a small item alphabet (1–6 items of 0..12).
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..12, 1..6).prop_map(Transaction::from_items)
}

fn arb_db(max: usize) -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_transaction(), 0..max)
}

/// Minimum supports spanning sparse to dense outcomes.
fn arb_minsup() -> impl Strategy<Value = MinSupport> {
    (1u64..=100).prop_map(MinSupport::percent)
}

/// All three counting backends (the updaters must be exact under each).
fn arb_backend() -> impl Strategy<Value = CountingBackend> {
    (0usize..3).prop_map(|i| {
        [
            CountingBackend::HashTree,
            CountingBackend::Vertical,
            CountingBackend::Auto,
        ][i]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fup_equals_remine(
        original in arb_db(40),
        increment in arb_db(20),
        minsup in arb_minsup(),
        reduce_db in any::<bool>(),
        dhp_hash in any::<bool>(),
        backend in arb_backend(),
    ) {
        let db = TransactionDb::from_transactions(original);
        let inc = TransactionDb::from_transactions(increment);
        let mut config = FupConfig { reduce_db, dhp_hash, ..FupConfig::default() };
        config.engine.backend = backend;

        let baseline = Apriori::new().run(&db, minsup).large;
        let out = Fup::with_config(config)
            .update(&db, &baseline, &inc, minsup)
            .unwrap();

        let whole = ChainSource::new(&db, &inc);
        let apriori = Apriori::new().run(&whole, minsup).large;
        prop_assert!(
            out.large.same_itemsets(&apriori),
            "FUP vs Apriori: {:?}",
            out.large.diff(&apriori)
        );
        let dhp = Dhp::new().run(&whole, minsup).large;
        prop_assert!(
            out.large.same_itemsets(&dhp),
            "FUP vs DHP: {:?}",
            out.large.diff(&dhp)
        );
    }

    #[test]
    fn fup2_equals_remine(
        original in arb_db(30),
        inserts in arb_db(15),
        delete_seed in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
        minsup in arb_minsup(),
        reduce_db in any::<bool>(),
        backend in arb_backend(),
    ) {
        let mut store = SegmentedDb::new();
        let tids = store.append_all(original);
        // Distinct delete targets chosen by index into the original.
        let mut deletes: Vec<_> = delete_seed
            .iter()
            .filter(|_| !tids.is_empty())
            .map(|ix| tids[ix.index(tids.len())])
            .collect();
        deletes.sort();
        deletes.dedup();

        let baseline = Apriori::new().run(&store, minsup).large;
        let staged = store
            .stage(UpdateBatch { inserts, deletes })
            .unwrap();
        let mut config = FupConfig { reduce_db, ..FupConfig::default() };
        config.engine.backend = backend;
        let out = Fup2::with_config(config)
            .update(&store, &baseline, staged.deleted(), staged.inserted(), minsup)
            .unwrap();

        let updated = ChainSource::new(&store, staged.inserted());
        let remined = Apriori::new().run(&updated, minsup).large;
        prop_assert!(
            out.large.same_itemsets(&remined),
            "FUP2 vs re-mine: {:?}",
            out.large.diff(&remined)
        );
    }

    #[test]
    fn chained_updates_stay_consistent(
        original in arb_db(20),
        inc1 in arb_db(10),
        inc2 in arb_db(10),
        minsup in arb_minsup(),
    ) {
        // FUP result feeds the next FUP round; after two rounds the result
        // must still equal a from-scratch mine.
        let db0 = TransactionDb::from_transactions(original);
        let i1 = TransactionDb::from_transactions(inc1);
        let i2 = TransactionDb::from_transactions(inc2);

        let l0 = Apriori::new().run(&db0, minsup).large;
        let l1 = Fup::new().update(&db0, &l0, &i1, minsup).unwrap().large;

        // Materialise DB ∪ db1 to feed round 2.
        let mut merged = TransactionDb::new();
        merged.extend(db0.raw().iter().cloned());
        merged.extend(i1.raw().iter().cloned());
        let l2 = Fup::new().update(&merged, &l1, &i2, minsup).unwrap().large;

        let mut whole = TransactionDb::new();
        whole.extend(merged.raw().iter().cloned());
        whole.extend(i2.raw().iter().cloned());
        let fresh = Apriori::new().run(&whole, minsup).large;
        prop_assert!(
            l2.same_itemsets(&fresh),
            "chained FUP diverged: {:?}",
            l2.diff(&fresh)
        );
    }

    #[test]
    fn fup_supports_are_exact_counts(
        original in arb_db(25),
        increment in arb_db(10),
        minsup in arb_minsup(),
    ) {
        // Every reported support equals the true containment count over
        // DB ∪ db.
        let db = TransactionDb::from_transactions(original);
        let inc = TransactionDb::from_transactions(increment);
        let baseline = Apriori::new().run(&db, minsup).large;
        let out = Fup::new().update(&db, &baseline, &inc, minsup).unwrap();
        for (x, reported) in out.large.iter() {
            let truth = db
                .raw()
                .iter()
                .chain(inc.raw().iter())
                .filter(|t| t.contains_itemset(x.items()))
                .count() as u64;
            prop_assert_eq!(reported, truth, "support of {:?}", x);
        }
    }
}

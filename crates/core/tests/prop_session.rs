//! Property tests for the session API.
//!
//! * **Staging is associative:** `stage(a); stage(b); commit()` is
//!   bit-identical — itemsets, supports, and report counts — to
//!   `apply(a + b)` on an identically-configured reference session,
//!   across counting backends and thread counts.
//! * **Index persistence is invisible:** a session that keeps its
//!   [`VerticalIndex`] across rounds (extending it on insert-only
//!   commits, rebuilding after deletions or dictionary growth) produces
//!   supports bit-identical to a fresh index rebuild — an Apriori re-mine
//!   on the vertical backend — after every round.

use fup_core::{FupConfig, Maintainer};
use fup_mining::apriori::AprioriConfig;
use fup_mining::{Apriori, CountingBackend, MinConfidence, MinSupport};
use fup_tidb::{Tid, Transaction, UpdateBatch};
use proptest::prelude::*;

/// A random transaction over a small item alphabet (1–6 items of 0..12).
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..12, 1..6).prop_map(Transaction::from_items)
}

fn arb_db(max: usize) -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_transaction(), 0..max)
}

fn arb_minsup() -> impl Strategy<Value = MinSupport> {
    (1u64..=100).prop_map(MinSupport::percent)
}

fn arb_backend() -> impl Strategy<Value = CountingBackend> {
    (0usize..3).prop_map(|i| {
        [
            CountingBackend::HashTree,
            CountingBackend::Vertical,
            CountingBackend::Auto,
        ][i]
    })
}

/// The thread counts the engine property tests pin throughout the repo.
fn arb_threads() -> impl Strategy<Value = usize> {
    (0usize..3).prop_map(|i| [1usize, 2, 8][i])
}

/// Distinct delete targets drawn from `tids` by index.
fn pick_deletes(tids: &[Tid], seed: &[proptest::sample::Index]) -> Vec<Tid> {
    let mut deletes: Vec<Tid> = seed
        .iter()
        .filter(|_| !tids.is_empty())
        .map(|ix| tids[ix.index(tids.len())])
        .collect();
    deletes.sort();
    deletes.dedup();
    deletes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: stage(a); stage(b); commit() ≡ apply(a+b) on a second,
    /// identically-configured session, bit-identical across backends ×
    /// threads.
    #[test]
    fn staged_commit_equals_concatenated_apply(
        history in arb_db(30),
        inserts_a in arb_db(10),
        inserts_b in arb_db(10),
        delete_seed in proptest::collection::vec(any::<prop::sample::Index>(), 0..8),
        split in any::<prop::sample::Index>(),
        minsup in arb_minsup(),
        backend in arb_backend(),
        threads in arb_threads(),
    ) {
        let minconf = MinConfidence::percent(60);
        let mut config = FupConfig::default().with_threads(threads);
        config.engine.backend = backend;

        let mut reference = Maintainer::builder()
            .min_support(minsup)
            .min_confidence(minconf)
            .fup_config(config.clone())
            .build(history.clone())
            .unwrap();
        let mut session = Maintainer::builder()
            .min_support(minsup)
            .min_confidence(minconf)
            .fup_config(config)
            .build(history)
            .unwrap();

        // Distinct delete targets, split between the two staged batches.
        let tids: Vec<Tid> = session.store().iter().map(|(tid, _)| tid).collect();
        let deletes = pick_deletes(&tids, &delete_seed);
        let cut = split.index(deletes.len() + 1);
        let batch_a = UpdateBatch {
            inserts: inserts_a,
            deletes: deletes[..cut].to_vec(),
        };
        let batch_b = UpdateBatch {
            inserts: inserts_b,
            deletes: deletes[cut..].to_vec(),
        };
        let concatenated = UpdateBatch {
            inserts: batch_a
                .inserts
                .iter()
                .chain(&batch_b.inserts)
                .cloned()
                .collect(),
            deletes: deletes.clone(),
        };

        session.stage(batch_a).unwrap();
        session.stage(batch_b).unwrap();
        let staged_report = session.commit().unwrap();
        let reference_report = reference.apply(concatenated).unwrap();

        // Bit-identical state: itemsets with supports, and rules with
        // counts.
        prop_assert!(
            session.large_itemsets().same_itemsets(reference.large_itemsets()),
            "staged vs reference itemsets: {:?}",
            session.large_itemsets().diff(reference.large_itemsets())
        );
        prop_assert_eq!(session.rules(), reference.rules());

        // Bit-identical report counts.
        prop_assert_eq!(staged_report.algorithm, reference_report.algorithm);
        prop_assert_eq!(staged_report.version, reference_report.version);
        prop_assert_eq!(staged_report.num_transactions, reference_report.num_transactions);
        prop_assert_eq!(&staged_report.inserted_tids, &reference_report.inserted_tids);
        prop_assert_eq!(&staged_report.itemsets, &reference_report.itemsets);
        prop_assert_eq!(&staged_report.rules.added, &reference_report.rules.added);
        prop_assert_eq!(&staged_report.rules.removed, &reference_report.rules.removed);
        prop_assert_eq!(staged_report.rules.retained, reference_report.rules.retained);

        reference.verify_consistency().unwrap();
        session.verify_consistency().unwrap();
    }

    /// Satellite: persistent-index commits produce supports bit-identical
    /// to a fresh `VerticalIndex` rebuild after every round — including
    /// rounds whose deletions (or newly-large items) invalidate the held
    /// index and force the rebuild path.
    #[test]
    fn persistent_index_matches_fresh_rebuild_every_round(
        history in arb_db(25),
        rounds in proptest::collection::vec(
            (arb_db(8), proptest::collection::vec(any::<prop::sample::Index>(), 0..4)),
            1..4,
        ),
        minsup in arb_minsup(),
    ) {
        let minconf = MinConfidence::percent(60);
        // Pin the vertical backend so every round counts through the
        // session's persistent index.
        let mut session = Maintainer::builder()
            .min_support(minsup)
            .min_confidence(minconf)
            .backend(CountingBackend::Vertical)
            .build(history)
            .unwrap();
        let fresh_miner = Apriori::with_config(AprioriConfig {
            engine: fup_mining::EngineConfig::default()
                .with_backend(CountingBackend::Vertical),
            ..Default::default()
        });

        for (inserts, delete_seed) in rounds {
            let tids: Vec<Tid> = session.store().iter().map(|(tid, _)| tid).collect();
            let deletes = pick_deletes(&tids, &delete_seed);
            session.apply(UpdateBatch { inserts, deletes }).unwrap();

            // Ground truth: a from-scratch mine whose vertical index is
            // freshly rebuilt over the updated store.
            let fresh = fresh_miner.run(session.store(), minsup).large;
            prop_assert!(
                session.large_itemsets().same_itemsets(&fresh),
                "persistent index diverged from fresh rebuild: {:?}",
                session.large_itemsets().diff(&fresh)
            );
        }
    }
}

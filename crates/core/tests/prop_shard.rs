//! Sharding is invisible: a tid-range-sharded session must be
//! **bit-identical** to the flat unsharded [`Maintainer`] — itemsets
//! with support counts, strong rules with their exact counts, the live
//! tid view, and every round report — because support is additive over
//! disjoint tid ranges and every threshold decision gates on the summed
//! counts (count distribution).
//!
//! * **Across shard counts:** the same workload replayed under 1, 2, 3,
//!   and 8 shards matches the flat reference after every round.
//! * **Across engines:** backends {HashTree, Vertical, Auto} × worker
//!   threads {1, 8}.
//! * **Cross-shard deletes:** deletes routinely land on different shards
//!   than the round's inserts (fine stripes spread consecutive tids),
//!   and a dedicated scripted case pins that pattern exactly — claim
//!   validation and per-shard index alignment must stay correct when a
//!   shard only deletes while others only insert.

use fup_core::Maintainer;
use fup_mining::{CountingBackend, MinConfidence, MinSupport};
use fup_tidb::{ShardSpec, Tid, Transaction, UpdateBatch};
use proptest::prelude::*;

const SHARD_COUNTS: [u32; 4] = [1, 2, 3, 8];

/// A random transaction over a small item alphabet (1–6 items of 0..12).
fn arb_transaction() -> impl Strategy<Value = Transaction> {
    proptest::collection::vec(0u32..12, 1..6).prop_map(Transaction::from_items)
}

fn arb_db(max: usize) -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_transaction(), 0..max)
}

fn arb_minsup() -> impl Strategy<Value = MinSupport> {
    (1u64..=100).prop_map(MinSupport::percent)
}

fn arb_backend() -> impl Strategy<Value = CountingBackend> {
    (0usize..3).prop_map(|i| {
        [
            CountingBackend::HashTree,
            CountingBackend::Vertical,
            CountingBackend::Auto,
        ][i]
    })
}

/// The issue's thread matrix: serial and heavily parallel.
fn arb_threads() -> impl Strategy<Value = usize> {
    (0usize..2).prop_map(|i| [1usize, 8][i])
}

fn builder(
    minsup: MinSupport,
    backend: CountingBackend,
    threads: usize,
) -> fup_core::MaintainerBuilder {
    Maintainer::builder()
        .min_support(minsup)
        .min_confidence(MinConfidence::percent(60))
        .backend(backend)
        .threads(threads)
}

/// Distinct delete targets drawn from `tids` by index.
fn pick_deletes(tids: &[Tid], seed: &[proptest::sample::Index]) -> Vec<Tid> {
    let mut deletes: Vec<Tid> = seed
        .iter()
        .filter(|_| !tids.is_empty())
        .map(|ix| tids[ix.index(tids.len())])
        .collect();
    deletes.sort();
    deletes.dedup();
    deletes
}

/// The live tid view, sorted, for exact store comparison.
fn live(m: &Maintainer) -> Vec<(Tid, Transaction)> {
    let mut v: Vec<(Tid, Transaction)> = m.store().iter().map(|(t, x)| (t, x.clone())).collect();
    v.sort_unstable_by_key(|&(t, _)| t);
    v
}

/// The bit-identity contract: itemsets + supports, rules + counts, and
/// the live tid view all match the flat reference exactly.
fn assert_bit_identical(flat: &Maintainer, sharded: &Maintainer, label: &str) {
    assert!(
        sharded
            .large_itemsets()
            .same_itemsets(flat.large_itemsets()),
        "{label}: itemsets/supports diverge: {:?}",
        sharded.large_itemsets().diff(flat.large_itemsets())
    );
    assert_eq!(sharded.rules(), flat.rules(), "{label}: rules diverge");
    assert_eq!(live(sharded), live(flat), "{label}: live view diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random histories and rounds (mixed inserts and cross-shard
    /// deletes), replayed round-for-round under every shard count of the
    /// matrix against one flat reference.
    #[test]
    fn sharded_sessions_are_bit_identical_to_flat(
        history in arb_db(14),
        rounds in proptest::collection::vec(
            (arb_db(6), proptest::collection::vec(any::<prop::sample::Index>(), 0..4)),
            0..3,
        ),
        minsup in arb_minsup(),
        backend in arb_backend(),
        threads in arb_threads(),
    ) {
        let mut flat = builder(minsup, backend, threads)
            .build(history.clone())
            .unwrap();
        // Stripe of 2: consecutive tids alternate shards quickly, so
        // deletes of old tids land away from the round's fresh inserts.
        let mut sharded: Vec<Maintainer> = SHARD_COUNTS
            .iter()
            .map(|&s| {
                builder(minsup, backend, threads)
                    .shard_spec(ShardSpec::striped_with(s, 2))
                    .build(history.clone())
                    .unwrap()
            })
            .collect();
        for m in &sharded {
            assert_bit_identical(&flat, m, "bootstrap");
        }

        for (round, (inserts, delete_seed)) in rounds.into_iter().enumerate() {
            let tids: Vec<Tid> = live(&flat).into_iter().map(|(t, _)| t).collect();
            let batch = UpdateBatch {
                inserts,
                deletes: pick_deletes(&tids, &delete_seed),
            };
            let reference = flat.apply(batch.clone()).unwrap();
            for (m, &shards) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                let report = m.apply(batch.clone()).unwrap();
                let label = format!("round {round}, {shards} shard(s)");
                prop_assert_eq!(report.algorithm, reference.algorithm, "{}", &label);
                prop_assert_eq!(
                    &report.inserted_tids, &reference.inserted_tids, "{}", &label
                );
                prop_assert_eq!(
                    report.num_transactions, reference.num_transactions, "{}", &label
                );
                assert_bit_identical(&flat, m, &label);
            }
        }
        for m in &sharded {
            m.verify_consistency().unwrap();
        }
    }
}

/// The pinned cross-shard script: every delete lands on a shard that
/// receives **no** insert that round, so delete-only shards must
/// invalidate their index and claim their tids correctly while
/// insert-only shards extend — and the merged counts still match flat.
#[test]
fn deletes_on_other_shards_than_inserts_stay_bit_identical() {
    let tx = |items: &[u32]| Transaction::from_items(items.iter().copied());
    let history: Vec<Transaction> = (0..8u32).map(|i| tx(&[i % 3, 3 + (i % 4), 10])).collect();
    for backend in [
        CountingBackend::HashTree,
        CountingBackend::Vertical,
        CountingBackend::Auto,
    ] {
        for threads in [1usize, 8] {
            let minsup = MinSupport::percent(25);
            let mut flat = builder(minsup, backend, threads)
                .build(history.clone())
                .unwrap();
            // Stripe 1 over 4 shards: tid t lives on shard t % 4. History
            // tids 0..8 cover all four shards.
            let mut sharded = builder(minsup, backend, threads)
                .shard_spec(ShardSpec::striped_with(4, 1))
                .build(history.clone())
                .unwrap();

            // Round 1: inserts get tids 8 and 9 (shards 0 and 1); the
            // deletes hit tids 2 and 7 (shards 2 and 3) — fully disjoint.
            let batch = UpdateBatch {
                inserts: vec![tx(&[0, 3, 10]), tx(&[1, 4])],
                deletes: vec![Tid(2), Tid(7)],
            };
            flat.apply(batch.clone()).unwrap();
            sharded.apply(batch).unwrap();
            assert_bit_identical(&flat, &sharded, "round 1 (disjoint shards)");

            // Round 2: delete one of round 1's inserts (tid 8, shard 0)
            // while inserting onto shards 2 and 3 (tids 10, 11) — the
            // delete again avoids every insert shard.
            let batch = UpdateBatch {
                inserts: vec![tx(&[2, 5, 10]), tx(&[0, 6, 10])],
                deletes: vec![Tid(8)],
            };
            flat.apply(batch.clone()).unwrap();
            sharded.apply(batch).unwrap();
            assert_bit_identical(&flat, &sharded, "round 2 (cross-shard delete)");

            sharded.verify_consistency().unwrap();
            assert_eq!(sharded.store().num_shards(), 4);
            assert_eq!(
                sharded.store().shard_lens().iter().sum::<usize>(),
                flat.len()
            );
        }
    }
}
